"""Figure 1 — connector-based reconfiguration and adaptation.

The paper's only figure shows two *serving components* attached to a
*connector*, with *introspection* streams flowing up to RAML and
*intercession* arrows flowing back down.  This example enacts every
arrow:

1. clients call through a failover connector serving component A
   (B standing by);
2. introspection streams (port observers, connector observers, RAML
   metrics) watch component A degrade — its error rate climbs;
3. a RAML constraint on the error rate trips; the response first tries a
   lightweight *adaptation* (retry interceptor), then *escalates* to
   intercession: the connector's attachment is swapped from A to B;
4. the trace of observed events and meta-level actions is printed.

Run:  python examples/figure1_raml.py
"""

from repro import Simulator, star, telemetry
from repro.core import Raml, Response, custom
from repro.kernel import Assembly, Component, Interface, Operation
from repro.connectors import RpcConnector
from repro.events import PeriodicTimer


def media_interface() -> Interface:
    return Interface("Media", "1.0", [Operation("render", ("frame",))])


class ServingComponent(Component):
    """Renders frames; can be driven into degradation."""

    def on_initialize(self):
        self.state.setdefault("rendered", 0)
        self.state.setdefault("degraded", False)

    def render(self, frame):
        if self.state["degraded"]:
            raise RuntimeError(f"{self.name}: renderer wedged")
        self.state["rendered"] += 1
        return f"{self.name}:{frame}"


def main() -> None:
    sim = Simulator()
    tracer = telemetry.install(sim)
    assembly = Assembly(star(sim, leaves=3), name="figure1")

    serving_a = ServingComponent("serving-a")
    serving_a.provide("svc", media_interface())
    assembly.deploy(serving_a, "leaf0")

    serving_b = ServingComponent("serving-b")
    serving_b.provide("svc", media_interface())
    assembly.deploy(serving_b, "leaf1")

    connector = RpcConnector("media-connector", media_interface())
    connector.attach("server", serving_a.provided_port("svc"))
    assembly.add_connector(connector)

    client = Component("client")
    client.require("media", media_interface())
    assembly.deploy(client, "leaf2")
    assembly.connect("client", "media", target=connector.endpoint("client"))

    # ---- the meta level -------------------------------------------------
    telemetry.instrument_assembly(tracer, assembly)
    raml = Raml(assembly, period=0.25, metric_window=1.0).instrument()
    narrator = telemetry.Narrator(sim, fmt="[{t:6.2f}] {line}", echo=False)
    log = narrator.say

    # Introspection stream: connector errors feed a RAML metric.
    def stream(event) -> None:
        if event.source.startswith("connector:") and event.kind == "error":
            raml.record_metric("render.errors", 1.0)

    raml.hub.subscribe(stream)

    def error_rate(view) -> list[str]:
        if "render.errors" not in view.metrics:
            return []
        series = view.metrics.series("render.errors")
        if series.count > 2:
            return [f"{series.count} render errors in the last second"]
        return []

    # Decide/act: adaptation first (retries on the connector), then
    # intercession (swap the serving component attachment).
    def adapt(raml_, violations) -> None:
        if connector.retries == 0:
            connector.retries = 2
            log("ADAPTATION  connector retries enabled (lightweight)")

    def intercede(raml_, violations) -> None:
        active = connector.attachments["server"][0].target
        standby = (serving_b if active.component is serving_a
                   else serving_a).provided_port("svc")
        raml_.intercessor.swap_connector_attachment(
            "media-connector", "server", active, standby)
        # Acknowledge the repair: stale errors in the window must not
        # re-trigger escalation against the fresh attachment.
        raml_.metrics.series("render.errors").reset()
        log(f"INTERCESSION connector re-attached "
            f"{active.component.name} -> {standby.component.name}")

    raml.add_constraint(
        custom("render-error-rate", error_rate),
        Response(adapt=adapt, reconfigure=intercede, escalate_after=3),
    )
    raml.start()

    # ---- the base level --------------------------------------------------
    served = {"ok": 0, "failed": 0}

    def call():
        try:
            client.required_port("media").call("render", f"f{served['ok']}")
            served["ok"] += 1
        except RuntimeError:
            served["failed"] += 1

    traffic = PeriodicTimer(sim, 0.05, call)

    def degrade():
        serving_a.state["degraded"] = True
        log("FAULT       serving-a starts failing every render")

    sim.at(degrade, when=2.0)
    sim.run(until=6.0)
    traffic.stop()
    raml.stop()

    # ---- report ------------------------------------------------------------
    print("figure-1 event trace:")
    for line in narrator.lines:
        print(" ", line)
    print(f"\nframes ok={served['ok']} failed={served['failed']}")
    print(f"serving-a rendered {serving_a.state['rendered']}, "
          f"serving-b rendered {serving_b.state['rendered']}")
    print(f"introspection events observed: {len(raml.hub.events)}")
    health = raml.health()
    print(f"meta-level: {health['adaptations']} adaptations, "
          f"{health['reconfigurations']} intercessions, "
          f"healthy={health['healthy']}")
    audit = tracer.audit.kinds()
    print("decision audit:",
          ", ".join(f"{kind}={count}"
                    for kind, count in sorted(audit.items())))
    assert serving_b.state["rendered"] > 0, "intercession must have fired"


if __name__ == "__main__":
    main()

"""Interaction rules governing a billing pipeline (FLO/C style).

Rules written in the textual grammar govern how components may interact,
"preserving the integrity of the system":

* every charge implies an audit-log entry;
* a fraud check must run *before* each charge;
* notification emails are deferred (impliesLater) and flushed in batches;
* refunds are permitted only for operators with the right credential;
* payouts wait until the daily settlement window opens.

The engine statically rejects a rule set that would loop the calling
tree, then enforces the accepted set at run time.

Run:  python examples/interaction_rules.py
"""

from repro import Simulator
from repro.errors import RuleCycleError, RuleError
from repro.kernel import Component, Interface, Invocation, Operation, Registry
from repro.rules import RuleEngine, parse_rules


class Billing(Component):
    def on_initialize(self):
        self.state.setdefault("charges", [])
        self.state.setdefault("refunds", [])
        self.state.setdefault("payouts", [])

    def charge(self, account, amount):
        self.state["charges"].append((account, amount))
        return len(self.state["charges"])

    def refund(self, account, amount):
        self.state["refunds"].append((account, amount))
        return True

    def payout(self, account):
        self.state["payouts"].append(account)
        return True


class Audit(Component):
    def on_initialize(self):
        self.state.setdefault("entries", 0)

    def log(self):
        self.state["entries"] += 1
        return self.state["entries"]


class Fraud(Component):
    def on_initialize(self):
        self.state.setdefault("checks", 0)

    def check(self):
        self.state["checks"] += 1
        return "clean"


class Mailer(Component):
    def on_initialize(self):
        self.state.setdefault("sent", 0)

    def send(self):
        self.state["sent"] += 1
        return True


def build():
    registry = Registry()
    billing = Billing("billing")
    billing.provide("svc", Interface("Billing", "1.0", [
        Operation("charge", ("account", "amount")),
        Operation("refund", ("account", "amount")),
        Operation("payout", ("account",)),
    ]))
    billing.activate()
    audit = Audit("audit")
    audit.provide("svc", Interface("Audit", "1.0", [Operation("log", ())]))
    audit.activate()
    fraud = Fraud("fraud")
    fraud.provide("svc", Interface("Fraud", "1.0", [Operation("check", ())]))
    fraud.activate()
    mailer = Mailer("mailer")
    mailer.provide("svc", Interface("Mail", "1.0", [Operation("send", ())]))
    mailer.activate()
    for component in (billing, audit, fraud, mailer):
        registry.register(component)
    return registry, billing, audit, fraud, mailer


RULES = """
# integrity rules for the billing pipeline
when billing.charge implies audit.log
when billing.charge impliesBefore fraud.check
when billing.charge impliesLater mailer.send
permit billing.refund if operator_credentialed
wait billing.payout until settlement_window_open
"""


def main() -> None:
    sim = Simulator()
    registry, billing, audit, fraud, mailer = build()
    engine = RuleEngine(registry)

    window = {"open": False}
    guards = {
        "operator_credentialed":
            lambda inv: inv.meta.get("credential") == "operator",
        "settlement_window_open": lambda inv: window["open"],
    }
    engine.add_rules(parse_rules(RULES, guards))
    engine.start(sim, period=0.5)  # pumps deferred mail + waiting payouts

    # A cyclic rule is rejected before it can ever run.
    try:
        engine.add_rules(parse_rules("when audit.log implies billing.charge",
                                     guards))
    except RuleCycleError as error:
        print(f"rejected cyclic rule: {error}\n")

    port = billing.provided_port("svc")

    # Three charges: fraud checks run first, audit entries follow,
    # notification mail queues for the next pump tick.
    for index, amount in enumerate((10, 25, 40)):
        port.invoke(Invocation("charge", (f"acct{index}", amount)))
    print(f"charges={len(billing.state['charges'])} "
          f"fraud_checks={fraud.state['checks']} "
          f"audit_entries={audit.state['entries']} "
          f"mail_sent_now={mailer.state['sent']} "
          f"mail_queued={len(engine.deferred)}")

    # Refunds: only credentialed operators may call.
    try:
        port.invoke(Invocation("refund", ("acct0", 10)))
    except RuleError as error:
        print(f"refund blocked: {error}")
    credentialed = Invocation("refund", ("acct0", 10))
    credentialed.meta["credential"] = "operator"
    port.invoke(credentialed)
    print(f"refunds={len(billing.state['refunds'])}")

    # Payouts queue until the settlement window opens at t=2.
    port.invoke(Invocation("payout", ("acct1",)))
    print(f"payouts before window: {len(billing.state['payouts'])} "
          f"(waiting={engine.waiting_count})")
    sim.at(lambda: window.__setitem__("open", True), when=2.0)
    sim.run(until=3.0)
    engine.stop()
    print(f"payouts after window:  {len(billing.state['payouts'])} "
          f"(waiting={engine.waiting_count})")
    print(f"mail delivered by pump: {mailer.state['sent']}")


if __name__ == "__main__":
    main()

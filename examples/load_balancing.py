"""Geographical reconfiguration for load balancing.

Eight datacenter hosts, four worker components that all land on the same
rack under a naive deployment.  Background load then hits that rack.  A
RAML constraint (`node-load<=0.75`) escalates to the migration planner,
which moves workers to cool hosts — the paper's "hosting components on a
less loaded hardware, so that the components can execute faster".

The same request stream is replayed with the planner disabled and
enabled; the example prints per-phase mean/p95 request latency.

Run:  python examples/load_balancing.py
"""

from repro import Simulator, datacenter
from repro.core import Raml, Response, node_load_below
from repro.kernel import Assembly, Component, Interface, Operation
from repro.middleware import Orb
from repro.netsim import hosts
from repro.reconfig import MigrationPlanner
from repro.workloads import ClosedLoopGenerator, proxy_transport
from repro.middleware import RemoteProxy


def work_interface() -> Interface:
    return Interface("Work", "1.0", [Operation("execute", ("job",))])


class Worker(Component):
    def on_initialize(self):
        self.state.setdefault("jobs", 0)

    def execute(self, job):
        self.state["jobs"] += 1
        return f"{self.name}:{job}"


def run_scenario(rebalance: bool) -> dict:
    sim = Simulator()
    network = datacenter(sim, racks=2, hosts_per_rack=4)
    assembly = Assembly(network, name="workers")
    host_names = hosts(network)
    hot_hosts = [h for h in host_names if h.startswith("rack0")]

    # Naive deployment: every worker on rack0 (the soon-to-be-hot rack).
    workers = []
    for index in range(4):
        worker = Worker(f"worker{index}")
        worker.provide("svc", work_interface())
        assembly.deploy(worker, hot_hosts[index])
        workers.append(worker)

    # Export each worker through its node's ORB; a client on rack1 calls.
    orbs = {name: Orb(network, name) for name in host_names}
    client_node = "rack1-host3"

    def orb_for(worker):
        return orbs[worker.node_name]

    for worker in workers:
        orb_for(worker).register(worker.name, worker.provided_port("svc"),
                                 work_units=4.0)

    proxies = [
        RemoteProxy(orbs[client_node], worker.node_name, worker.name,
                    work_interface(), timeout=5.0)
        for worker in workers
    ]

    # Round-robin transport over the four proxies; re-resolve node on
    # every call so migrations take effect.
    state = {"next": 0}

    def transport(operation, args, on_result, on_error):
        index = state["next"] % len(workers)
        state["next"] += 1
        worker = workers[index]
        proxy = proxies[index]
        if proxy.target_node != worker.node_name:
            # The worker migrated: re-export and follow it.
            proxy.rebind(worker.node_name)
        proxy.call(operation, *args, on_result=on_result, on_error=on_error)

    generator = ClosedLoopGenerator(
        sim, transport, "execute", make_args=lambda i: (f"job{i}",),
        concurrency=8,
    )

    # Background load scorches rack0 from t=5.
    def scorch():
        for name in hot_hosts:
            network.node(name).set_background_load(0.85)

    sim.at(scorch, when=5.0)

    raml = Raml(assembly, period=1.0).instrument()
    if rebalance:
        planner = MigrationPlanner(assembly, high_watermark=0.75,
                                   low_watermark=0.5)

        def migrate(raml_, violations):
            for move in planner.plan_load_levelling(max_moves=4):
                worker = assembly.component(move.component)
                source_orb = orbs[move.source]
                raml_.intercessor.migrate(move.component, move.target)
                source_orb.unregister(move.component)
                orbs[move.target].register(
                    move.component, worker.provided_port("svc"),
                    work_units=4.0,
                )

        raml.add_constraint(
            node_load_below(0.75),
            Response(reconfigure=migrate, escalate_after=2),
        )
    raml.start()

    generator.start()
    phases = {}
    sim.run(until=5.0)
    phases["calm"] = list(generator.stats.latencies)
    generator.stats.latencies.clear()
    sim.run(until=40.0)
    phases["hot"] = list(generator.stats.latencies)
    generator.stop()
    raml.stop()
    sim.run(until=45.0)

    def p95(values):
        if not values:
            return 0.0
        ordered = sorted(values)
        return ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))]

    placements = {w.name: w.node_name for w in workers}
    return {
        "calm_p95": p95(phases["calm"]),
        "hot_p95": p95(phases["hot"]),
        "hot_mean": (sum(phases["hot"]) / len(phases["hot"])
                     if phases["hot"] else 0.0),
        "served": generator.stats.succeeded,
        "placements": placements,
        "migrations": (len(raml.intercessor.transactions)
                       if rebalance else 0),
    }


def main() -> None:
    static = run_scenario(rebalance=False)
    balanced = run_scenario(rebalance=True)
    print("scenario     calm-p95   hot-p95   hot-mean   served  migrations")
    for name, result in (("static", static), ("rebalanced", balanced)):
        print(f"{name:<12} {result['calm_p95'] * 1000:>7.1f}ms "
              f"{result['hot_p95'] * 1000:>8.1f}ms "
              f"{result['hot_mean'] * 1000:>9.1f}ms "
              f"{result['served']:>7} {result['migrations']:>10}")
    print("\nfinal placements (rebalanced run):")
    for worker, node in sorted(balanced["placements"].items()):
        print(f"  {worker} -> {node}")
    speedup = static["hot_p95"] / max(balanced["hot_p95"], 1e-9)
    print(f"\nmigration cuts hot-phase p95 latency by {speedup:.1f}x")


if __name__ == "__main__":
    main()

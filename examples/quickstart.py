"""Quickstart: deploy, wire, observe, reconfigure.

Builds a two-node system with a counter service behind an RPC connector,
puts it under RAML observation, then hot-swaps the server (strong
dynamic reconfiguration: state carried over, zero message loss) while a
client keeps calling.

Run:  python examples/quickstart.py
"""

from repro import (
    Assembly,
    Component,
    Interface,
    Operation,
    Raml,
    ReconfigurationTransaction,
    ReplaceComponent,
    RpcConnector,
    Simulator,
    star,
)


def counter_interface() -> Interface:
    return Interface("Counter", "1.0", [
        Operation("increment", ("amount",), optional=1),
        Operation("total", ()),
    ])


class CounterServer(Component):
    """A stateful service component."""

    def on_initialize(self):
        self.state.setdefault("total", 0)

    def increment(self, amount=1):
        self.state["total"] += amount
        return self.state["total"]

    def total(self):
        return self.state["total"]


class CounterClient(Component):
    """Calls the counter through its required port."""

    def on_initialize(self):
        self.state.setdefault("responses", [])


def main() -> None:
    sim = Simulator()
    assembly = Assembly(star(sim, leaves=2), name="quickstart")

    # Deploy a client and a server on different nodes.
    client = CounterClient("client")
    client.require("counter", counter_interface())
    assembly.deploy(client, "leaf0")

    server = CounterServer("server")
    server.provide("svc", counter_interface())
    assembly.deploy(server, "leaf1")

    # Wire them through a first-class RPC connector.
    rpc = RpcConnector("front", counter_interface())
    rpc.attach("server", server.provided_port("svc"))
    assembly.add_connector(rpc)
    assembly.connect("client", "counter", target=rpc.endpoint("client"))

    # Put the system under the meta-level's observation.
    raml = Raml(assembly, period=0.5).instrument()
    raml.start()

    # Drive traffic: one increment every 10 ms.
    def tick():
        client.required_port("counter").call_async(
            "increment", 1,
            on_result=lambda total: client.state["responses"].append(total),
        )

    from repro.events import PeriodicTimer

    traffic = PeriodicTimer(sim, 0.01, tick)

    # At t=1s, hot-swap the server for a v2 while traffic flows.
    class CounterServerV2(CounterServer):
        def increment(self, amount=1):
            self.state["total"] += amount
            self.state["upgraded"] = True
            return self.state["total"]

    def hot_swap():
        replacement = CounterServerV2("server-v2")
        replacement.provide("svc", counter_interface())
        txn = ReconfigurationTransaction(assembly, name="upgrade")
        txn.add(ReplaceComponent("server", replacement))
        txn.execute_async(on_done=lambda report: print(
            f"[{sim.now:.3f}] reconfiguration {report.state.value}: "
            f"blocked {report.blocked_duration * 1000:.2f} ms, "
            f"{report.buffered_calls} calls buffered"
        ))

    sim.at(hot_swap, when=1.0)
    sim.run(until=2.0)
    traffic.stop()
    raml.stop()
    sim.run(until=2.5)  # drain in-flight work; periodic timers are stopped

    responses = client.state["responses"]
    print(f"responses received : {len(responses)}")
    print(f"monotone, gap-free : {responses == list(range(1, len(responses) + 1))}")
    print(f"served by v2 after swap: "
          f"{assembly.component('server-v2').state.get('upgraded', False)}")
    health = raml.health()
    print(f"RAML sweeps={health['sweeps']} healthy={health['healthy']} "
          f"events observed={health['observed_events']}")


if __name__ == "__main__":
    main()

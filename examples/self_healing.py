"""Self-healing architecture, defined in the ADL.

The whole application structure is written in the architecture
description language: a front-end bound through a failover connector to
two replicated store components on different nodes, with behaviour
protocols on the components.  A failure injector then crashes the
primary's node; RAML detects the dead host through its structural
constraints and migrates the replica placement back to redundancy.

Run:  python examples/self_healing.py
"""

from repro import Simulator, parse_adl, star, telemetry
from repro.adl import build_architecture
from repro.core import Raml, Response, all_nodes_up, structural_consistency
from repro.events import PeriodicTimer
from repro.netsim import FailureInjector, least_loaded

ARCHITECTURE = """
interface Store version 1.0 {
  operation put(key, value)
  operation get(key)
}

component Frontend {
  requires store : Store 1.0
}

component StoreReplica {
  provides svc : Store 1.0
  behaviour {
    init ready
    ready -> ready : put
    ready -> ready : get
    final ready
  }
}

connector Replicas kind failover interface Store 1.0

architecture SelfHealingStore {
  instance frontend : Frontend on leaf0
  instance primary : StoreReplica on leaf1
  instance backup : StoreReplica on leaf2
  use failover : Replicas
  bind frontend.store -> failover.client
  attach primary.svc -> failover.replica
  attach backup.svc -> failover.replica
}
"""


class StoreImpl:
    """Shared-nothing key/value store implementation."""

    def __init__(self):
        self.data = {}

    def put(self, key, value):
        self.data[key] = value
        return True

    def get(self, key):
        return self.data.get(key)


def main() -> None:
    sim = Simulator()
    telemetry.install(sim)
    network = star(sim, leaves=4)
    document = parse_adl(ARCHITECTURE)
    assembly = build_architecture(
        document, "SelfHealingStore", network,
        implementations={
            "Frontend": lambda name: object(),
            "StoreReplica": lambda name: StoreImpl(),
        },
    )
    frontend = assembly.component("frontend")
    connector = assembly.connectors["failover"]

    raml = Raml(assembly, period=0.5).instrument()
    narrator = telemetry.Narrator(sim, fmt="[{t:5.2f}] {line}", echo=False)

    def heal(raml_, violations):
        # Move every component off dead nodes onto the least-loaded
        # live host, restoring redundancy.
        for violation in violations:
            narrator.say(f"VIOLATION {violation}")
        for component in list(assembly.registry):
            node = network.nodes.get(component.node_name or "")
            if node is not None and not node.up:
                target = least_loaded(
                    n for n in network.live_nodes()
                    if n.name != component.node_name
                    and not assembly.registry.on_node(n.name)
                )
                raml_.intercessor.migrate(component.name, target.name)
                narrator.say(f"HEAL migrated "
                             f"{component.name} to {target.name}")
        connector.reset()  # forget failure suspicions after repair

    raml.add_constraint(structural_consistency())
    raml.add_constraint(all_nodes_up(),
                        Response(reconfigure=heal, escalate_after=1))
    raml.start()

    results = {"ok": 0, "failed": 0}

    def workload():
        key = f"k{results['ok'] % 10}"
        try:
            frontend.required_port("store").call("put", key, sim.now)
            assert frontend.required_port("store").call("get", key) is not None
            results["ok"] += 1
        except Exception:  # noqa: BLE001 - accounted
            results["failed"] += 1

    traffic = PeriodicTimer(sim, 0.05, workload)

    injector = FailureInjector(network, seed=3)
    injector.crash_node("leaf1", at=3.0)  # kill the primary's host

    sim.run(until=10.0)
    traffic.stop()
    raml.stop()

    print("self-healing trace:")
    for line in narrator.lines:
        print(" ", line)
    print(f"\nrequests ok={results['ok']} failed={results['failed']}")
    print("placements now:", {
        c.name: c.node_name for c in assembly.registry
    })
    health = raml.health()
    print(f"meta-level healthy={health['healthy']} "
          f"reconfigurations={health['reconfigurations']}")
    assert results["failed"] <= 2, "failover should mask the crash"

    # Administration: export the *healed* architecture back to ADL — the
    # source of truth now reflects where everything actually runs.
    from repro.adl import export_assembly

    print("\nhealed architecture (exported ADL):")
    exported = export_assembly(assembly)
    for line in exported.splitlines():
        if line.startswith(("architecture", "  instance", "  use",
                            "  bind", "  attach", "}")):
            print(" ", line)


if __name__ == "__main__":
    main()

"""Adaptive multimedia telecom service — the paper's motivating scenario.

A video service streams frames to mobile users over a wireless link whose
bandwidth collapses during "rush hour".  Two deployments are compared:

* **static** — always uses the high-quality H.264-style path; frames that
  exceed the available bandwidth are dropped ("dropping calls / rejecting
  packets arbitrarily with no care about the rendering");
* **adaptive** — an AdaptationManager watches the link and switches the
  codec strategy + composition path to a low-bitrate variant when
  bandwidth drops, restoring quality afterwards.

Run:  python examples/telecom_adaptive_video.py
"""

from repro import Simulator, star
from repro.adaptation import AdaptationManager, AdaptationPolicy, switch_strategy
from repro.paths import PathFamily, PathPlanner, ServiceOption
from repro.strategy import Strategy, StrategySlot
from repro.workloads import (
    TelecomWorkload,
    TelecomWorkloadConfig,
    composite,
    clamped,
    sinusoidal,
    square_wave,
)


def video_paths() -> PathFamily:
    """Extraction, coding and transfer — the paper's video service."""
    family = PathFamily("video", ["extract", "encode", "transfer"])
    family.add_option(ServiceOption(
        "extract-raw", "extract", lambda v: ("raw", v),
        output_format="raw", latency=0.2, quality=1.0))
    family.add_option(ServiceOption(
        "encode-h264", "encode", lambda v: ("h264", v[1]),
        input_format="raw", output_format="h264",
        latency=1.0, quality=1.0, bandwidth_required=6.0))
    family.add_option(ServiceOption(
        "encode-h263", "encode", lambda v: ("h263", v[1]),
        input_format="raw", output_format="h263",
        latency=0.3, quality=0.45, bandwidth_required=1.0))
    family.add_option(ServiceOption(
        "transfer-rtp", "transfer", lambda v: v,
        input_format="*", latency=0.1, quality=1.0))
    return family


def run_scenario(adaptive: bool, seed: int = 11) -> dict:
    sim = Simulator()
    network = star(sim, leaves=2)
    wireless = network.link_between("hub", "leaf0")

    # Rush-hour bandwidth: smooth daily curve times periodic congestion.
    bandwidth_profile = clamped(
        composite(
            sinusoidal(base=7.0, amplitude=2.0, period=60.0),
            square_wave(low=0.0, high=-5.5, period=40.0, duty=0.35),
        ),
        0.5, 10.0,
    )

    family = video_paths()
    planner = PathPlanner(family, quality_weight=5.0)
    codec = StrategySlot("codec", [
        Strategy("h264", lambda frame: "h264", traits={"bandwidth": 6.0}),
        Strategy("h263", lambda frame: "h263", traits={"bandwidth": 1.0}),
    ], initial="h264")
    current = {"path": planner.plan({"bandwidth": 10.0})}

    manager = AdaptationManager(sim, period=0.5)
    manager.add_probe("bandwidth", lambda: bandwidth_profile(sim.now))

    if adaptive:
        def replan(context):
            from repro.errors import PathError

            try:
                current["path"] = planner.plan(
                    {"bandwidth": context["bandwidth"]}
                )
            except PathError:
                # Outage below every option's floor: keep the cheapest
                # path armed so streaming resumes the moment bandwidth
                # returns.
                current["path"] = planner.plan({"bandwidth": 1.0})

        manager.add_policy(AdaptationPolicy(
            "degrade", condition=lambda ctx: ctx["bandwidth"] < 6.0,
            actions=[switch_strategy(codec, "h263", "congestion"), replan],
            cooldown=2.0,
        ))
        manager.add_policy(AdaptationPolicy(
            "restore", condition=lambda ctx: ctx["bandwidth"] >= 6.5,
            actions=[switch_strategy(codec, "h264", "recovered"), replan],
            cooldown=2.0,
        ))
        manager.start()

    quality_samples: list[float] = []

    def send_frame(session, on_delivered):
        bandwidth = bandwidth_profile(sim.now)
        path = current["path"]
        needed = max(option.bandwidth_required for option in path.options)
        if needed <= bandwidth:
            path.execute(f"frame-{session.frames_sent}")
            quality_samples.append(path.total_quality)
            on_delivered()
        # else: frame dropped at the bottleneck.

    workload = TelecomWorkload(
        sim, ["leaf0"], send_frame,
        TelecomWorkloadConfig(arrival_rate=0.4, mean_duration=30.0,
                              frame_rate=12.0, seed=seed),
    )
    workload.start(duration=100.0)
    sim.run(until=140.0)
    manager.stop()

    summary = workload.summary()
    mean_quality = (sum(quality_samples) / len(quality_samples)
                    if quality_samples else 0.0)
    return {
        "delivery_ratio": summary["delivery_ratio"],
        "frames_sent": summary["frames_sent"],
        "mean_quality": mean_quality,
        "codec_switches": codec.switch_count,
        "adaptations": len(manager.log),
    }


def main() -> None:
    static = run_scenario(adaptive=False)
    adaptive = run_scenario(adaptive=True)
    print("scenario   delivery%   mean-quality   switches  adaptations")
    for name, result in (("static", static), ("adaptive", adaptive)):
        print(f"{name:<10} {result['delivery_ratio'] * 100:>8.1f}   "
              f"{result['mean_quality']:>12.3f}   "
              f"{result['codec_switches']:>8}  {result['adaptations']:>11}")
    improvement = (adaptive["delivery_ratio"]
                   / max(static["delivery_ratio"], 1e-9))
    print(f"\nadaptive delivers {improvement:.2f}x the frames of the static "
          "deployment during congestion, trading quality for continuity.")


if __name__ == "__main__":
    main()

"""E8 — composition filters attach/detach at run time with modest cost.

Series: call throughput with 0..8 stacked filters on a port, and the
latency of attaching/detaching a filter set while calls flow.  Expected
shape: cost grows roughly linearly and gently with depth; attach/detach
are O(1) and take effect on the very next message.
"""

import time

import pytest

from repro.filters import FilterSet, PassFilter, TransformFilter, match
from repro.kernel import Invocation

from conftest import fmt, print_table
from tests.helpers import make_counter

DEPTHS = [0, 1, 2, 4, 8]
CALLS = 20_000


def build_port(depth: int):
    component = make_counter(f"c{depth}")
    port = component.provided_port("svc")
    if depth:
        filters = [PassFilter(f"f{i}", match("increment"))
                   for i in range(depth)]
        FilterSet("stack", filters).attach_to(port)
    return component, port


def cost_per_call(port, calls=CALLS):
    invocation = Invocation("increment", (1,))
    start = time.perf_counter()
    for _ in range(calls):
        port.invoke(invocation)
    return (time.perf_counter() - start) / calls


@pytest.mark.parametrize("depth", DEPTHS)
def test_e8_stacked_filter_call_cost(benchmark, depth):
    _component, port = build_port(depth)
    invocation = Invocation("increment", (1,))
    benchmark(port.invoke, invocation)


def test_e8_depth_series_and_dynamic_attach(benchmark):
    costs = {}
    for depth in DEPTHS:
        _component, port = build_port(depth)
        costs[depth] = cost_per_call(port, calls=5_000)

    # Attach/detach latency while traffic flows.
    component, port = build_port(0)
    filter_set = FilterSet("dyn", [
        TransformFilter("double",
                        lambda inv: Invocation("increment",
                                               (inv.args[0] * 2,)),
                        match("increment")),
    ])
    start = time.perf_counter()
    filter_set.attach_to(port)
    attach_cost = time.perf_counter() - start
    # Takes effect on the very next message.
    component.state["total"] = 0
    assert port.invoke(Invocation("increment", (3,))) == 6
    start = time.perf_counter()
    filter_set.detach_from(port)
    detach_cost = time.perf_counter() - start
    assert port.invoke(Invocation("increment", (3,))) == 9

    benchmark.pedantic(lambda: cost_per_call(build_port(4)[1], calls=2_000),
                       rounds=1, iterations=1)

    rows = [[depth, f"{cost * 1e6:.2f}us",
             fmt(cost / costs[0], 2) + "x"]
            for depth, cost in costs.items()]
    rows.append(["attach", f"{attach_cost * 1e6:.2f}us", "-"])
    rows.append(["detach", f"{detach_cost * 1e6:.2f}us", "-"])
    print_table("E8 filter stack cost", ["depth", "per-call", "vs bare"],
                rows)

    # Gentle growth: eight stacked filters stay within ~6x of bare calls,
    # and each extra filter costs less than one bare call.
    assert costs[8] / costs[0] < 6.0
    per_filter = (costs[8] - costs[0]) / 8
    assert per_filter < costs[0]
    # Attach/detach are instantaneous relative to serving traffic.
    assert attach_cost < 0.001
    assert detach_cost < 0.001

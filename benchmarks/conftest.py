"""Shared helpers for the benchmark suite.

Every bench prints the series it regenerates (visible with ``-s`` or in
the captured output on failure) and asserts the *shape* the paper claims
— who wins and roughly by how much — not absolute numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make the repository root importable so benches can reuse tests.helpers.
_ROOT = str(Path(__file__).resolve().parent.parent)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a small fixed-width results table."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ] if rows else [len(h) for h in headers]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"

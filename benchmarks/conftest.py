"""Shared helpers for the benchmark suite.

Every bench prints the series it regenerates (visible with ``-s`` or in
the captured output on failure) and asserts the *shape* the paper claims
— who wins and roughly by how much — not absolute numbers.
"""

from __future__ import annotations

import sys
from pathlib import Path

# Make the repository root importable so benches can reuse tests.helpers.
_ROOT = str(Path(__file__).resolve().parent.parent)
if _ROOT not in sys.path:
    sys.path.insert(0, _ROOT)


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render a small fixed-width results table."""
    widths = [
        max(len(str(headers[i])), *(len(str(row[i])) for row in rows))
        for i in range(len(headers))
    ] if rows else [len(h) for h in headers]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))


def fmt(value: float, digits: int = 3) -> str:
    return f"{value:.{digits}f}"


def peak_rss_mb() -> float:
    """Lifetime peak resident set of this process *and* its reaped
    children (worker processes), in MiB.

    ``ru_maxrss`` is a high-water mark, so per-run attribution only
    works when the biggest run is the one you care about; benches record
    it after each run and the artifact keeps the per-run readings in run
    order.  Returns 0.0 where :mod:`resource` is unavailable (non-POSIX).
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX fallback
        return 0.0
    own = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    kids = resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    scale = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return round(max(own, kids) / scale, 3)


def traced_bytes(builder) -> int:
    """Peak traced heap bytes while ``builder()`` runs (tracemalloc).

    The probe is for *bytes-per-node* style derived metrics: call it on
    a function that builds one region/topology and divide by the node
    count.  Tracemalloc only sees Python allocations, which is exactly
    the overhead the memory-lean fast path is meant to eliminate.
    """
    import tracemalloc

    tracemalloc.start()
    try:
        builder()
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return peak

"""E12 — interface modification keeps caller compatibility across versions.

A service interface climbs a version ladder: three compatible minor
evolutions (new operations, widened signatures) followed by a breaking
major change bridged by an adapter.  A caller written against v1.0 runs
unmodified against every rung.  Series: old-caller success rate per
rung and the per-call overhead the adapter interceptor adds.  Expected
shape: 100% success everywhere; adapter overhead within a small constant
factor (≈2–3×) of an unadapted call.
"""

import time

import pytest

from repro import Simulator, star
from repro.kernel import (
    Assembly,
    Component,
    Interface,
    InterfaceAdapter,
    Invocation,
    Operation,
)
from repro.reconfig import (
    ModifyInterface,
    ReconfigurationTransaction,
    ReplaceImplementation,
)

from conftest import fmt, print_table


def v1_interface():
    return Interface("Store", "1.0", [
        Operation("put", ("key", "value")),
        Operation("get", ("key",)),
    ])


class StoreV1(Component):
    def on_initialize(self):
        self.state.setdefault("data", {})

    def put(self, key, value):
        self.state["data"][key] = value
        return True

    def get(self, key):
        return self.state["data"].get(key)


class StoreV2Impl:
    """Breaking change: put() takes a namespace; get renamed to fetch."""

    def __init__(self, state):
        self.state = state

    def put(self, key, value, namespace):
        self.state["data"][f"{namespace}:{key}"] = value
        return True

    def fetch(self, key, namespace):
        return self.state["data"].get(f"{namespace}:{key}")

    def delete(self, key, quiet=False):
        self.state["data"].pop(f"default:{key}", None)
        return True

    def keys(self):
        return sorted(self.state["data"])


def old_caller_roundtrip(port) -> bool:
    """A v1.0 client: put then get, no namespaces anywhere."""
    port.invoke(Invocation("put", ("k", "v")))
    return port.invoke(Invocation("get", ("k",))) == "v"


def test_e12_version_ladder(benchmark):
    sim = Simulator()
    assembly = Assembly(star(sim, leaves=1))
    store = StoreV1("store")
    store.provide("svc", v1_interface())
    assembly.deploy(store, "leaf0")
    port = store.provided_port("svc")

    rows = []
    ladder = []

    # Rung 0: the original.
    rows.append(["1.0", "original", "yes" if old_caller_roundtrip(port)
                 else "NO"])

    # Rungs 1..3: compatible minor evolutions.
    current = v1_interface()
    minor_steps = [
        ("add delete", dict(add=[Operation("delete", ("key",))])),
        ("widen delete", dict(extend={"delete": Operation(
            "delete", ("key", "quiet"), optional=1)})),
        ("add keys", dict(add=[Operation("keys", ())])),
    ]

    class GrowingImpl(StoreV1):
        pass

    for label, evolution in minor_steps:
        current = current.evolve(**evolution)
        ReconfigurationTransaction(assembly).add(
            ModifyInterface("store", "svc", current)
        ).execute()
        ok = old_caller_roundtrip(port)
        rows.append([str(current.version), label, "yes" if ok else "NO"])
        ladder.append(ok)

    # Rung 4: breaking major change with an adapter.
    v2 = Interface("Store", "2.0", [
        Operation("put", ("key", "value", "namespace")),
        Operation("fetch", ("key", "namespace")),
        Operation("delete", ("key", "quiet"), optional=1),
        Operation("keys", ()),
    ])
    adapter = InterfaceAdapter(
        old=current, new=v2,
        renames={"get": "fetch"},
        defaults={"put": ("default",), "get": ("default",)},
    )
    ReconfigurationTransaction(assembly).add(
        ModifyInterface("store", "svc", v2, adapter)
    ).add(
        ReplaceImplementation("store", "svc", StoreV2Impl(store.state))
    ).execute()
    ok = old_caller_roundtrip(port)
    rows.append(["2.0", "breaking + adapter", "yes" if ok else "NO"])
    ladder.append(ok)

    # New-style callers work natively at the same time.
    port.invoke(Invocation("put", ("k2", "v2", "tenant")))
    assert port.invoke(Invocation("fetch", ("k2", "tenant"))) == "v2"

    # Adapter overhead: adapted old-style call vs native new-style call.
    def timed(call_invocation, calls=10_000):
        start = time.perf_counter()
        for _ in range(calls):
            port.invoke(call_invocation)
        return (time.perf_counter() - start) / calls

    native = timed(Invocation("fetch", ("k", "default")))
    adapted = timed(Invocation("get", ("k",)))
    rows.append(["-", "native call", f"{native * 1e6:.2f}us"])
    rows.append(["-", "adapted call", f"{adapted * 1e6:.2f}us"])

    benchmark(port.invoke, Invocation("get", ("k",)))

    print_table("E12 interface version ladder (v1.0 caller throughout)",
                ["version", "change", "old caller ok / cost"], rows)

    assert all(ladder), "the v1.0 caller must survive every rung"
    assert adapted / native < 3.0, (
        f"adapter overhead {adapted / native:.2f}x exceeds the small "
        "constant factor expected of interposition"
    )

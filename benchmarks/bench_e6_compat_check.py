"""E6 — Wright-style compatibility checking of connector protocols.

A corpus of glue/role protocol families is generated at several sizes;
half receive an injected protocol bug (a role that refuses a shared
action after k rounds, or demands an extra round the glue never grants).
The checker composes glue + roles and hunts deadlocks.

Series: detection rate on buggy pairs, false-alarm rate on correct
pairs, and check cost versus composed state count.  Expected shape:
100% detection, 0% false alarms, cost growing with the product state
space.
"""

import time

import pytest

from repro.lts import Lts, compose, find_deadlocks
from repro.connectors import (
    broadcast_glue,
    pipeline_glue,
    pipeline_stage_protocol,
    rpc_client_protocol,
    rpc_glue,
    rpc_server_protocol,
    subscriber_protocol,
    verify_glue,
)

from conftest import fmt, print_table


def correct_cases(size: int):
    """Compatible glue/roles families at a given fan-out."""
    yield ("rpc", rpc_glue(),
           [rpc_client_protocol(), rpc_server_protocol()])
    yield (f"pipeline-{size}", pipeline_glue(size),
           [pipeline_stage_protocol(i) for i in range(size)])
    yield (f"broadcast-{size}", broadcast_glue(size),
           [subscriber_protocol(i) for i in range(size)])


def buggy_cases(size: int):
    """The same families with one protocol bug injected."""
    # RPC client that pipelines two calls before awaiting a return.
    yield ("rpc/pipelining-client", rpc_glue(),
           [Lts.cycle("bad-client", ["call", "call", "return"]),
            rpc_server_protocol()])
    # Pipeline stage that demands its step twice per round.
    stages = [pipeline_stage_protocol(i) for i in range(size)]
    victim = size // 2
    stages[victim] = Lts.sequence(f"oneshot-stage{victim}",
                                  [f"stage{victim}"])
    yield (f"pipeline-{size}/one-shot-stage", pipeline_glue(size), stages)
    # Subscriber that stops accepting after one delivery.
    subs = [subscriber_protocol(i) for i in range(size)]
    subs[0] = Lts.sequence("oneshot-sub", ["deliver0"])
    yield (f"broadcast-{size}/one-shot-subscriber", broadcast_glue(size), subs)


def test_e6_compatibility_detection(benchmark):
    sizes = [2, 4, 8, 12]
    rows = []
    false_alarms = 0
    missed = 0
    checked = 0

    def check(glue, roles):
        start = time.perf_counter()
        composite = compose([glue, *roles])
        report = find_deadlocks(composite)
        elapsed = time.perf_counter() - start
        return report, len(composite.reachable_states()), elapsed

    for size in sizes:
        for name, glue, roles in correct_cases(size):
            report, states, elapsed = check(glue, roles)
            checked += 1
            if not report.deadlock_free:
                false_alarms += 1
            rows.append([name, "correct", states,
                         fmt(elapsed * 1000, 2) + "ms",
                         "ok" if report.deadlock_free else "FALSE-ALARM"])
        for name, glue, roles in buggy_cases(size):
            report, states, elapsed = check(glue, roles)
            checked += 1
            if report.deadlock_free:
                missed += 1
            rows.append([name, "buggy", states,
                         fmt(elapsed * 1000, 2) + "ms",
                         "detected" if not report.deadlock_free else "MISSED"])

    benchmark.pedantic(
        lambda: check(broadcast_glue(12),
                      [subscriber_protocol(i) for i in range(12)]),
        rounds=3, iterations=1,
    )
    print_table("E6 protocol compatibility checking",
                ["case", "kind", "states", "cost", "verdict"], rows)
    print(f"checked={checked} missed={missed} false_alarms={false_alarms}")

    assert missed == 0, "every injected protocol bug must be detected"
    assert false_alarms == 0, "correct glue must never be rejected"

    # Cost grows with the composed state count: the largest broadcast
    # family explores more states than the smallest.
    small = compose([broadcast_glue(2)] + [subscriber_protocol(i)
                                           for i in range(2)])
    large = compose([broadcast_glue(12)] + [subscriber_protocol(i)
                                            for i in range(12)])
    assert (len(large.reachable_states())
            > len(small.reachable_states()))


def test_e6_factory_rejects_incompatible_spec(benchmark):
    """The factory front-end refuses to build deadlocking glue."""
    from repro.connectors import ConnectorFactory, ConnectorSpec
    from repro.errors import IncompatibleProtocolError
    from tests.helpers import echo_interface

    factory = ConnectorFactory()
    bad = ConnectorSpec(
        "bad", "rpc", echo_interface(),
        options={"protocols": (
            rpc_glue(),
            [Lts.cycle("impatient", ["call", "call", "return"]),
             rpc_server_protocol()],
        )},
    )

    def attempt():
        try:
            factory.create(bad)
        except IncompatibleProtocolError:
            return True
        return False

    rejected = benchmark(attempt)
    assert rejected

"""E2 — "in case light-weight highly reactive solutions are required,
dynamic adaptability should be preferred to dynamic reconfiguration".

A bandwidth collapse hits a video service at t=1.  Three reactions are
compared under identical open-loop traffic:

* none            — keep serving high-bitrate frames (they fail);
* adaptation      — switch the codec strategy in place (no quiescence);
* reconfiguration — hot-swap the encoder component transactionally.

Series reported per reaction: reaction latency (drop → first successful
frame), requests disrupted (failed or buffered during the window), and
the simulated blocked time.  Expected shape: adaptation reacts faster
and disrupts fewer requests; both beat doing nothing.
"""

import pytest

from repro import Simulator, star
from repro.adaptation import AdaptationManager, AdaptationPolicy, switch_strategy
from repro.kernel import Assembly, Component, Interface, Operation
from repro.reconfig import ReconfigurationTransaction, ReplaceComponent
from repro.strategy import Strategy, StrategySlot
from repro.workloads import OpenLoopGenerator, binding_transport

from conftest import fmt, print_table

BANDWIDTH_DROP_AT = 1.0
HIGH_NEEDS = 6.0
LOW_NEEDS = 1.0


def encoder_interface():
    return Interface("Encoder", "1.0", [Operation("encode", ("frame",))])


class Encoder(Component):
    """Encodes frames; fails when the link cannot carry the bitrate."""

    def __init__(self, name, bitrate_needed, link_bandwidth):
        super().__init__(name)
        self.bitrate_needed = bitrate_needed
        self.link_bandwidth = link_bandwidth

    def encode(self, frame):
        if self.bitrate_needed() > self.link_bandwidth():
            raise RuntimeError("link saturated")
        return f"enc({frame})"


def run_scenario(reaction: str) -> dict:
    sim = Simulator()
    assembly = Assembly(star(sim, leaves=2))
    bandwidth = {"value": 10.0}

    codec = StrategySlot("codec", [
        Strategy("high", lambda: HIGH_NEEDS),
        Strategy("low", lambda: LOW_NEEDS),
    ], initial="high")

    encoder = Encoder("encoder", bitrate_needed=lambda: codec.current(),
                      link_bandwidth=lambda: bandwidth["value"])
    encoder.provide("svc", encoder_interface())
    assembly.deploy(encoder, "leaf1")

    client = Component("client")
    client.require("enc", encoder_interface())
    assembly.deploy(client, "leaf0")
    assembly.connect("client", "enc", target_component="encoder",
                     target_port="svc")

    outcomes: list[tuple[float, bool]] = []

    def transport(operation, args, on_result, on_error):
        try:
            client.required_port("enc").call_async(
                operation, *args,
                on_result=lambda r: outcomes.append((sim.now, True)),
            )
        except Exception:  # noqa: BLE001 - sync failure path
            outcomes.append((sim.now, False))
            on_error(RuntimeError("failed"))
            return
        on_result(None)

    def raw_transport(operation, args, on_result, on_error):
        try:
            result = client.required_port("enc").call(operation, *args)
            outcomes.append((sim.now, True))
            on_result(result)
        except Exception as exc:  # noqa: BLE001
            outcomes.append((sim.now, False))
            on_error(exc)

    generator = OpenLoopGenerator(sim, raw_transport, "encode",
                                  make_args=lambda i: (f"f{i}",), rate=500.0)
    generator.start(duration=2.0)

    sim.at(lambda: bandwidth.__setitem__("value", 2.0), when=BANDWIDTH_DROP_AT)

    blocked_time = {"value": 0.0}
    if reaction == "adaptation":
        manager = AdaptationManager(sim, period=0.005)
        manager.add_probe("bandwidth", lambda: bandwidth["value"])
        manager.add_policy(AdaptationPolicy(
            "degrade",
            condition=lambda ctx: ctx["bandwidth"] < HIGH_NEEDS,
            actions=[switch_strategy(codec, "low", "congestion")],
            cooldown=1.0,
        ))
        manager.start()
    elif reaction == "reconfiguration":
        def swap():
            replacement = Encoder("encoder-v2",
                                  bitrate_needed=lambda: LOW_NEEDS,
                                  link_bandwidth=lambda: bandwidth["value"])
            replacement.provide("svc", encoder_interface())
            txn = ReconfigurationTransaction(assembly).add(
                ReplaceComponent("encoder", replacement, transfer=False)
            )
            txn.execute_async(on_done=lambda report: blocked_time.__setitem__(
                "value", report.blocked_duration))

        # A monitor notices the saturation on its next 5ms check.
        sim.at(swap, when=BANDWIDTH_DROP_AT + 0.005)

    sim.run(until=3.0)

    failures = [t for t, ok in outcomes if not ok and t >= BANDWIDTH_DROP_AT]
    successes_after = [t for t, ok in outcomes
                       if ok and t >= BANDWIDTH_DROP_AT]
    reaction_latency = (min(successes_after) - BANDWIDTH_DROP_AT
                        if successes_after else float("inf"))
    return {
        "reaction_latency": reaction_latency,
        "disrupted": len(failures),
        "blocked_time": blocked_time["value"],
        "served_total": sum(1 for _t, ok in outcomes if ok),
    }


def test_e2_adaptation_vs_reconfiguration(benchmark):
    results = {name: run_scenario(name)
               for name in ("none", "adaptation", "reconfiguration")}
    benchmark.pedantic(lambda: run_scenario("adaptation"),
                       rounds=1, iterations=1)
    rows = [
        [name,
         fmt(r["reaction_latency"] * 1000, 2) + "ms",
         r["disrupted"],
         fmt(r["blocked_time"] * 1000, 2) + "ms",
         r["served_total"]]
        for name, r in results.items()
    ]
    print_table("E2 reaction to bandwidth collapse",
                ["reaction", "first-good-frame", "disrupted", "blocked",
                 "served"], rows)

    adaptation = results["adaptation"]
    reconfiguration = results["reconfiguration"]
    none = results["none"]
    # Both reactions recover; doing nothing never recovers.
    assert none["reaction_latency"] == float("inf")
    assert adaptation["reaction_latency"] < float("inf")
    assert reconfiguration["reaction_latency"] < float("inf")
    # Adaptation disrupts fewer requests than reconfiguration, which in
    # turn beats doing nothing by an order of magnitude.
    assert adaptation["disrupted"] <= reconfiguration["disrupted"]
    assert reconfiguration["disrupted"] * 10 <= none["disrupted"]
    # Adaptation never blocks any channel.
    assert adaptation["blocked_time"] == 0.0
    assert reconfiguration["blocked_time"] > 0.0

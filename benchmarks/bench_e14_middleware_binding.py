"""E14 — adaptive middleware: dynamic binding through a naming service.

The paper's middleware survey culminates in dynamic binding: callers
should keep working while the platform re-binds objects underneath them.
Three client styles issue the same workload across a migration:

* **hardwired** — node baked into the proxy: every post-migration call
  fails until someone repairs the client;
* **manual rebind** — operations staff fix the proxy after the move;
* **named** — a :class:`NamedProxy` resolves through the directory and
  self-heals on the first stale call.

Series: requests failed around the migration, downtime (last failure −
migration instant), and the steady-state overhead of named resolution.
Expected shape: named ≈ zero sustained failures with one extra
resolution round-trip; hardwired fails forever.
"""

import pytest

from repro import Simulator, star
from repro.events import PeriodicTimer
from repro.middleware import (
    NamedProxy,
    NamingClient,
    Orb,
    RemoteProxy,
    deploy_naming_service,
)

from conftest import fmt, print_table
from tests.helpers import counter_interface, make_counter

MIGRATE_AT = 1.0
DURATION = 3.0
PERIOD = 0.02


def run(style: str) -> dict:
    sim = Simulator()
    net = star(sim, leaves=3)
    orbs = {name: Orb(net, name, default_timeout=0.5)
            for name in ("hub", "leaf0", "leaf1", "leaf2")}
    deploy_naming_service(orbs["hub"])
    server = make_counter("server")
    orbs["leaf1"].register("counter", server.provided_port("svc"))
    NamingClient(orbs["leaf1"], "hub").register("counter", "leaf1",
                                                "counter")
    sim.run(until=0.1)  # let the registration land

    plain_proxy = RemoteProxy(orbs["leaf0"], "leaf1", "counter",
                              counter_interface(), timeout=0.5)
    named_proxy = NamedProxy(orbs["leaf0"], "hub", "counter",
                             counter_interface(), timeout=0.5)

    outcomes: list[tuple[float, bool]] = []

    def issue():
        sent = sim.now
        proxy = named_proxy if style == "named" else plain_proxy
        proxy.call("increment", 1,
                   on_result=lambda r: outcomes.append((sent, True)),
                   on_error=lambda e: outcomes.append((sent, False)))

    traffic = PeriodicTimer(sim, PERIOD, issue)

    def migrate():
        orbs["leaf1"].unregister("counter")
        orbs["leaf2"].register("counter", server.provided_port("svc"))
        NamingClient(orbs["leaf2"], "hub").register("counter", "leaf2",
                                                    "counter")
        if style == "manual":
            # Staff notice and repair after one second.
            sim.schedule(plain_proxy.rebind, "leaf2", delay=1.0)

    sim.at(migrate, when=MIGRATE_AT)
    sim.run(until=DURATION)
    traffic.stop()
    sim.run(until=DURATION + 1.0)

    failures = [t for t, ok in outcomes if not ok]
    failed_after = [t for t in failures if t >= MIGRATE_AT]
    downtime = (max(failed_after) + PERIOD - MIGRATE_AT
                if failed_after else 0.0)
    return {
        "ok": sum(1 for _t, ok in outcomes if ok),
        "failed": len(failures),
        "downtime": downtime,
        "resolutions": (named_proxy.resolution_count
                        if style == "named" else 0),
    }


def test_e14_dynamic_binding_through_naming(benchmark):
    results = {style: run(style)
               for style in ("hardwired", "manual", "named")}
    benchmark.pedantic(lambda: run("named"), rounds=1, iterations=1)

    rows = [
        [style, r["ok"], r["failed"],
         fmt(r["downtime"], 2) + "s", r["resolutions"]]
        for style, r in results.items()
    ]
    print_table("E14 client styles across a migration",
                ["style", "ok", "failed", "downtime", "resolutions"], rows)

    hardwired, manual, named = (results["hardwired"], results["manual"],
                                results["named"])
    # Hardwired never recovers: it fails from the migration to the end.
    assert hardwired["downtime"] >= (DURATION - MIGRATE_AT) * 0.9
    # Manual repair bounds the outage at the humans' reaction time.
    assert 0.5 <= manual["downtime"] <= 1.6
    # Named binding self-heals within a handful of requests.
    assert named["downtime"] < 0.2
    assert named["failed"] <= 2
    assert named["resolutions"] == 2  # initial + one refresh

"""CI gate: fail the build when a benchmark regresses below its floor.

Reads the JSON artifacts the bench suites write and enforces the
committed performance claims:

* ``BENCH_kernel.json`` — the S0 kernel/QoS speedups over the seed
  implementations must stay above their floors (the same floors
  ``bench_s0_kernel.py`` asserts in its pytest entries).
* ``BENCH_telemetry.json`` (optional) — telemetry that is installed but
  disabled must stay near-free on the kernel hot path (<5%), sampled
  telemetry at 1% must stay production-grade (<10% on both the kernel
  churn and the netsim lineage storm), and the sampled run must not
  have wrapped the default span ring (zero drops).
* ``BENCH_parallel.json`` (optional) — the sharded run must be the same
  simulation: merged trace checksums identical across the process
  backend (barrier and overlapped exchange), the single-shard baseline,
  repeated same-seed runs and a killed-and-replayed worker; the
  overlapped exchange must execute *strictly fewer* synchronization
  stalls than the barrier on the same workload.  The >= 2.5x events/sec
  speedup floor is enforced only when the artifact was produced on a
  host with >= 4 cores — a starved runner cannot demonstrate
  parallelism, but it can still demonstrate determinism.
* ``BENCH_parallel_large.json`` (optional) — the memory-lean
  million-node tier: per-region delivery digests identical across
  backends/modes/repeats, zero drops, and the tracemalloc
  bytes-per-node probe under its ceiling.  The >= 1M nodes / >= 10M
  messages scenario floors apply only to ``mode == "large"`` artifacts
  (the CI-sized ``large_smoke`` rehearsal keeps the determinism and
  memory floors).

Exit status 0 = all floors held; 1 = regression (or missing/garbled
required artifact).  Run::

    python benchmarks/check_bench_regression.py [--kernel PATH]
        [--telemetry PATH] [--parallel PATH] [--parallel-large PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

#: (artifact, dotted-path, floor, direction) — one row per claim.
#: direction "min" means value must be >= floor; "max" means <= floor.
FLOORS = [
    ("kernel", "events.speedup", 1.5, "min",
     "event-churn speedup over seed kernel"),
    ("kernel", "qos.speedup", 2.5, "min",
     "QoS statistics speedup over seed implementation"),
    ("telemetry", "kernel.overhead_pct.disabled", 5.0, "max",
     "kernel overhead in mode 'disabled' — installed but not "
     "recording (%)"),
    ("telemetry", "kernel.overhead_pct.sampled_1pct", 10.0, "max",
     "kernel overhead in mode 'sampled_1pct' — enabled, 1% head "
     "sampling (%)"),
    ("telemetry", "netsim.overhead_pct_sampled", 10.0, "max",
     "netsim lineage overhead in mode 'sampled 1%' (%)"),
    ("telemetry", "drops", 0, "max",
     "span-ring drops in mode 'sampled_1pct' at default capacity"),
    ("parallel", "determinism.backends_match", 1, "min",
     "merged trace checksum: process backend == single-shard baseline"),
    ("parallel", "determinism.overlapped_match", 1, "min",
     "merged trace checksum: overlapped exchange == single-shard "
     "baseline"),
    ("parallel", "determinism.repeat_match", 1, "min",
     "merged trace checksum byte-stable across same-seed parallel runs"),
    ("parallel", "determinism.restart_match", 1, "min",
     "merged trace checksum preserved across a killed-worker replay"),
    ("parallel", "restart.restarts", 1, "min",
     "the chaos run actually killed and revived a worker"),
    ("parallel_large", "determinism.backends_match", 1, "min",
     "lean-tier delivery digest: process barrier == single-shard"),
    ("parallel_large", "determinism.overlapped_match", 1, "min",
     "lean-tier delivery digest: overlapped exchange == single-shard"),
    ("parallel_large", "determinism.repeat_match", 1, "min",
     "lean-tier delivery digest byte-stable across same-seed "
     "overlapped runs"),
    ("parallel_large", "determinism.zero_drops", 1, "min",
     "lean tier delivers every message (no drops in any run)"),
    ("parallel_large", "memory.bytes_per_node", 64.0, "max",
     "memory-lean scenario traced bytes per node (probe reads ~9)"),
]

#: Enforced only when the parallel artifact reports enough cores.
PARALLEL_SPEEDUP_FLOOR = 2.5
PARALLEL_MIN_CORES = 4
#: Million-node tier scenario floors, applied to mode == "large" only.
LARGE_MIN_NODES = 1_000_000
LARGE_MIN_MESSAGES = 10_000_000


def lookup(data: dict, dotted: str):
    value = data
    for key in dotted.split("."):
        value = value[key]
    return value


def check(kernel_path: Path, telemetry_path: Path,
          parallel_path: Path, parallel_large_path: Path) -> int:
    artifacts = {}
    if not kernel_path.exists():
        print(f"FAIL  required artifact missing: {kernel_path}")
        return 1
    artifacts["kernel"] = json.loads(kernel_path.read_text())
    if telemetry_path.exists():
        artifacts["telemetry"] = json.loads(telemetry_path.read_text())
    else:
        print(f"note  {telemetry_path} not found; telemetry floors skipped")
    if parallel_path.exists():
        artifacts["parallel"] = json.loads(parallel_path.read_text())
    else:
        print(f"note  {parallel_path} not found; parallel floors skipped")
    if parallel_large_path.exists():
        artifacts["parallel_large"] = json.loads(
            parallel_large_path.read_text())
    else:
        print(f"note  {parallel_large_path} not found; million-node "
              f"floors skipped")

    floors = list(FLOORS)
    parallel = artifacts.get("parallel")
    if parallel is not None:
        cores = parallel.get("cores") or 0
        if cores >= PARALLEL_MIN_CORES:
            floors.append(
                ("parallel", "speedup", PARALLEL_SPEEDUP_FLOOR, "min",
                 f"parallel events/sec over single-shard baseline "
                 f"({cores} cores)"))
        else:
            print(f"note  parallel artifact from a {cores}-core host; "
                  f"speedup floor ({PARALLEL_SPEEDUP_FLOOR}x) needs "
                  f">= {PARALLEL_MIN_CORES} cores and is skipped — "
                  f"determinism floors still apply")
        barrier_stalls = parallel.get("parallel", {}).get("sync_stalls")
        if barrier_stalls is not None:
            # Strictly fewer: the overlapped exchange must beat the
            # barrier's stall count on the identical committed workload.
            floors.append(
                ("parallel", "overlapped.sync_stalls",
                 barrier_stalls - 1, "max",
                 f"overlapped sync stalls strictly below the barrier's "
                 f"{barrier_stalls}"))
    large = artifacts.get("parallel_large")
    if large is not None and large.get("mode") == "large":
        floors.append(
            ("parallel_large", "scenario.nodes_total",
             LARGE_MIN_NODES, "min",
             "million-node tier simulates >= 1M nodes"))
        floors.append(
            ("parallel_large", "scenario.messages_total",
             LARGE_MIN_MESSAGES, "min",
             "million-node tier pushes >= 10M messages"))

    failures = 0
    for artifact, dotted, floor, direction, claim in floors:
        data = artifacts.get(artifact)
        if data is None:
            continue
        try:
            value = lookup(data, dotted)
        except KeyError:
            print(f"FAIL  {artifact}:{dotted} missing — {claim}")
            failures += 1
            continue
        ok = value >= floor if direction == "min" else value <= floor
        bound = ">=" if direction == "min" else "<="
        status = "ok  " if ok else "FAIL"
        print(f"{status}  {artifact}:{dotted} = {value:.3f} "
              f"(floor {bound} {floor}) — {claim}")
        if not ok:
            failures += 1

    if failures:
        print(f"\n{failures} benchmark floor(s) violated")
        return 1
    print("\nall benchmark floors held")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernel", type=Path,
                        default=_ROOT / "BENCH_kernel.json")
    parser.add_argument("--telemetry", type=Path,
                        default=_ROOT / "BENCH_telemetry.json")
    parser.add_argument("--parallel", type=Path,
                        default=_ROOT / "BENCH_parallel.json")
    parser.add_argument("--parallel-large", type=Path,
                        default=_ROOT / "BENCH_parallel_large.json")
    cli = parser.parse_args(argv)
    return check(cli.kernel, cli.telemetry, cli.parallel,
                 cli.parallel_large)


if __name__ == "__main__":
    sys.exit(main())

"""CI gate: fail the build when a benchmark regresses below its floor.

Reads the JSON artifacts the bench suites write and enforces the
committed performance claims:

* ``BENCH_kernel.json`` — the S0 kernel/QoS speedups over the seed
  implementations must stay above their floors (the same floors
  ``bench_s0_kernel.py`` asserts in its pytest entries).
* ``BENCH_telemetry.json`` (optional) — telemetry that is installed but
  disabled must stay near-free on the kernel hot path (<5%), sampled
  telemetry at 1% must stay production-grade (<10% on both the kernel
  churn and the netsim lineage storm), and the sampled run must not
  have wrapped the default span ring (zero drops).
* ``BENCH_parallel.json`` (optional) — the sharded run must be the same
  simulation: merged trace checksums identical across the process
  backend, the single-shard baseline, repeated same-seed runs and a
  killed-and-replayed worker.  The >= 2.5x events/sec speedup floor is
  enforced only when the artifact was produced on a host with >= 4
  cores — a starved runner cannot demonstrate parallelism, but it can
  still demonstrate determinism.

Exit status 0 = all floors held; 1 = regression (or missing/garbled
required artifact).  Run::

    python benchmarks/check_bench_regression.py [--kernel PATH]
        [--telemetry PATH] [--parallel PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent

#: (artifact, dotted-path, floor, direction) — one row per claim.
#: direction "min" means value must be >= floor; "max" means <= floor.
FLOORS = [
    ("kernel", "events.speedup", 1.5, "min",
     "event-churn speedup over seed kernel"),
    ("kernel", "qos.speedup", 2.5, "min",
     "QoS statistics speedup over seed implementation"),
    ("telemetry", "kernel.overhead_pct.disabled", 5.0, "max",
     "kernel overhead in mode 'disabled' — installed but not "
     "recording (%)"),
    ("telemetry", "kernel.overhead_pct.sampled_1pct", 10.0, "max",
     "kernel overhead in mode 'sampled_1pct' — enabled, 1% head "
     "sampling (%)"),
    ("telemetry", "netsim.overhead_pct_sampled", 10.0, "max",
     "netsim lineage overhead in mode 'sampled 1%' (%)"),
    ("telemetry", "drops", 0, "max",
     "span-ring drops in mode 'sampled_1pct' at default capacity"),
    ("parallel", "determinism.backends_match", 1, "min",
     "merged trace checksum: process backend == single-shard baseline"),
    ("parallel", "determinism.repeat_match", 1, "min",
     "merged trace checksum byte-stable across same-seed parallel runs"),
    ("parallel", "determinism.restart_match", 1, "min",
     "merged trace checksum preserved across a killed-worker replay"),
    ("parallel", "restart.restarts", 1, "min",
     "the chaos run actually killed and revived a worker"),
]

#: Enforced only when the parallel artifact reports enough cores.
PARALLEL_SPEEDUP_FLOOR = 2.5
PARALLEL_MIN_CORES = 4


def lookup(data: dict, dotted: str):
    value = data
    for key in dotted.split("."):
        value = value[key]
    return value


def check(kernel_path: Path, telemetry_path: Path,
          parallel_path: Path) -> int:
    artifacts = {}
    if not kernel_path.exists():
        print(f"FAIL  required artifact missing: {kernel_path}")
        return 1
    artifacts["kernel"] = json.loads(kernel_path.read_text())
    if telemetry_path.exists():
        artifacts["telemetry"] = json.loads(telemetry_path.read_text())
    else:
        print(f"note  {telemetry_path} not found; telemetry floors skipped")
    if parallel_path.exists():
        artifacts["parallel"] = json.loads(parallel_path.read_text())
    else:
        print(f"note  {parallel_path} not found; parallel floors skipped")

    floors = list(FLOORS)
    parallel = artifacts.get("parallel")
    if parallel is not None:
        cores = parallel.get("cores") or 0
        if cores >= PARALLEL_MIN_CORES:
            floors.append(
                ("parallel", "speedup", PARALLEL_SPEEDUP_FLOOR, "min",
                 f"parallel events/sec over single-shard baseline "
                 f"({cores} cores)"))
        else:
            print(f"note  parallel artifact from a {cores}-core host; "
                  f"speedup floor ({PARALLEL_SPEEDUP_FLOOR}x) needs "
                  f">= {PARALLEL_MIN_CORES} cores and is skipped — "
                  f"determinism floors still apply")

    failures = 0
    for artifact, dotted, floor, direction, claim in floors:
        data = artifacts.get(artifact)
        if data is None:
            continue
        try:
            value = lookup(data, dotted)
        except KeyError:
            print(f"FAIL  {artifact}:{dotted} missing — {claim}")
            failures += 1
            continue
        ok = value >= floor if direction == "min" else value <= floor
        bound = ">=" if direction == "min" else "<="
        status = "ok  " if ok else "FAIL"
        print(f"{status}  {artifact}:{dotted} = {value:.3f} "
              f"(floor {bound} {floor}) — {claim}")
        if not ok:
            failures += 1

    if failures:
        print(f"\n{failures} benchmark floor(s) violated")
        return 1
    print("\nall benchmark floors held")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--kernel", type=Path,
                        default=_ROOT / "BENCH_kernel.json")
    parser.add_argument("--telemetry", type=Path,
                        default=_ROOT / "BENCH_telemetry.json")
    parser.add_argument("--parallel", type=Path,
                        default=_ROOT / "BENCH_parallel.json")
    cli = parser.parse_args(argv)
    return check(cli.kernel, cli.telemetry, cli.parallel)


if __name__ == "__main__":
    sys.exit(main())

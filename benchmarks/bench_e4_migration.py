"""E4 — geographical changes for load balancing.

Skewed background load hits the rack hosting all workers.  With the
migration planner enabled, RAML drains the hot hosts ("host components
on a less loaded hardware, so that the components can execute faster").
Series: throughput and p99 request latency during the hot phase, planner
off vs on.  Expected shape: the planner cuts hot-phase p99 by ≥2×.
"""

import pytest

from repro import Simulator, datacenter
from repro.core import Raml, Response, node_load_below
from repro.kernel import Assembly, Component, Interface, Operation
from repro.middleware import Orb, RemoteProxy
from repro.netsim import hosts
from repro.reconfig import MigrationPlanner
from repro.workloads import ClosedLoopGenerator

from conftest import fmt, print_table


def work_interface():
    return Interface("Work", "1.0", [Operation("execute", ("job",))])


class Worker(Component):
    def on_initialize(self):
        self.state.setdefault("jobs", 0)

    def execute(self, job):
        self.state["jobs"] += 1
        return job


def p99(latencies):
    if not latencies:
        return 0.0
    ordered = sorted(latencies)
    return ordered[min(len(ordered) - 1, int(0.99 * len(ordered)))]


def run_scenario(rebalance: bool) -> dict:
    sim = Simulator()
    network = datacenter(sim, racks=2, hosts_per_rack=4)
    assembly = Assembly(network)
    host_names = hosts(network)
    hot_hosts = [h for h in host_names if h.startswith("rack0")]

    workers = []
    orbs = {name: Orb(network, name) for name in host_names}
    for index in range(4):
        worker = Worker(f"worker{index}")
        worker.provide("svc", work_interface())
        assembly.deploy(worker, hot_hosts[index])
        orbs[hot_hosts[index]].register(worker.name,
                                        worker.provided_port("svc"),
                                        work_units=4.0)
        workers.append(worker)

    proxies = [RemoteProxy(orbs["rack1-host3"], w.node_name, w.name,
                           work_interface(), timeout=5.0) for w in workers]
    state = {"next": 0}

    def transport(operation, args, on_result, on_error):
        index = state["next"] % len(workers)
        state["next"] += 1
        proxy, worker = proxies[index], workers[index]
        if proxy.target_node != worker.node_name:
            proxy.rebind(worker.node_name)
        proxy.call(operation, *args, on_result=on_result, on_error=on_error)

    generator = ClosedLoopGenerator(sim, transport, "execute",
                                    make_args=lambda i: (i,), concurrency=8)

    sim.at(lambda: [network.node(h).set_background_load(0.85)
                         for h in hot_hosts], when=5.0)

    raml = Raml(assembly, period=1.0).instrument()
    if rebalance:
        planner = MigrationPlanner(assembly, high_watermark=0.75,
                                   low_watermark=0.5)

        def migrate(raml_, violations):
            for move in planner.plan_load_levelling(max_moves=4):
                worker = assembly.component(move.component)
                raml_.intercessor.migrate(move.component, move.target)
                orbs[move.source].unregister(move.component)
                orbs[move.target].register(move.component,
                                           worker.provided_port("svc"),
                                           work_units=4.0)

        raml.add_constraint(node_load_below(0.75),
                            Response(reconfigure=migrate, escalate_after=2))
    raml.start()
    generator.start()
    sim.run(until=5.0)
    calm = list(generator.stats.latencies)
    generator.stats.latencies.clear()
    sim.run(until=40.0)
    hot = list(generator.stats.latencies)
    generator.stop()
    raml.stop()
    sim.run(until=45.0)

    return {
        "calm_p99": p99(calm),
        "hot_p99": p99(hot),
        "hot_throughput": len(hot) / 35.0,
        "migrations": len(raml.intercessor.transactions) if rebalance else 0,
    }


def test_e4_migration_for_load_balancing(benchmark):
    static = run_scenario(rebalance=False)
    planned = run_scenario(rebalance=True)
    benchmark.pedantic(lambda: run_scenario(True), rounds=1, iterations=1)

    rows = [
        [name,
         fmt(r["calm_p99"] * 1000, 1) + "ms",
         fmt(r["hot_p99"] * 1000, 1) + "ms",
         fmt(r["hot_throughput"], 1) + "/s",
         r["migrations"]]
        for name, r in (("planner-off", static), ("planner-on", planned))
    ]
    print_table("E4 migration under skewed load",
                ["scenario", "calm-p99", "hot-p99", "hot-tput",
                 "migrations"], rows)

    assert planned["migrations"] >= 1
    # The planner cuts hot-phase p99 latency by at least 2x and raises
    # throughput.
    assert static["hot_p99"] >= 2.0 * planned["hot_p99"]
    assert planned["hot_throughput"] > static["hot_throughput"]


def test_e4_affinity_moves_service_closer_to_demand(benchmark):
    """The other geographical policy: migrate towards the demand source
    ("closer to the demand") — round-trips over the wide link disappear."""
    from repro import Simulator
    from repro.kernel import Assembly
    from repro.netsim import line
    from repro.reconfig import TrafficMatrix

    def run(affine: bool) -> float:
        sim = Simulator()
        # A 4-hop chain: demand at n0, service naively placed at n3.
        network = line(sim, length=4, latency=0.01)
        assembly = Assembly(network)
        worker = Worker("svc")
        worker.provide("svc", work_interface())
        assembly.deploy(worker, "n3")
        orbs = {name: Orb(network, name) for name in network.nodes}
        orbs["n3"].register("svc", worker.provided_port("svc"))
        proxy = RemoteProxy(orbs["n0"], "n3", "svc", work_interface(),
                            timeout=5.0)
        traffic_matrix = TrafficMatrix()
        latencies = []

        def issue():
            sent = sim.now
            traffic_matrix.record("n0", "svc")
            proxy.call("execute", "job",
                       on_result=lambda r: latencies.append(sim.now - sent))

        from repro.events import PeriodicTimer

        generator = PeriodicTimer(sim, 0.1, issue)

        if affine:
            def relocate():
                planner = MigrationPlanner(assembly)
                for move in planner.plan_affinity(traffic_matrix):
                    raml = Raml(assembly)
                    raml.intercessor.migrate(move.component, move.target)
                    orbs["n3"].unregister("svc")
                    orbs[move.target].register(
                        "svc", worker.provided_port("svc"))
                    proxy.rebind(move.target)

            sim.at(relocate, when=2.0)

        sim.run(until=6.0)
        generator.stop()
        sim.run(until=7.0)
        tail = latencies[-20:]
        return sum(tail) / len(tail)

    remote = run(affine=False)
    local = run(affine=True)
    benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    print_table("E4b affinity migration",
                ["placement", "steady-state latency"],
                [["far from demand", fmt(remote * 1000, 2) + "ms"],
                 ["moved to demand", fmt(local * 1000, 2) + "ms"]])
    # Three hops of latency disappear: at least a 3x improvement.
    assert remote > 3.0 * local

"""E1 — "a connector is a light-weight component … induces a low overload".

Measures per-call cost of a direct binding versus each builtin connector
kind interposed on the same call path.  Expected shape: any connector
stays within a small constant factor (≤ ~3×) of the direct call.
"""

import time

import pytest

from repro.connectors import (
    BroadcastConnector,
    FailoverConnector,
    LoadBalancerConnector,
    PipelineConnector,
    RpcConnector,
)
from repro.kernel import Component, Invocation, bind

from conftest import fmt, print_table
from tests.helpers import echo_interface, make_echo, make_stage


def direct_path():
    server = make_echo("server")
    return server.provided_port("svc")


def rpc_path():
    connector = RpcConnector("rpc", echo_interface())
    connector.attach("server", make_echo("server").provided_port("svc"))
    return connector.endpoint("client")


def load_balancer_path():
    connector = LoadBalancerConnector("lb", echo_interface())
    for index in range(3):
        connector.attach("worker", make_echo(f"w{index}").provided_port("svc"))
    return connector.endpoint("client")


def failover_path():
    connector = FailoverConnector("fo", echo_interface())
    connector.attach("replica", make_echo("primary").provided_port("svc"))
    connector.attach("replica", make_echo("backup").provided_port("svc"))
    return connector.endpoint("client")


def broadcast_path():
    connector = BroadcastConnector("bc", echo_interface())
    connector.attach("subscriber", make_echo("s0").provided_port("svc"))
    return connector.endpoint("publisher")


def pipeline_path():
    connector = PipelineConnector("pipe")
    connector.attach("stage", make_stage("id", lambda v: v).provided_port("svc"))
    return connector.endpoint("source")


PATHS = {
    "direct": direct_path,
    "rpc": rpc_path,
    "load-balancer": load_balancer_path,
    "failover": failover_path,
    "broadcast": broadcast_path,
    "pipeline": pipeline_path,
}


def _cost_per_call(target, calls=20_000):
    operation = "process" if target.interface.name == "Stage" else "echo"
    invocation = Invocation(operation, ("x",))
    start = time.perf_counter()
    for _ in range(calls):
        target.invoke(invocation)
    return (time.perf_counter() - start) / calls


@pytest.mark.parametrize("kind", list(PATHS))
def test_e1_call_cost(benchmark, kind):
    """Per-kind micro-benchmark (compare groups in the report)."""
    target = PATHS[kind]()
    operation = "process" if target.interface.name == "Stage" else "echo"
    invocation = Invocation(operation, ("x",))
    benchmark(target.invoke, invocation)


def test_e1_overhead_factors(benchmark):
    """The headline series: connector cost relative to a direct call."""
    costs = {kind: _cost_per_call(factory(), calls=5_000)
             for kind, factory in PATHS.items()}
    benchmark.pedantic(lambda: _cost_per_call(PATHS["rpc"](), calls=5_000),
                       rounds=1, iterations=1)
    baseline = costs["direct"]
    rows = [
        [kind, f"{cost * 1e6:.2f}us", fmt(cost / baseline, 2) + "x"]
        for kind, cost in costs.items()
    ]
    print_table("E1 connector overhead (per call)",
                ["path", "cost", "vs direct"], rows)
    # Shape: the simple pass-through connectors are light-weight.
    for kind in ("rpc", "failover"):
        assert costs[kind] / baseline < 4.0, (
            f"{kind} connector overhead {costs[kind] / baseline:.2f}x "
            "exceeds the light-weight claim"
        )
    # Even the richest glue stays within an order of magnitude.
    for kind, cost in costs.items():
        assert cost / baseline < 10.0

"""S0 — the simulation substrate itself: event kernel + QoS statistics.

Every claim-bench (E1–E14, F1, A1) runs on `repro.events` and
`repro.qos.metrics`, so their per-event / per-sample cost bounds the whole
platform.  This bench pits the current fast-path kernel against inline
copies of the *seed* implementations (rich-compare dataclass events, O(n)
`pending_events`, no compaction, re-sorting percentiles) on two workloads:

* **churn** — a timeout-heavy session workload (arrival, completion,
  cancelled timeout per session) with a periodic poller reading
  `pending_events`; measures events/sec.
* **qos-monitor** — per-request latency recording with periodic monitor
  ticks reading mean/stddev/p50/p95/max; measures records/sec.

Determinism is asserted, not assumed: the legacy and fast kernels must
produce byte-identical event traces, and two fast runs must match too.

Full runs are written to ``BENCH_kernel.json`` at the repo root so the
perf trajectory is tracked from PR to PR; ``--smoke`` runs default to
the gitignored ``BENCH_kernel.smoke.json`` so short noisy runs never
replace the canonical artifact.  Run standalone::

    python benchmarks/bench_s0_kernel.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import heapq
import json
import math
import random
import sys
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.events import PeriodicTimer, Simulator
from repro.qos.metrics import MetricSeries

from conftest import fmt, peak_rss_mb, print_table

_MASK = (1 << 64) - 1
DEFAULT_OUT = _ROOT / "BENCH_kernel.json"
SMOKE_OUT = _ROOT / "BENCH_kernel.smoke.json"


# ---------------------------------------------------------------------------
# Seed-shaped legacy implementations (the "old" side of old-vs-new).
# ---------------------------------------------------------------------------


@dataclass(order=True)
class LegacyEvent:
    """Seed event: rich-compare dataclass, compared on every heap sift."""

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        self.cancelled = True


class LegacySimulator:
    """Seed kernel: object heap, O(n) pending scan, garbage never compacted."""

    def __init__(self) -> None:
        self._queue: list[LegacyEvent] = []
        self._now = 0.0
        self._seq = 0
        self._executed = 0

    @property
    def now(self) -> float:
        return self._now

    @property
    def pending_events(self) -> int:
        return sum(1 for event in self._queue if not event.cancelled)

    def schedule(self, *args, delay=None, priority=0):
        # Seed shape (delay, callback, *args); also accepts the canonical
        # (callback, *args, delay=...) so shared drivers (PeriodicTimer)
        # can run against this stand-in after the PR-8 API unification.
        if delay is None:
            delay, args = args[0], args[1:]
        return self.at(self._now + delay, *args, priority=priority)

    def at(self, *args, when=None, priority=0):
        if when is None:
            when, args = args[0], args[1:]
        event = LegacyEvent(when, priority, self._seq, args[0], args[1:])
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def run(self, until=None):
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = head.time
            self._executed += 1
            head.callback(*head.args)
        if until is not None and until > self._now:
            self._now = until
        return self._now


class LegacyMetricSeries:
    """Seed series: stats rescan the window; percentile re-sorts it."""

    def __init__(self, name, window=10.0):
        self.name = name
        self.window = window
        self._times: list[float] = []
        self._values: list[float] = []

    def record(self, value, now):
        self._times.append(now)
        self._values.append(float(value))
        cutoff = now - self.window
        keep_from = bisect_right(self._times, cutoff)
        if keep_from:
            del self._times[:keep_from]
            del self._values[:keep_from]

    def mean(self):
        return sum(self._values) / len(self._values) if self._values else 0.0

    def maximum(self):
        return max(self._values) if self._values else 0.0

    def stddev(self):
        if len(self._values) < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(
            sum((v - mu) ** 2 for v in self._values) / (len(self._values) - 1)
        )

    def percentile(self, q):
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high or ordered[low] == ordered[high]:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac


# ---------------------------------------------------------------------------
# Workloads (identical drivers for both kernels).
# ---------------------------------------------------------------------------


class ChurnDriver:
    """Timeout-churn sessions: arrival → completion cancelling a timeout.

    The cancelled timeouts are the lazy-deletion garbage the seed kernel
    never reclaims; the poller is the telemetry read that was O(n).
    """

    def __init__(self, sim, sessions: int, horizon: float = 100.0) -> None:
        self.sim = sim
        self.sessions = sessions
        self.horizon = horizon
        self.checksum = 17
        self.completed = 0
        self.timed_out = 0
        # The seed stand-in only speaks the pre-unification positional
        # shape; the real kernel is driven through the canonical one so
        # the measured fast path never pays the deprecation shim.
        self._seed_shape = isinstance(sim, LegacySimulator)

    def _mix(self, *parts: float) -> None:
        state = self.checksum
        for part in parts:
            state = (state * 1000003 + hash(part)) & _MASK
        self.checksum = state

    def load(self) -> int:
        rng = random.Random(20260805)
        horizon = self.horizon
        arrivals = sorted(
            (rng.uniform(0.0, horizon), 0.01 + rng.random() * 0.5)
            for _ in range(self.sessions)
        )
        items = [(t, self._arrive, (duration,)) for t, duration in arrivals]
        if hasattr(self.sim, "schedule_many"):
            self.sim.schedule_many(items, absolute=True)
        else:
            for t, callback, args in items:
                self.sim.at(t, callback, *args)
        return 3 * len(items)  # arrival + completion + (cancelled) timeout

    def _arrive(self, duration: float) -> None:
        if self._seed_shape:
            timeout = self.sim.schedule(duration * 5.0, self._timeout)
            self.sim.schedule(duration, self._complete, timeout)
        else:
            timeout = self.sim.schedule(self._timeout, delay=duration * 5.0)
            self.sim.schedule(self._complete, timeout, delay=duration)

    def _complete(self, timeout) -> None:
        timeout.cancel()
        self.completed += 1
        self._mix(self.sim.now, 1.0)

    def _timeout(self) -> None:
        self.timed_out += 1
        self._mix(self.sim.now, 2.0)

    def poll(self) -> None:
        self._mix(float(self.sim.pending_events), 3.0)


def run_churn(sim_cls, sessions: int, poll_period: float = 1.0):
    sim = sim_cls()
    driver = ChurnDriver(sim, sessions)
    scheduled = driver.load()
    PeriodicTimer(sim, poll_period, driver.poll)
    start = time.perf_counter()
    sim.run(until=driver.horizon + 10.0)
    elapsed = time.perf_counter() - start
    assert driver.completed == sessions and driver.timed_out == 0
    return {
        "scheduled_events": scheduled,
        "elapsed_s": elapsed,
        "events_per_sec": scheduled / elapsed,
        "checksum": driver.checksum,
    }


def run_qos_monitor(series_cls, records: int, tick_every: int = 25,
                    window: float = 5.0):
    rng = random.Random(7)
    values = [0.001 + rng.random() * 0.2 for _ in range(records)]
    series = series_cls("latency", window=window)
    accumulator = 0.0
    start = time.perf_counter()
    now = 0.0
    for index, value in enumerate(values):
        now += 0.001
        series.record(value, now)
        if index % tick_every == 0:
            accumulator += (
                series.mean()
                + series.stddev()
                + series.percentile(50)
                + series.percentile(95)
                + series.maximum()
            )
    elapsed = time.perf_counter() - start
    return {
        "records": records,
        "monitor_ticks": records // tick_every + (1 if records else 0),
        "window_population": int(window / 0.001),
        "elapsed_s": elapsed,
        "records_per_sec": records / elapsed,
        "accumulator": accumulator,
    }


# ---------------------------------------------------------------------------
# Harness.
# ---------------------------------------------------------------------------


def run_suite(smoke: bool) -> dict:
    sessions = 40_000 if smoke else 333_334  # ×3 events each
    records = 40_000 if smoke else 400_000

    legacy_churn = run_churn(LegacySimulator, sessions)
    new_churn = run_churn(Simulator, sessions)
    new_churn_repeat = run_churn(Simulator, sessions)

    # Determinism: the fast kernel must interleave exactly like the seed
    # kernel, and exactly like itself.
    assert new_churn["checksum"] == new_churn_repeat["checksum"], (
        "fast kernel is not deterministic across identical runs"
    )
    assert new_churn["checksum"] == legacy_churn["checksum"], (
        "fast kernel interleaves differently from the seed kernel"
    )

    legacy_qos = run_qos_monitor(LegacyMetricSeries, records)
    new_qos = run_qos_monitor(MetricSeries, records)
    qos_drift = abs(legacy_qos["accumulator"] - new_qos["accumulator"])
    qos_scale = max(1.0, abs(legacy_qos["accumulator"]))
    assert qos_drift / qos_scale < 1e-9, (
        f"incremental statistics diverged from the seed series: {qos_drift}"
    )

    events_speedup = new_churn["events_per_sec"] / legacy_churn["events_per_sec"]
    qos_speedup = new_qos["records_per_sec"] / legacy_qos["records_per_sec"]

    print_table(
        "S0 event-kernel churn (arrival/completion/cancelled-timeout)",
        ["kernel", "events", "elapsed", "events/sec"],
        [
            ["seed", legacy_churn["scheduled_events"],
             fmt(legacy_churn["elapsed_s"]) + "s",
             f"{legacy_churn['events_per_sec']:,.0f}"],
            ["fast", new_churn["scheduled_events"],
             fmt(new_churn["elapsed_s"]) + "s",
             f"{new_churn['events_per_sec']:,.0f}"],
            ["speedup", "", "", fmt(events_speedup, 2) + "x"],
        ],
    )
    print_table(
        "S0 QoS monitor (record + periodic mean/stddev/p50/p95/max)",
        ["series", "records", "elapsed", "records/sec"],
        [
            ["seed", legacy_qos["records"], fmt(legacy_qos["elapsed_s"]) + "s",
             f"{legacy_qos['records_per_sec']:,.0f}"],
            ["fast", new_qos["records"], fmt(new_qos["elapsed_s"]) + "s",
             f"{new_qos['records_per_sec']:,.0f}"],
            ["speedup", "", "", fmt(qos_speedup, 2) + "x"],
        ],
    )

    return {
        "bench": "s0_kernel",
        "mode": "smoke" if smoke else "full",
        "unix_time": time.time(),
        "python": sys.version.split()[0],
        "events": {
            "scheduled_events": new_churn["scheduled_events"],
            "legacy_events_per_sec": legacy_churn["events_per_sec"],
            "new_events_per_sec": new_churn["events_per_sec"],
            "speedup": events_speedup,
            "trace_checksum": new_churn["checksum"],
        },
        "qos": {
            "records": new_qos["records"],
            "monitor_ticks": new_qos["monitor_ticks"],
            "window_population": new_qos["window_population"],
            "legacy_records_per_sec": legacy_qos["records_per_sec"],
            "new_records_per_sec": new_qos["records_per_sec"],
            "speedup": qos_speedup,
        },
        "memory": {"peak_rss_mb": peak_rss_mb()},
    }


def write_results(results: dict, out: Path = DEFAULT_OUT) -> None:
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out}")


# ---------------------------------------------------------------------------
# pytest entry points (collected by the tier-1 run; smoke-sized, with
# conservative speedup floors so shared-runner noise cannot flake them).
# ---------------------------------------------------------------------------

_CACHED_RESULTS: dict | None = None


def _results() -> dict:
    global _CACHED_RESULTS
    if _CACHED_RESULTS is None:
        _CACHED_RESULTS = run_suite(smoke=True)
        # Never the canonical path: pytest runs are smoke-sized and must
        # not clobber the gated full-mode artifact.
        write_results(_CACHED_RESULTS, SMOKE_OUT)
    return _CACHED_RESULTS


def test_s0_event_kernel_faster_and_deterministic():
    results = _results()
    # run_suite already asserted trace equality vs the seed kernel.
    assert results["events"]["speedup"] >= 1.5


def test_s0_qos_statistics_faster_and_exact():
    results = _results()
    assert results["qos"]["speedup"] >= 2.5


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--out", type=Path, default=None,
                        help="where to write the JSON results")
    cli = parser.parse_args()
    suite = run_suite(smoke=cli.smoke)
    if not cli.smoke:
        assert suite["events"]["speedup"] >= 2.0, suite["events"]
        assert suite["qos"]["speedup"] >= 5.0, suite["qos"]
    # Smoke runs land next to — never on top of — the canonical full-mode
    # artifact, which is what check_bench_regression.py gates on.
    out = cli.out or (SMOKE_OUT if cli.smoke else DEFAULT_OUT)
    write_results(suite, out)

"""S2-T — what does observing the platform cost?

The telemetry layer's contract is "free when off, cheap when on":

* **kernel churn** — the S0 timeout-churn workload under four modes:
  ``off`` (telemetry never installed), ``disabled`` (tracer installed
  but not recording — the production default), ``aggregate`` (kernel
  hooks aggregating per-site stats) and ``events`` (full kernel timeline
  into the trace).  Measures events/sec per mode; the disabled mode must
  ride the same fast path as off.
* **netsim storm** — a 2-hop message storm with lineage off vs on;
  measures messages/sec and verifies the span ledger (one flow span plus
  two hop segments per delivered message).

Determinism is asserted across modes (instrumentation must not perturb
event interleaving) and across repeated enabled runs (identical Chrome
trace checksums).

Results land in ``BENCH_telemetry.json``.  Run standalone::

    python benchmarks/bench_s2_telemetry.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src"), str(_ROOT / "benchmarks")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro import Simulator, telemetry
from repro.events import PeriodicTimer
from repro.netsim.message import Message, reset_message_ids
from repro.netsim.topology import star

from bench_s0_kernel import ChurnDriver
from conftest import fmt, print_table

DEFAULT_OUT = _ROOT / "BENCH_telemetry.json"

#: mode → (install telemetry?, enabled?, kernel detail)
MODES = {
    "off": None,
    "disabled": (False, None),
    "aggregate": (True, "aggregate"),
    "events": (True, "events"),
}


# ---------------------------------------------------------------------------
# Workload 1: kernel churn per telemetry mode.
# ---------------------------------------------------------------------------


def run_churn_mode(sessions: int, mode: str, repeats: int = 3) -> dict:
    """Best-of-``repeats`` churn run under one telemetry mode.

    Best-of (rather than mean) with a gc.collect() before each timed run:
    all modes execute in one process, so later runs otherwise pay for the
    garbage earlier ones accumulated.
    """
    best: dict | None = None
    for _ in range(repeats):
        sim = Simulator()
        tracer = None
        if MODES[mode] is not None:
            enabled, detail = MODES[mode]
            tracer = telemetry.install(sim, enabled=enabled,
                                       kernel_detail=detail)
        driver = ChurnDriver(sim, sessions)
        scheduled = driver.load()
        PeriodicTimer(sim, 1.0, driver.poll, name="poller")
        gc.collect()
        start = time.perf_counter()
        sim.run(until=driver.horizon + 10.0)
        elapsed = time.perf_counter() - start
        assert driver.completed == sessions and driver.timed_out == 0
        result = {
            "mode": mode,
            "scheduled_events": scheduled,
            "elapsed_s": elapsed,
            "events_per_sec": scheduled / elapsed,
            "checksum": driver.checksum,
        }
        if tracer is not None and tracer.kernel is not None:
            result["observed_events"] = tracer.kernel.events_seen
            result["sites"] = len(tracer.kernel.sites)
        if best is None or result["events_per_sec"] > best["events_per_sec"]:
            best = result
    return best


# ---------------------------------------------------------------------------
# Workload 2: 2-hop message storm, lineage off vs on.
# ---------------------------------------------------------------------------


def run_storm_mode(messages: int, traced: bool) -> dict:
    reset_message_ids()  # message ids appear in traces; runs must match
    gc.collect()
    sim = Simulator()
    tracer = telemetry.install(sim, kernel_detail=None) if traced else None
    net = star(sim, leaves=4)
    delivered = []
    for i in range(4):
        net.node(f"leaf{i}").bind_endpoint(
            "svc", lambda node, message: delivered.append(message.msg_id)
        )
    # leaf→leaf traffic: every message crosses two links through the hub.
    items = []
    for i in range(messages):
        t = 0.0001 * i
        source, dest = f"leaf{i % 4}", f"leaf{(i + 1) % 4}"
        items.append((t, net.send,
                      (Message(source, dest, "svc", size=256),)))
    sim.schedule_many(items, absolute=True)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert len(delivered) == messages
    result = {
        "messages": messages,
        "elapsed_s": elapsed,
        "messages_per_sec": messages / elapsed,
    }
    if tracer is not None:
        flows = [s for s in tracer.spans if s.category == "net.msg"]
        hops = [s for s in tracer.spans if s.category == "net.hop"]
        assert len(flows) == messages, (len(flows), messages)
        assert len(hops) == 2 * messages, (len(hops), messages)
        result["flow_spans"] = len(flows)
        result["hop_spans"] = len(hops)
        result["checksum"] = telemetry.trace_checksum(tracer)
    return result


# ---------------------------------------------------------------------------
# Harness.
# ---------------------------------------------------------------------------


def run_suite(smoke: bool) -> dict:
    sessions = 20_000 if smoke else 150_000
    messages = 4_000 if smoke else 40_000

    churn = {mode: run_churn_mode(sessions, mode) for mode in MODES}
    # Telemetry must observe, never perturb: identical interleavings.
    baseline_checksum = churn["off"]["checksum"]
    for mode, result in churn.items():
        assert result["checksum"] == baseline_checksum, (
            f"telemetry mode {mode!r} changed the event interleaving"
        )

    storm_off = run_storm_mode(messages, traced=False)
    storm_on = run_storm_mode(messages, traced=True)
    storm_repeat = run_storm_mode(messages, traced=True)
    assert storm_on["checksum"] == storm_repeat["checksum"], (
        "lineage trace is not deterministic across identical runs"
    )

    off_eps = churn["off"]["events_per_sec"]
    overhead = {
        mode: (off_eps / churn[mode]["events_per_sec"] - 1.0) * 100.0
        for mode in MODES if mode != "off"
    }
    storm_overhead = (storm_off["messages_per_sec"]
                      / storm_on["messages_per_sec"] - 1.0) * 100.0

    print_table(
        "S2-T kernel churn under telemetry modes",
        ["mode", "events", "events/sec", "overhead"],
        [[mode,
          result["scheduled_events"],
          f"{result['events_per_sec']:,.0f}",
          "baseline" if mode == "off" else fmt(overhead[mode], 1) + "%"]
         for mode, result in churn.items()],
    )
    print_table(
        "S2-T netsim 2-hop message storm (lineage)",
        ["lineage", "messages", "messages/sec", "overhead"],
        [
            ["off", storm_off["messages"],
             f"{storm_off['messages_per_sec']:,.0f}", "baseline"],
            ["on", storm_on["messages"],
             f"{storm_on['messages_per_sec']:,.0f}",
             fmt(storm_overhead, 1) + "%"],
        ],
    )

    return {
        "bench": "s2_telemetry",
        "mode": "smoke" if smoke else "full",
        "unix_time": time.time(),
        "python": sys.version.split()[0],
        "kernel": {
            "scheduled_events": churn["off"]["scheduled_events"],
            "events_per_sec": {mode: result["events_per_sec"]
                               for mode, result in churn.items()},
            "overhead_pct": overhead,
            "trace_checksum": baseline_checksum,
        },
        "netsim": {
            "messages": messages,
            "messages_per_sec_off": storm_off["messages_per_sec"],
            "messages_per_sec_on": storm_on["messages_per_sec"],
            "overhead_pct": storm_overhead,
            "flow_spans": storm_on["flow_spans"],
            "hop_spans": storm_on["hop_spans"],
            "chrome_checksum": storm_on["checksum"],
        },
    }


def write_results(results: dict, out: Path = DEFAULT_OUT) -> None:
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out}")


# ---------------------------------------------------------------------------
# pytest entry points (smoke-sized; lenient floors so shared-runner noise
# cannot flake them — the stricter numbers are reported, not asserted).
# ---------------------------------------------------------------------------

_CACHED_RESULTS: dict | None = None


def _results() -> dict:
    global _CACHED_RESULTS
    if _CACHED_RESULTS is None:
        _CACHED_RESULTS = run_suite(smoke=True)
        write_results(_CACHED_RESULTS)
    return _CACHED_RESULTS


def test_s2_disabled_telemetry_is_free():
    results = _results()
    # A tracer that is installed-but-disabled must ride the same fast
    # path as never-installed (both skip hooks entirely); 10% headroom
    # absorbs scheduler noise on shared CI runners.
    assert results["kernel"]["overhead_pct"]["disabled"] < 10.0


def test_s2_enabled_lineage_complete_and_deterministic():
    results = _results()
    # run_suite asserted checksum stability; re-check the span ledger.
    netsim = results["netsim"]
    assert netsim["flow_spans"] == netsim["messages"]
    assert netsim["hop_spans"] == 2 * netsim["messages"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT,
                        help="where to write the JSON results")
    cli = parser.parse_args()
    suite = run_suite(smoke=cli.smoke)
    write_results(suite, cli.out)

"""S2-T — what does observing the platform cost?

The telemetry layer's contract is "free when off, production-grade when
sampled, cheap when fully on":

* **kernel churn** — the S0 timeout-churn workload under seven modes:
  ``off`` (telemetry never installed), ``disabled`` (tracer installed
  but not recording — the production default), ``sampled_0.1pct`` /
  ``sampled_1pct`` / ``sampled_10pct`` (head-based probabilistic
  sampling with aggregate kernel hooks — the production *enabled*
  modes), ``aggregate`` (full-rate per-site stats) and ``events`` (full
  kernel timeline into the trace).  Measures events/sec per mode plus
  span-ring occupancy/drops for the sampled modes.
* **netsim storm** — a 2-hop message storm with lineage off, fully on,
  and sampled at 1%; measures messages/sec, verifies the span ledger
  (full mode: one flow span plus two hop segments per delivered
  message; sampled mode: two hops per *sampled* flow — traces are kept
  or dropped whole) and records peak span-buffer memory.

Determinism is asserted across modes (instrumentation must not perturb
event interleaving) and across repeated enabled runs: full-rate and
sampled storms are each run twice and must produce byte-identical
Chrome trace checksums — sampling decisions come from a seeded stream.

Full runs land in ``BENCH_telemetry.json`` (the document
``repro.telemetry.dashboard`` folds PR-over-PR and
``check_bench_regression.py`` gates); ``--smoke`` runs default to the
gitignored ``BENCH_telemetry.smoke.json`` so short noisy runs never
replace the canonical artifact.  Run standalone::

    python benchmarks/bench_s2_telemetry.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src"), str(_ROOT / "benchmarks")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro import Simulator, telemetry
from repro.events import PeriodicTimer
from repro.netsim.message import Message, MessageIdAllocator, use_allocator
from repro.netsim.topology import star
from repro.telemetry import SamplingPolicy

from bench_s0_kernel import ChurnDriver
from conftest import fmt, peak_rss_mb, print_table

DEFAULT_OUT = _ROOT / "BENCH_telemetry.json"
SMOKE_OUT = _ROOT / "BENCH_telemetry.smoke.json"

#: Seed for every sampled mode: decisions must replay run over run.
SAMPLING_SEED = 0

#: mode → (enabled?, kernel detail, sampling rate or None for full).
MODES = {
    "off": None,
    "disabled": (False, None, None),
    "sampled_0.1pct": (True, "aggregate", 0.001),
    "sampled_1pct": (True, "aggregate", 0.01),
    "sampled_10pct": (True, "aggregate", 0.1),
    "aggregate": (True, "aggregate", None),
    "events": (True, "events", None),
}


# ---------------------------------------------------------------------------
# Workload 1: kernel churn per telemetry mode.
# ---------------------------------------------------------------------------


def run_churn_once(sessions: int, mode: str) -> dict:
    """One churn run under one telemetry mode."""
    sim = Simulator()
    tracer = None
    if MODES[mode] is not None:
        enabled, detail, rate = MODES[mode]
        sampling = (None if rate is None else
                    SamplingPolicy(rate=rate, seed=SAMPLING_SEED))
        tracer = telemetry.install(sim, enabled=enabled,
                                   kernel_detail=detail,
                                   sampling=sampling)
    driver = ChurnDriver(sim, sessions)
    scheduled = driver.load()
    PeriodicTimer(sim, 1.0, driver.poll, name="poller")
    gc.collect()
    start = time.perf_counter()
    sim.run(until=driver.horizon + 10.0)
    elapsed = time.perf_counter() - start
    assert driver.completed == sessions and driver.timed_out == 0
    result = {
        "mode": mode,
        "scheduled_events": scheduled,
        "elapsed_s": elapsed,
        "events_per_sec": scheduled / elapsed,
        "checksum": driver.checksum,
    }
    if tracer is not None and tracer.kernel is not None:
        result["observed_events"] = tracer.kernel.events_seen
        result["sites"] = len(tracer.kernel.sites)
        result["drops"] = tracer.drops
        result["span_buffer_bytes"] = tracer.ring.nbytes
    return result


def run_churn(sessions: int, repeats: int = 3) -> dict[str, dict]:
    """Best-of-``repeats`` per mode, with the repeats *interleaved*
    round-robin across modes: host-speed drift over the suite (frequency
    scaling, noisy neighbours) then biases every mode equally instead of
    whichever mode happened to run last.  gc.collect() before each timed
    run keeps earlier modes' garbage off later modes' bill.
    """
    best: dict[str, dict] = {}
    for _ in range(repeats):
        for mode in MODES:
            result = run_churn_once(sessions, mode)
            if (mode not in best
                    or result["events_per_sec"]
                    > best[mode]["events_per_sec"]):
                best[mode] = result
    return best


# ---------------------------------------------------------------------------
# Workload 2: 2-hop message storm — lineage off, fully on, sampled.
# ---------------------------------------------------------------------------


def run_storm_mode(messages: int, traced: bool,
                   rate: float | None = None) -> dict:
    use_allocator(MessageIdAllocator(1))  # ids appear in traces; must match
    gc.collect()
    sim = Simulator()
    tracer = None
    if traced:
        # Full-rate lineage keeps 3 spans per message (flow + 2 hops):
        # size the ring to hold the whole run so the ledger assertion
        # below stays meaningful.  Sampled runs fit the default ring.
        sampling = (None if rate is None else
                    SamplingPolicy(rate=rate, seed=SAMPLING_SEED))
        capacity = (telemetry.DEFAULT_CAPACITY if rate is not None
                    else max(telemetry.DEFAULT_CAPACITY, 4 * messages))
        tracer = telemetry.install(sim, kernel_detail=None,
                                   sampling=sampling, capacity=capacity)
    net = star(sim, leaves=4)
    delivered = []
    for i in range(4):
        net.node(f"leaf{i}").bind_endpoint(
            "svc", lambda node, message: delivered.append(message.msg_id)
        )
    # leaf→leaf traffic: every message crosses two links through the hub.
    items = []
    for i in range(messages):
        t = 0.0001 * i
        source, dest = f"leaf{i % 4}", f"leaf{(i + 1) % 4}"
        items.append((t, net.send,
                      (Message(source, dest, "svc", size=256),)))
    sim.schedule_many(items, absolute=True)
    start = time.perf_counter()
    sim.run()
    elapsed = time.perf_counter() - start
    assert len(delivered) == messages
    result = {
        "messages": messages,
        "elapsed_s": elapsed,
        "messages_per_sec": messages / elapsed,
    }
    if tracer is not None:
        flows = hops = 0
        for span in tracer.ring:
            if span.category == "net.msg":
                flows += 1
            elif span.category == "net.hop":
                hops += 1
        if rate is None:
            assert tracer.drops == 0, (tracer.drops, "full-rate ring wrapped")
            assert flows == messages, (flows, messages)
            assert hops == 2 * messages, (hops, messages)
        else:
            # Head sampling keeps or drops traces whole: every sampled
            # flow still carries both of its hop segments.
            assert hops == 2 * flows, (hops, flows)
            assert 0 < flows < messages, (flows, messages)
        result["flow_spans"] = flows
        result["hop_spans"] = hops
        result["drops"] = tracer.drops
        result["span_buffer_bytes"] = tracer.ring.nbytes
        result["categories"] = telemetry.category_stats(tracer)
        result["checksum"] = telemetry.trace_checksum(tracer)
    return result


# ---------------------------------------------------------------------------
# Harness.
# ---------------------------------------------------------------------------


def run_suite(smoke: bool) -> dict:
    sessions = 20_000 if smoke else 150_000
    messages = 4_000 if smoke else 40_000
    sampled_rate = 0.01

    # Full runs take more rounds: the <5% disabled gate needs the best-of
    # to actually reach the drift-free floor.
    churn = run_churn(sessions, repeats=3 if smoke else 5)
    # Telemetry must observe, never perturb: identical interleavings.
    baseline_checksum = churn["off"]["checksum"]
    for mode, result in churn.items():
        assert result["checksum"] == baseline_checksum, (
            f"telemetry mode {mode!r} changed the event interleaving"
        )

    # Storms: best-of-2 per lineage mode, rounds interleaved (same drift
    # argument as the churn); the repeat doubles as the determinism
    # witness — both full and sampled traces must checksum identically
    # across the rounds.
    storm_off = storm_on = storm_sampled = None
    for _ in range(2):
        round_off = run_storm_mode(messages, traced=False)
        if (storm_off is None or round_off["messages_per_sec"]
                > storm_off["messages_per_sec"]):
            storm_off = round_off
        round_on = run_storm_mode(messages, traced=True)
        if storm_on is not None:
            assert round_on["checksum"] == storm_on["checksum"], (
                "lineage trace is not deterministic across identical runs"
            )
        if (storm_on is None or round_on["messages_per_sec"]
                > storm_on["messages_per_sec"]):
            storm_on = round_on
        round_sampled = run_storm_mode(messages, traced=True,
                                       rate=sampled_rate)
        if storm_sampled is not None:
            assert round_sampled["checksum"] == storm_sampled["checksum"], (
                "sampled lineage trace is not deterministic across "
                "same-seed runs"
            )
        if (storm_sampled is None or round_sampled["messages_per_sec"]
                > storm_sampled["messages_per_sec"]):
            storm_sampled = round_sampled

    off_eps = churn["off"]["events_per_sec"]
    overhead = {
        mode: (off_eps / churn[mode]["events_per_sec"] - 1.0) * 100.0
        for mode in MODES if mode != "off"
    }
    storm_overhead = (storm_off["messages_per_sec"]
                      / storm_on["messages_per_sec"] - 1.0) * 100.0
    storm_overhead_sampled = (storm_off["messages_per_sec"]
                              / storm_sampled["messages_per_sec"]
                              - 1.0) * 100.0

    print_table(
        "S2-T kernel churn under telemetry modes",
        ["mode", "events", "events/sec", "overhead", "observed"],
        [[mode,
          result["scheduled_events"],
          f"{result['events_per_sec']:,.0f}",
          "baseline" if mode == "off" else fmt(overhead[mode], 1) + "%",
          result.get("observed_events", "-")]
         for mode, result in churn.items()],
    )
    print_table(
        "S2-T netsim 2-hop message storm (lineage)",
        ["lineage", "messages", "messages/sec", "overhead", "flows kept"],
        [
            ["off", storm_off["messages"],
             f"{storm_off['messages_per_sec']:,.0f}", "baseline", "-"],
            ["full", storm_on["messages"],
             f"{storm_on['messages_per_sec']:,.0f}",
             fmt(storm_overhead, 1) + "%", storm_on["flow_spans"]],
            [f"sampled {sampled_rate:.0%}", storm_sampled["messages"],
             f"{storm_sampled['messages_per_sec']:,.0f}",
             fmt(storm_overhead_sampled, 1) + "%",
             storm_sampled["flow_spans"]],
        ],
    )

    return {
        "bench": "s2_telemetry",
        "mode": "smoke" if smoke else "full",
        "unix_time": time.time(),
        "python": sys.version.split()[0],
        "sampling": {"rate": sampled_rate, "seed": SAMPLING_SEED},
        "kernel": {
            "scheduled_events": churn["off"]["scheduled_events"],
            "events_per_sec": {mode: result["events_per_sec"]
                               for mode, result in churn.items()},
            "overhead_pct": overhead,
            "observed_events": {
                mode: result["observed_events"]
                for mode, result in churn.items()
                if "observed_events" in result},
            "trace_checksum": baseline_checksum,
        },
        "netsim": {
            "messages": messages,
            "messages_per_sec_off": storm_off["messages_per_sec"],
            "messages_per_sec_on": storm_on["messages_per_sec"],
            "messages_per_sec_sampled": storm_sampled["messages_per_sec"],
            "overhead_pct": storm_overhead,
            "overhead_pct_sampled": storm_overhead_sampled,
            "flow_spans": storm_on["flow_spans"],
            "hop_spans": storm_on["hop_spans"],
            "sampled_flow_spans": storm_sampled["flow_spans"],
            "sampled_hop_spans": storm_sampled["hop_spans"],
            "chrome_checksum": storm_on["checksum"],
            "sampled_chrome_checksum": storm_sampled["checksum"],
        },
        "categories": storm_sampled["categories"],
        "drops": storm_sampled["drops"],
        "span_buffer_bytes": max(storm_on["span_buffer_bytes"],
                                 storm_sampled["span_buffer_bytes"]),
        "memory": {"peak_rss_mb": peak_rss_mb()},
    }


def write_results(results: dict, out: Path = DEFAULT_OUT) -> None:
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out}")


# ---------------------------------------------------------------------------
# pytest entry points (smoke-sized; lenient floors so shared-runner noise
# cannot flake them — the stricter numbers are gated on the full run by
# check_bench_regression.py, not asserted here).
# ---------------------------------------------------------------------------

_CACHED_RESULTS: dict | None = None


def _results() -> dict:
    global _CACHED_RESULTS
    if _CACHED_RESULTS is None:
        _CACHED_RESULTS = run_suite(smoke=True)
        # Never the canonical path: pytest runs are smoke-sized and must
        # not clobber the gated full-mode artifact.
        write_results(_CACHED_RESULTS, SMOKE_OUT)
    return _CACHED_RESULTS


def test_s2_disabled_telemetry_is_free():
    results = _results()
    # A tracer that is installed-but-disabled must ride the same fast
    # path as never-installed (both skip hooks entirely); 10% headroom
    # absorbs scheduler noise on shared CI runners.
    assert results["kernel"]["overhead_pct"]["disabled"] < 10.0


def test_s2_sampled_telemetry_is_production_grade():
    results = _results()
    # The acceptance bar is <10% at 1% sampling on a quiet machine; the
    # pytest floor is looser so shared-runner noise cannot flake tier-1.
    assert results["kernel"]["overhead_pct"]["sampled_1pct"] < 25.0
    assert results["netsim"]["overhead_pct_sampled"] < 25.0
    # Sampled runs must never wrap the default ring on this workload.
    assert results["drops"] == 0


def test_s2_enabled_lineage_complete_and_deterministic():
    results = _results()
    # run_suite asserted checksum stability; re-check the span ledger.
    netsim = results["netsim"]
    assert netsim["flow_spans"] == netsim["messages"]
    assert netsim["hop_spans"] == 2 * netsim["messages"]
    # Sampled lineage keeps traces whole: two hops per surviving flow.
    assert netsim["sampled_hop_spans"] == 2 * netsim["sampled_flow_spans"]
    assert 0 < netsim["sampled_flow_spans"] < netsim["messages"]


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--out", type=Path, default=None,
                        help="where to write the JSON results")
    cli = parser.parse_args()
    suite = run_suite(smoke=cli.smoke)
    # Smoke runs land next to — never on top of — the canonical full-mode
    # artifact, which is what check_bench_regression.py gates on.
    out = cli.out or (SMOKE_OUT if cli.smoke else DEFAULT_OUT)
    write_results(suite, out)

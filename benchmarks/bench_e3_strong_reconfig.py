"""E3 — strong dynamic reconfiguration preserves application consistency.

A stateful accumulator is hot-swapped under sustained, sequence-numbered
traffic, at a sweep of swap instants.  Invariants checked at every
instant: (1) no message lost, (2) no message duplicated, (3) no message
reordered, (4) internal state carried to the replacement exactly
("initializing new components with adequate internal state variables").
"""

import pytest

from repro import Simulator, star
from repro.kernel import Assembly, Component, Interface, Operation
from repro.reconfig import (
    ReconfigurationTransaction,
    ReplaceComponent,
    TransactionState,
)

from conftest import print_table

SWAP_INSTANTS = [0.101, 0.25, 0.333, 0.5, 0.777, 0.9]
RATE = 1000.0
DURATION = 1.2


def ledger_interface():
    return Interface("Ledger", "1.0", [
        Operation("append", ("seq",)),
        Operation("entries", ()),
    ])


class Ledger(Component):
    def on_initialize(self):
        self.state.setdefault("entries", [])

    def append(self, seq):
        self.state["entries"].append(seq)
        return len(self.state["entries"])

    def entries(self):
        return list(self.state["entries"])


def run_swap(swap_at: float) -> dict:
    sim = Simulator()
    assembly = Assembly(star(sim, leaves=2))
    client = Component("client")
    client.require("ledger", ledger_interface())
    assembly.deploy(client, "leaf0")
    original = Ledger("ledger")
    original.provide("svc", ledger_interface())
    assembly.deploy(original, "leaf1")
    assembly.connect("client", "ledger", target_component="ledger")

    acks: list[int] = []
    sent = {"count": 0}

    def tick():
        if sim.now > DURATION:
            return
        seq = sent["count"]
        sent["count"] += 1
        client.required_port("ledger").call_async(
            "append", seq, on_result=acks.append
        )
        sim.schedule(tick, delay=1.0 / RATE)

    sim.call_soon(tick)

    replacement = Ledger("ledger-v2")
    replacement.provide("svc", ledger_interface())
    reports = []
    sim.at(lambda: ReconfigurationTransaction(assembly).add(
        ReplaceComponent("ledger", replacement)
    ).execute_async(on_done=reports.append), when=swap_at)
    sim.run()

    entries = replacement.state["entries"]
    return {
        "swap_at": swap_at,
        "sent": sent["count"],
        "entries": entries,
        "acks": acks,
        "state": reports[0].state,
        "buffered": reports[0].buffered_calls,
        "blocked_ms": reports[0].blocked_duration * 1000,
    }


def test_e3_no_loss_no_duplication_at_any_instant(benchmark):
    results = [run_swap(instant) for instant in SWAP_INSTANTS]
    benchmark.pedantic(lambda: run_swap(0.5), rounds=1, iterations=1)

    rows = []
    for result in results:
        entries = result["entries"]
        lost = result["sent"] - len(entries)
        duplicated = len(entries) - len(set(entries))
        ordered = entries == sorted(entries)
        rows.append([
            f"{result['swap_at']:.3f}",
            result["sent"],
            len(entries),
            lost,
            duplicated,
            "yes" if ordered else "NO",
            result["buffered"],
            f"{result['blocked_ms']:.2f}ms",
        ])
    print_table(
        "E3 strong reconfiguration under load",
        ["swap@", "sent", "delivered", "lost", "dup", "in-order",
         "buffered", "blocked"],
        rows,
    )

    for result in results:
        assert result["state"] is TransactionState.COMMITTED
        entries = result["entries"]
        # Zero loss: every sequence number sent is present.
        assert entries == list(range(result["sent"])), (
            f"swap at {result['swap_at']}: sequence broken"
        )
        # Acks are the ledger sizes in order — no duplication possible.
        assert result["acks"] == list(range(1, result["sent"] + 1))

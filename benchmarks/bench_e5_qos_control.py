"""E5 — quality-aware control keeps QoS compliant under fluctuation.

A service node suffers sinusoidal + bursty background load.  A control
loop adjusts the service's admission rate (the actuator) to hold the
measured per-request latency at a contracted setpoint.  Controllers
compared: none, PID, fuzzy (the paper's "intelligent controller").
Series: contract-compliance ratio and mean |error|.  Expected shape:
the fuzzy controller holds compliance ≥90%; the PID improves on no
control but is handicapped by the plant's nonlinearity (latency ~
1/(1-load)) — exactly the regime where the paper argues "formalisms
adopted in traditional control systems … are generally not suitable"
and intelligent (soft-computing) controllers are needed.
"""

import pytest

from repro import Simulator
from repro.control import ControlLoop, FuzzyController, PidController
from repro.qos import MetricRegistry, QosContract, QosMonitor, Statistic
from repro.workloads import composite, sinusoidal, square_wave

from conftest import fmt, print_table

SETPOINT = 0.1          # contracted latency
HORIZON = 120.0
SAMPLE = 0.5


class ServicePlant:
    """Latency model: grows with background load, shrinks with admission
    throttling.  ``throttle`` in [0, 1] is the actuator (0 = no limit)."""

    def __init__(self, load_profile):
        self.load_profile = load_profile
        self.throttle = 0.0

    def latency(self, now: float) -> float:
        load = max(0.0, min(0.95, self.load_profile(now)))
        effective = load * (1.0 - self.throttle)
        return 0.02 / max(0.05, (1.0 - effective))

    def actuate(self, delta: float) -> None:
        # Positive controller output = latency too low = release;
        # negative = latency too high = throttle harder.
        self.throttle = max(0.0, min(0.95, self.throttle - delta))


def load_profile():
    return composite(
        sinusoidal(base=0.55, amplitude=0.25, period=40.0),
        square_wave(low=0.0, high=0.3, period=25.0, duty=0.3),
    )


def run_scenario(controller_kind: str) -> dict:
    sim = Simulator()
    plant = ServicePlant(load_profile())
    registry = MetricRegistry(window=5.0)
    contract = QosContract("latency-sla").require_max(
        "latency", SETPOINT * 1.25, Statistic.P95
    )
    monitor = QosMonitor(sim, registry, period=SAMPLE)
    monitor.add_contract(contract)
    monitor.start()

    def sample_latency():
        registry.record("latency", plant.latency(sim.now), sim.now)

    from repro.events import PeriodicTimer

    PeriodicTimer(sim, SAMPLE / 2, sample_latency)

    errors = []
    if controller_kind == "pid":
        controller = PidController(kp=4.0, ki=1.0, setpoint=SETPOINT,
                                   output_min=-0.5, output_max=0.5,
                                   integral_limit=0.5)
    elif controller_kind == "fuzzy":
        controller = FuzzyController(setpoint=SETPOINT,
                                     error_scale=SETPOINT * 2,
                                     delta_scale=SETPOINT,
                                     output_scale=0.4)
    else:
        controller = None

    if controller is not None:
        ControlLoop(sim, controller, lambda: plant.latency(sim.now),
                    plant.actuate, period=SAMPLE).start()

    def track_error():
        errors.append(abs(plant.latency(sim.now) - SETPOINT))

    PeriodicTimer(sim, SAMPLE, track_error)

    sim.run(until=HORIZON)
    monitor.stop()
    return {
        "compliance": monitor.stats.compliance_ratio,
        "mean_abs_error": sum(errors) / len(errors) if errors else 0.0,
        "violations": monitor.stats.violations,
    }


def test_e5_qos_feedback_control(benchmark):
    results = {kind: run_scenario(kind) for kind in ("none", "pid", "fuzzy")}
    benchmark.pedantic(lambda: run_scenario("fuzzy"), rounds=1, iterations=1)

    rows = [
        [kind,
         fmt(r["compliance"] * 100, 1) + "%",
         fmt(r["mean_abs_error"] * 1000, 2) + "ms",
         r["violations"]]
        for kind, r in results.items()
    ]
    print_table("E5 QoS compliance under load fluctuation",
                ["controller", "compliance", "mean|err|", "violations"],
                rows)

    # Expected shape: fuzzy holds the contract; PID beats no control but
    # the nonlinear plant blunts it; both track the setpoint better than
    # the uncontrolled system.
    assert results["none"]["compliance"] < 0.8
    assert results["fuzzy"]["compliance"] >= 0.9
    assert results["pid"]["compliance"] > results["none"]["compliance"]
    assert results["fuzzy"]["compliance"] >= results["pid"]["compliance"]
    for kind in ("pid", "fuzzy"):
        assert (results[kind]["mean_abs_error"]
                < results["none"]["mean_abs_error"])

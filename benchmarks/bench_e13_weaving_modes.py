"""E13 — "Composition operators should not be limited to compile-time
(AspectJ, HyperJ) but also provided at deployment-time and run-time".

Compares the two weaving modes of the aspect weaver:

* **static** — advice resolved per join point at weave time (the
  AspectJ-style trade-off, modelling compile/deployment-time weaving);
* **dynamic** — pointcuts re-evaluated per invocation, enabling run-time
  aspect interchange.

Series: per-call cost of bare / static / dynamic weaving, re-weave
(interchange) latency in each mode, and a functional check that only the
dynamic mode picks up pointcut-relevant context changes without a
re-weave.  Expected shape: static is cheaper per call; dynamic costs a
modest premium and buys run-time flexibility.
"""

import time

import pytest

from repro.aspects import Aspect, Weaver
from repro.kernel import Invocation

from conftest import fmt, print_table
from tests.helpers import make_counter


def tracing_aspect(name, pieces=1):
    counter = {"hits": 0}
    aspect = Aspect(name)
    aspect.before(
        lambda inv: counter.__setitem__("hits", counter["hits"] + 1),
        operation="increment",
    )
    for _index in range(pieces - 1):
        aspect.before(lambda inv: None, operation="increment")
    return aspect, counter


def cost_per_call(port, calls=10_000):
    invocation = Invocation("increment", (1,))
    start = time.perf_counter()
    for _ in range(calls):
        port.invoke(invocation)
    return (time.perf_counter() - start) / calls


def test_e13_static_vs_dynamic_weaving(benchmark):
    bare = make_counter("bare")
    bare_cost = cost_per_call(bare.provided_port("svc"))

    # Sweep the pointcut count: static pre-resolves the advice table at
    # weave time, so its advantage grows with aspect richness.
    rows = [["bare", "-", f"{bare_cost * 1e6:.2f}us", "-", "-"]]
    sweep = {}
    for pieces in (1, 10, 30):
        costs = {}
        for mode in ("static", "dynamic"):
            component = make_counter(f"c-{mode}-{pieces}")
            weaver = Weaver()
            aspect, counter = tracing_aspect(f"t-{mode}-{pieces}", pieces)
            weaver.weave(aspect, [component], mode=mode)
            costs[mode] = cost_per_call(component.provided_port("svc"))
            assert counter["hits"] == 10_000
        sweep[pieces] = costs
        rows.append([
            "woven", pieces,
            f"{costs['static'] * 1e6:.2f}us",
            f"{costs['dynamic'] * 1e6:.2f}us",
            fmt(costs["dynamic"] / costs["static"], 2) + "x",
        ])

    # Interchange latency: swap one aspect for another at run time.
    component = make_counter("swap-target")
    weaver = Weaver()
    first, _ = tracing_aspect("v1")
    second, second_counter = tracing_aspect("v2")
    weaver.weave(first, [component], mode="dynamic")
    start = time.perf_counter()
    weaver.swap("v1", second, [component], mode="dynamic")
    swap_cost = time.perf_counter() - start
    component.provided_port("svc").invoke(Invocation("increment", (1,)))
    assert second_counter["hits"] == 1
    rows.append(["interchange", "-", "-", f"{swap_cost * 1e6:.2f}us", "-"])

    benchmark.pedantic(
        lambda: cost_per_call(make_counter("b").provided_port("svc"),
                              calls=2_000),
        rounds=1, iterations=1,
    )
    print_table("E13 weaving modes",
                ["case", "pointcuts", "static", "dynamic", "dyn/static"],
                rows)

    # Static weaving's pre-resolution pays off as aspects grow rich.
    assert sweep[30]["static"] < sweep[30]["dynamic"]
    # The run-time flexibility premium stays modest for small aspects.
    assert sweep[1]["dynamic"] / bare_cost < 6.0
    # Interchange completes in well under a millisecond.
    assert swap_cost < 0.001


def test_e13_only_dynamic_mode_sees_new_operations(benchmark):
    """A pointcut matching a prefix of operations: after the interface
    gains a new matching operation, the static table misses it while the
    dynamic matcher picks it up — the run-time flexibility the paper
    asks for."""
    from repro.kernel import Operation

    hits = {"static": [], "dynamic": []}
    components = {}
    for mode in ("static", "dynamic"):
        component = make_counter(f"c-{mode}")
        weaver = Weaver()
        aspect = Aspect(f"audit-{mode}").before(
            lambda inv, mode=mode: hits[mode].append(inv.operation),
            operation="incr*",
        )
        weaver.weave(aspect, [component], mode=mode)
        components[mode] = component

    def extend_and_call(component):
        port = component.provided_port("svc")
        port.interface = port.interface.evolve(
            add=[Operation("increase_by_ten", ())]
        )
        component.increase_by_ten = (
            lambda: component.state.__setitem__(
                "total", component.state["total"] + 10)
        )
        port.invoke(Invocation("increase_by_ten"))

    for mode in ("static", "dynamic"):
        extend_and_call(components[mode])

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert "increase_by_ten" not in hits["static"]
    assert "increase_by_ten" in hits["dynamic"]

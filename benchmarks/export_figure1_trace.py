"""CI trace artifacts: the Figure-1 scenario, sampled, exported.

Runs the paper's Figure-1 adaptation loop under production telemetry
settings (head-based sampling, full kernel timeline) and writes the two
artifacts CI uploads on every build:

* a Chrome ``trace_event`` JSON — drop it on https://ui.perfetto.dev;
* a folded-stack file — feed it to ``flamegraph.pl`` or import it into
  https://www.speedscope.app.

The script **fails (exit 1) when the span ring dropped anything** at the
default buffer size: the reference scenario must fit, so a nonzero drop
counter means either the scenario's span volume or the ring default
regressed.  Run::

    python benchmarks/export_figure1_trace.py [--rate 0.1] [--seed 0]
        [--trace figure1.trace.json] [--folded figure1.folded]
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src"), str(_ROOT / "benchmarks")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.telemetry import (
    SamplingPolicy,
    folded_stacks,
    write_chrome_trace,
    write_folded,
)

from bench_f1_figure1_scenario import run_figure1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--rate", type=float, default=0.1,
                        help="head-sampling rate (default: %(default)s)")
    parser.add_argument("--seed", type=int, default=0,
                        help="sampling seed (default: %(default)s)")
    parser.add_argument("--trace", type=Path,
                        default=Path("figure1.trace.json"),
                        help="Perfetto-loadable Chrome trace output")
    parser.add_argument("--folded", type=Path,
                        default=Path("figure1.folded"),
                        help="folded-stack (flamegraph) output")
    cli = parser.parse_args(argv)

    result = run_figure1(
        sampling=SamplingPolicy(rate=cli.rate, seed=cli.seed),
        kernel_detail="events")
    tracer = result["tracer"]

    trace_path = write_chrome_trace(tracer, cli.trace)
    folded = folded_stacks(tracer, kernel_weight="events")
    folded_path = write_folded(cli.folded, folded)

    spans = len(tracer.ring)
    print(f"figure-1 sampled run: rate={cli.rate:g} seed={cli.seed} | "
          f"{spans} spans kept, {tracer.drops} dropped, "
          f"{len(tracer.instants)} instants, {len(tracer.audit)} audit "
          f"records")
    print(f"wrote {trace_path} ({trace_path.stat().st_size:,} bytes)")
    print(f"wrote {folded_path} ({len(folded)} stacks)")

    if spans == 0:
        print("FAIL  the sampled trace kept no spans — always-on "
              "categories should have survived any rate")
        return 1
    if tracer.drops:
        print(f"FAIL  span ring dropped {tracer.drops} spans at default "
              f"capacity — the reference scenario must fit without loss")
        return 1
    print("ok    no spans dropped at default ring capacity")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""E7 — connector/RAML reconfiguration versus Polylith and Durra.

The same change — replacing one service's server component — is applied
through three mechanisms while *two* independent services carry traffic:

* **RAML / connector approach** — transactional reconfiguration with a
  *targeted* quiescence region (only channels touching the replaced
  component freeze);
* **Polylith** — the software-bus discipline: every channel in the
  application freezes for the window;
* **Durra** — event-triggered pre-planned switch: instant, but only when
  its event fires, and without state transfer (recovery semantics).

Series: bystander disruption (calls of the *other* service buffered or
delayed), blocked channel count, change latency, and state preserved.
Expected shape: RAML freezes only the target region (zero bystander
buffering) while Polylith freezes everything; Durra is cheap but loses
state and reacts only to its armed event.
"""

import pytest

from repro import Simulator, star
from repro.baselines import DurraManager, PolylithReconfigurator
from repro.kernel import Assembly, Component
from repro.reconfig import (
    AddComponent,
    ReconfigurationTransaction,
    ReplaceComponent,
    RewireBinding,
)
from repro.workloads import OpenLoopGenerator, binding_transport

from conftest import fmt, print_table
from tests.helpers import CounterComponent, counter_interface

CHANGE_AT = 0.5
DURATION = 1.0
RATE = 400.0


def build_world():
    sim = Simulator()
    assembly = Assembly(star(sim, leaves=4))
    for index, service in enumerate(("alpha", "beta")):
        client = CounterComponent(f"{service}-client")
        client.provide("svc", counter_interface())
        client.require("peer", counter_interface())
        assembly.deploy(client, f"leaf{index * 2}")
        server = CounterComponent(f"{service}-server")
        server.provide("svc", counter_interface())
        assembly.deploy(server, f"leaf{index * 2 + 1}")
        assembly.connect(f"{service}-client", "peer",
                         target_component=f"{service}-server")
    return sim, assembly


def fresh_server(name):
    server = CounterComponent(name)
    server.provide("svc", counter_interface())
    return server


def run(mechanism: str) -> dict:
    sim, assembly = build_world()
    alpha_client = assembly.component("alpha-client")
    beta_client = assembly.component("beta-client")
    alpha_server = assembly.component("alpha-server")
    alpha_server.state["total"] = 1000  # pre-existing state to preserve

    generators = {}
    for service, client in (("alpha", alpha_client), ("beta", beta_client)):
        generators[service] = OpenLoopGenerator(
            sim, binding_transport(client.required_port("peer")),
            "increment", make_args=lambda i: (1,), rate=RATE,
        ).start(duration=DURATION)

    beta_binding = beta_client.required_port("peer").binding
    bystander_buffered = {"max": 0}

    def watch_beta():
        bystander_buffered["max"] = max(bystander_buffered["max"],
                                        beta_binding.pending_count)
        if sim.now < DURATION:
            sim.schedule(watch_beta, delay=0.0005)

    sim.call_soon(watch_beta)

    outcome = {"blocked_channels": 0, "change_latency": 0.0}
    replacement = fresh_server("alpha-server-v2")

    if mechanism == "raml":
        def done(report):
            outcome["blocked_channels"] = 1
            outcome["change_latency"] = report.duration

        sim.at(lambda: ReconfigurationTransaction(assembly).add(
            ReplaceComponent("alpha-server", replacement)
        ).execute_async(on_done=done), when=CHANGE_AT)
    elif mechanism == "polylith":
        reconfigurator = PolylithReconfigurator(assembly)

        def done(report):
            outcome["blocked_channels"] = report.blocked_channels
            outcome["change_latency"] = report.blocked_duration

        sim.at(lambda: reconfigurator.replace_module(
                   "alpha-server", replacement, on_done=done), when=CHANGE_AT)
    elif mechanism == "durra":
        durra = DurraManager(assembly)

        def plan(assembly_):
            return [
                AddComponent(replacement, "leaf2"),
                RewireBinding("alpha-client", "peer",
                              target_component="alpha-server-v2"),
            ]

        durra.define_configuration("alpha-recovery", plan)
        durra.on_event("alpha-degraded", "alpha-recovery")

        def trigger():
            before = sim.now
            durra.raise_event("alpha-degraded")
            outcome["blocked_channels"] = 0
            outcome["change_latency"] = sim.now - before

        sim.at(trigger, when=CHANGE_AT)

    sim.run(until=DURATION + 1.0)

    served_by_new = replacement.state.get("total", 0)
    state_preserved = served_by_new >= 1000  # carried the 1000 baseline
    return {
        "alpha_ok": generators["alpha"].stats.succeeded,
        "beta_ok": generators["beta"].stats.succeeded,
        "beta_buffered": bystander_buffered["max"],
        "blocked_channels": outcome["blocked_channels"],
        "change_latency": outcome["change_latency"],
        "state_preserved": state_preserved,
    }


def test_e7_change_mechanisms(benchmark):
    results = {name: run(name) for name in ("raml", "polylith", "durra")}
    benchmark.pedantic(lambda: run("raml"), rounds=1, iterations=1)

    rows = [
        [name,
         r["blocked_channels"],
         r["beta_buffered"],
         fmt(r["change_latency"] * 1000, 2) + "ms",
         "yes" if r["state_preserved"] else "NO",
         r["alpha_ok"], r["beta_ok"]]
        for name, r in results.items()
    ]
    print_table("E7 the same change via three mechanisms",
                ["mechanism", "blocked-ch", "bystander-buffered",
                 "latency", "state-kept", "alpha-ok", "beta-ok"], rows)

    raml, polylith, durra = (results["raml"], results["polylith"],
                             results["durra"])
    # Targeted vs global freeze: the RAML region never buffers beta's
    # traffic; Polylith freezes every channel and buffers bystanders.
    assert raml["beta_buffered"] == 0
    assert polylith["beta_buffered"] > 0
    assert polylith["blocked_channels"] > raml["blocked_channels"]
    # Both preserve state; Durra's recovery switch does not.
    assert raml["state_preserved"]
    assert polylith["state_preserved"]
    assert not durra["state_preserved"]
    # Nobody loses traffic outright.
    for result in results.values():
        assert result["beta_ok"] >= RATE * DURATION * 0.95

"""E10 — FLO/C cycle detection over the rule-induced calling tree.

Random rule sets are generated; a networkx reachability oracle decides
ground truth.  Series: detection accuracy and parse+check cost versus
rule-set size.  Expected shape: 100% agreement with the oracle; cost
low enough to run on every rule installation.
"""

import random
import time

import pytest

import networkx as nx

from repro.rules import (
    CallAction,
    CallPattern,
    Rule,
    RuleOperator,
    is_acyclic,
    parse_rules,
)

from conftest import fmt, print_table


def random_rule_set(size: int, components: int, rng: random.Random):
    nodes = [f"c{i}.op{j}" for i in range(components) for j in range(2)]
    edges = [(rng.choice(nodes), rng.choice(nodes)) for _ in range(size)]
    rules = [
        Rule(f"r{i}", CallPattern.parse(trigger), RuleOperator.IMPLIES,
             action=CallAction.parse(action))
        for i, (trigger, action) in enumerate(edges)
    ]
    return rules, edges


def test_e10_cycle_detection_accuracy_and_cost(benchmark):
    rng = random.Random(7)
    sizes = [4, 8, 16, 32, 64]
    rows = []
    disagreements = 0

    for size in sizes:
        attempts = 80
        cyclic = 0
        costs = []
        for _ in range(attempts):
            rules, edges = random_rule_set(size, components=4, rng=rng)
            oracle = nx.DiGraph()
            oracle.add_edges_from(edges)
            truth = nx.is_directed_acyclic_graph(oracle)
            start = time.perf_counter()
            verdict = is_acyclic(rules)
            costs.append(time.perf_counter() - start)
            if verdict != truth:
                disagreements += 1
            if not truth:
                cyclic += 1
        rows.append([
            size, attempts, cyclic,
            fmt(sum(costs) / len(costs) * 1e6, 1) + "us",
        ])

    rules, _edges = random_rule_set(32, components=4, rng=rng)
    benchmark(is_acyclic, rules)

    print_table("E10 rule cycle detection",
                ["rules", "attempts", "cyclic", "mean-cost"], rows)
    print(f"oracle disagreements: {disagreements}")
    assert disagreements == 0


def test_e10_grammar_roundtrip_and_check(benchmark):
    """Parsing the textual grammar and checking the parsed set."""
    source = "\n".join(
        f"when c{i % 4}.op{i % 2} implies c{(i + 1) % 4}.op{(i + 1) % 2}"
        for i in range(16)
    )

    def parse_and_check():
        rules = parse_rules(source)
        return is_acyclic(rules)

    verdict = benchmark(parse_and_check)
    # This chain wraps around four components: it is cyclic.
    assert verdict is False

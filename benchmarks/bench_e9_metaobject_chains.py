"""E9 — validated composition of meta-object chains.

Random chains of wrappers with random properties (priorities, exclusive
groups, ordering constraints, modificatory flags) are composed.  The
validator must accept exactly the consistent ones and order them in a
way that satisfies every constraint.

Series: valid-composition rate by chain size, validation cost, and a
verification that every produced order satisfies the declared partial
order.  Expected shape: validation cost stays sub-millisecond for
realistic chain sizes, and no invalid chain slips through.
"""

import random
import time

import pytest

from repro.errors import ChainOrderError, MetaObjectError
from repro.metaobjects import MetaObject, order

from conftest import fmt, print_table


def random_metaobjects(size: int, rng: random.Random) -> list[MetaObject]:
    names = [f"m{i}" for i in range(size)]
    metaobjects = []
    for name in names:
        others = [n for n in names if n != name]
        must_precede = frozenset(
            rng.sample(others, k=rng.randint(0, min(2, len(others))))
        ) if rng.random() < 0.4 else frozenset()
        metaobjects.append(MetaObject(
            name,
            lambda inv, proceed: proceed(inv),
            priority=rng.randint(0, 5),
            exclusive_group=(rng.choice(["compression", "crypto", None, None])),
            modificatory=rng.random() < 0.3,
            must_precede=must_precede,
        ))
    return metaobjects


def order_satisfied(ordered: list[MetaObject]) -> bool:
    position = {m.name: i for i, m in enumerate(ordered)}
    for metaobject in ordered:
        for later in metaobject.must_precede:
            if position[metaobject.name] >= position[later]:
                return False
        for earlier in metaobject.must_follow:
            if position[earlier] >= position[metaobject.name]:
                return False
    return True


def test_e9_chain_composition(benchmark):
    rng = random.Random(42)
    sizes = [3, 5, 8, 12]
    rows = []
    total_valid = 0
    total_attempts = 0

    for size in sizes:
        valid = 0
        rejected = 0
        attempts = 120
        costs = []
        for _ in range(attempts):
            metaobjects = random_metaobjects(size, rng)
            start = time.perf_counter()
            try:
                ordered = order(metaobjects)
            except (MetaObjectError, ChainOrderError):
                rejected += 1
            else:
                valid += 1
                assert order_satisfied(ordered), (
                    "composed order violates declared constraints"
                )
                assert len(ordered) == size
            costs.append(time.perf_counter() - start)
        total_valid += valid
        total_attempts += attempts
        rows.append([
            size, attempts, valid, rejected,
            fmt(sum(costs) / len(costs) * 1e6, 1) + "us",
            fmt(max(costs) * 1e6, 1) + "us",
        ])

    # Benchmark ordering of a known-valid chain of realistic size.
    probe_rng = random.Random(1)
    while True:
        candidate = random_metaobjects(8, probe_rng)
        try:
            order(candidate)
        except (MetaObjectError, ChainOrderError):
            continue
        break
    benchmark.pedantic(lambda: order(candidate), rounds=5, iterations=1)
    print_table("E9 meta-object chain composition",
                ["size", "attempts", "valid", "rejected", "mean-cost",
                 "max-cost"], rows)

    # Both outcomes must actually occur: the generator produces a healthy
    # mix of valid and invalid chains, and the validator separates them.
    assert 0 < total_valid < total_attempts
    # Validation stays fast (well under a millisecond on average).
    assert all(float(row[4][:-2]) < 1000 for row in rows)

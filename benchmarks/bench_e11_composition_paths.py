"""E11 — composition-path selection adapts service pipelines.

The video-service path family (extract → encode → transfer) is planned
under a staircase of bandwidth contexts.  Series: the chosen path per
context, compared with the exhaustively-enumerated optimum, and planning
cost versus family size.  Expected shape: the planner always matches the
optimum and crosses over from the rich codec to the lite codec exactly
at the bandwidth boundary.
"""

import time

import pytest

from repro.errors import PathError
from repro.paths import PathFamily, PathPlanner, ServiceOption

from conftest import fmt, print_table

BANDWIDTH_STEPS = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0, 12.0]


def video_family():
    family = PathFamily("video", ["extract", "encode", "transfer"])
    family.add_option(ServiceOption(
        "extract-raw", "extract", lambda v: v, output_format="raw",
        latency=0.2, quality=1.0))
    family.add_option(ServiceOption(
        "encode-h264", "encode", lambda v: v, input_format="raw",
        output_format="h264", latency=1.0, quality=1.0,
        bandwidth_required=6.0))
    family.add_option(ServiceOption(
        "encode-h263", "encode", lambda v: v, input_format="raw",
        output_format="h263", latency=0.3, quality=0.45,
        bandwidth_required=1.0))
    family.add_option(ServiceOption(
        "transfer-rtp", "transfer", lambda v: v, input_format="*",
        latency=0.1, quality=1.0))
    return family


def wide_family(options_per_stage: int, stages: int = 4):
    family = PathFamily("wide", [f"s{i}" for i in range(stages)])
    for stage_index in range(stages):
        for option_index in range(options_per_stage):
            family.add_option(ServiceOption(
                f"s{stage_index}o{option_index}", f"s{stage_index}",
                lambda v: v,
                latency=1.0 + option_index * 0.1,
                quality=1.0 - option_index * 0.05,
                bandwidth_required=float(option_index),
            ))
    return family


def test_e11_path_selection_crossover(benchmark):
    family = video_family()
    planner = PathPlanner(family, quality_weight=5.0)
    rows = []
    chosen_encoders = []
    for bandwidth in BANDWIDTH_STEPS:
        context = {"bandwidth": bandwidth}
        try:
            path = planner.plan(context)
        except PathError:
            rows.append([bandwidth, "(no feasible path)", "-", "-"])
            chosen_encoders.append(None)
            continue
        candidates = family.all_paths(context)
        best = min(
            candidates,
            key=lambda p: sum(o.latency - 5.0 * o.quality for o in p.options),
        )
        optimal = path.names == best.names
        encoder = path.names[1]
        chosen_encoders.append(encoder)
        rows.append([bandwidth, encoder, fmt(path.total_quality, 2),
                     "yes" if optimal else "NO"])
    benchmark.pedantic(lambda: planner.plan({"bandwidth": 8.0}),
                       rounds=20, iterations=1)
    print_table("E11 path choice vs bandwidth",
                ["bandwidth", "encoder", "quality", "optimal"], rows)

    # Expected crossover: infeasible below 1, lite codec in [1, 6), rich
    # codec at >= 6.
    assert chosen_encoders[0] is None
    assert all(e == "encode-h263" for e in chosen_encoders[1:4])
    assert all(e == "encode-h264" for e in chosen_encoders[4:])
    # Planner always matches the exhaustive optimum.
    assert all(row[3] != "NO" for row in rows)


def test_e11_planning_cost_scales(benchmark):
    sizes = [2, 4, 8, 16]
    rows = []
    for size in sizes:
        family = wide_family(size)
        planner = PathPlanner(family, quality_weight=1.0)
        start = time.perf_counter()
        for _ in range(50):
            planner.plan({"bandwidth": float(size)})
        cost = (time.perf_counter() - start) / 50
        total_paths = size ** 4
        rows.append([size, total_paths, fmt(cost * 1000, 3) + "ms"])
    family = wide_family(8)
    planner = PathPlanner(family, quality_weight=1.0)
    benchmark(lambda: planner.plan({"bandwidth": 8.0}))
    print_table("E11 planning cost (4 stages)",
                ["options/stage", "paths in family", "plan cost"], rows)
    # Polynomial planning: 16 options/stage (65k paths) still plans in
    # well under 50 ms.
    assert float(rows[-1][2][:-2]) < 50.0

"""S3-P — does sharding the simulation scale, and is it still the
same simulation?

The tentpole claims of ``repro.parallel`` under the bench harness:

* **throughput** — the 4-region star-ring scenario on one worker process
  per region (conservative-lookahead barrier rounds over pipes) against
  the identical workload on the single-shard inline baseline; the
  committed claim (gated by ``check_bench_regression.py`` on hosts with
  >= 4 cores) is **>= 2.5x events/sec**.  The artifact records
  ``cores`` so the gate can skip the speedup floor on starved runners
  (a 1-core container cannot demonstrate parallelism) while always
  enforcing the determinism claims.
* **determinism** — the merged telemetry checksum (per-region traces
  interleaved by sim-time, region-id, seq) must be byte-identical
  between the process backend and the single-shard baseline, across
  repeated same-seed parallel runs, and across a run whose worker was
  SIGKILLed mid-flight and revived by deterministic replay.

Full runs land in ``BENCH_parallel.json`` (folded into the PR-over-PR
dashboard and gated by ``check_bench_regression.py``); ``--smoke`` runs
default to the gitignored ``BENCH_parallel.smoke.json`` so short noisy
runs never replace the canonical artifact.  Run standalone::

    python benchmarks/bench_s3_parallel.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from functools import partial
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src"), str(_ROOT / "benchmarks")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.parallel import (
    ParallelSimulation,
    build_star_region,
    star_ring_partition,
)

from conftest import fmt, print_table

DEFAULT_OUT = _ROOT / "BENCH_parallel.json"
SMOKE_OUT = _ROOT / "BENCH_parallel.smoke.json"

SEED = 11
TELEMETRY = {"sample_rate": 0.1, "seed": 7}

#: Scenario sizes: (leaves per region, messages per region, sim horizon).
SIZES = {
    "smoke": dict(leaves=4, messages=1_500, until=2.0),
    "full": dict(leaves=8, messages=20_000, until=10.0),
}
REGIONS = 4
CROSS_FRACTION = 0.2
BOUNDARY_LATENCY = 0.05


def make_sim(size: dict) -> ParallelSimulation:
    partition = star_ring_partition(REGIONS, leaves=size["leaves"],
                                    boundary_latency=BOUNDARY_LATENCY)
    build = partial(build_star_region, leaves=size["leaves"],
                    messages=size["messages"], until=size["until"],
                    cross_fraction=CROSS_FRACTION)
    return ParallelSimulation(partition, build, seed=SEED,
                              telemetry=TELEMETRY)


def summarize(result) -> dict:
    return {
        "events_per_sec": result.events_per_sec,
        "executed": result.executed,
        "wall_s": result.wall_seconds,
        "rounds": result.rounds,
        "restarts": result.restarts,
        "sent": result.stat("sent"),
        "delivered": result.stat("delivered"),
        "dropped": result.stat("dropped"),
        "checksum": result.checksum,
    }


def run_suite(smoke: bool) -> dict:
    size = SIZES["smoke" if smoke else "full"]
    until = size["until"]

    single = make_sim(size).run(until=until, backend="inline")
    parallel = make_sim(size).run(until=until, backend="process")
    repeat = make_sim(size).run(until=until, backend="process")

    kill_at = max(1, parallel.rounds // 2)

    def chaos(psim, round_index, now):
        if round_index == kill_at:
            psim.kill_worker(1)

    restarted = make_sim(size).run(until=until, backend="process",
                                   after_round=chaos)
    assert restarted.restarts == 1, "chaos hook did not trigger a restart"

    determinism = {
        "backends_match": parallel.checksum == single.checksum,
        "repeat_match": repeat.checksum == parallel.checksum,
        "restart_match": restarted.checksum == single.checksum,
    }
    speedup = (parallel.events_per_sec / single.events_per_sec
               if single.events_per_sec else 0.0)

    print_table(
        "S3-P sharded parallel simulation (4-region star ring)",
        ["run", "backend", "events", "events/sec", "speedup", "checksum ok"],
        [
            ["single-shard", "inline", single.executed,
             f"{single.events_per_sec:,.0f}", "baseline", "-"],
            ["parallel", "process", parallel.executed,
             f"{parallel.events_per_sec:,.0f}", fmt(speedup, 2) + "x",
             "yes" if determinism["backends_match"] else "NO"],
            ["repeat", "process", repeat.executed,
             f"{repeat.events_per_sec:,.0f}", "-",
             "yes" if determinism["repeat_match"] else "NO"],
            [f"kill@round {kill_at}", "process", restarted.executed,
             f"{restarted.events_per_sec:,.0f}", "-",
             "yes" if determinism["restart_match"] else "NO"],
        ],
    )

    return {
        "bench": "s3_parallel",
        "mode": "smoke" if smoke else "full",
        "unix_time": time.time(),
        "python": sys.version.split()[0],
        "cores": os.cpu_count(),
        "scenario": {
            "regions": REGIONS,
            "workers": REGIONS,
            "cross_fraction": CROSS_FRACTION,
            "boundary_latency": BOUNDARY_LATENCY,
            "seed": SEED,
            "telemetry": TELEMETRY,
            **size,
        },
        "single_shard": summarize(single),
        "parallel": summarize(parallel),
        "restart": summarize(restarted),
        "speedup": speedup,
        "determinism": determinism,
    }


def write_results(results: dict, out: Path = DEFAULT_OUT) -> None:
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out}")


# ---------------------------------------------------------------------------
# pytest entry points (smoke-sized; determinism is asserted here because
# it must hold on any host — the speedup floor is only meaningful on
# multi-core machines and is gated on the full run by
# check_bench_regression.py, conditional on the recorded core count).
# ---------------------------------------------------------------------------

_CACHED_RESULTS: dict | None = None


def _results() -> dict:
    global _CACHED_RESULTS
    if _CACHED_RESULTS is None:
        _CACHED_RESULTS = run_suite(smoke=True)
        # Never the canonical path: pytest runs are smoke-sized and must
        # not clobber the gated full-mode artifact.
        write_results(_CACHED_RESULTS, SMOKE_OUT)
    return _CACHED_RESULTS


def test_s3_process_backend_matches_single_shard_checksum():
    results = _results()
    assert results["determinism"]["backends_match"], (
        results["parallel"]["checksum"], results["single_shard"]["checksum"])
    assert results["parallel"]["executed"] \
        == results["single_shard"]["executed"]


def test_s3_repeated_same_seed_runs_are_byte_stable():
    results = _results()
    assert results["determinism"]["repeat_match"]


def test_s3_killed_worker_revives_with_identical_checksum():
    results = _results()
    assert results["restart"]["restarts"] == 1
    assert results["determinism"]["restart_match"]


def test_s3_workload_is_delivered():
    results = _results()
    run = results["parallel"]
    assert run["sent"] == REGIONS * SIZES["smoke"]["messages"]
    assert run["delivered"] >= run["sent"] * 0.95
    assert run["dropped"] == 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="small sizes for CI smoke runs")
    parser.add_argument("--out", type=Path, default=None,
                        help="where to write the JSON results")
    cli = parser.parse_args()
    suite = run_suite(smoke=cli.smoke)
    # Smoke runs land next to — never on top of — the canonical full-mode
    # artifact, which is what check_bench_regression.py gates on.
    out = cli.out or (SMOKE_OUT if cli.smoke else DEFAULT_OUT)
    write_results(suite, out)

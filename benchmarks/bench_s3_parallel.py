"""S3-P — does sharding the simulation scale, and is it still the
same simulation?

The tentpole claims of ``repro.parallel`` under the bench harness:

* **throughput** — the 4-region star-ring scenario on one worker process
  per region (conservative-lookahead rounds over pipes) against the
  identical workload on the single-shard inline baseline; the committed
  claim (gated by ``check_bench_regression.py`` on hosts with >= 4
  cores) is **>= 2.5x events/sec**.  The artifact records ``cores`` so
  the gate can skip the speedup floor on starved runners (a 1-core
  container cannot demonstrate parallelism) while always enforcing the
  determinism claims.
* **determinism** — the merged telemetry checksum (per-region traces
  interleaved by sim-time, region-id, seq) must be byte-identical
  between the process backend (barrier *and* overlapped exchange), the
  single-shard baseline, repeated same-seed runs, and a run whose
  worker was SIGKILLed mid-flight and revived by deterministic replay.
* **overlap** — the overlapped exchange must execute strictly fewer
  synchronization stalls than the barrier (each region waits only on
  its boundary neighbors, not on a global round), with the identical
  trace.
* **memory** — every artifact records peak RSS and a tracemalloc
  bytes-per-node probe; the ``--large`` tier runs the memory-lean
  streaming scenario (columnar leaves, self-rescheduling workload
  streams) at >= 1M nodes / >= 10M messages and gates determinism on an
  order-invariant per-region delivery digest.

Full runs land in ``BENCH_parallel.json`` (folded into the PR-over-PR
dashboard and gated by ``check_bench_regression.py``); ``--smoke`` runs
default to the gitignored ``BENCH_parallel.smoke.json`` so short noisy
runs never replace the canonical artifact.  The million-node tier
writes ``BENCH_parallel_large.json`` (``--large``) or the gitignored
``BENCH_parallel_large.smoke.json`` (``--large-smoke``, CI-sized).
Run standalone::

    python benchmarks/bench_s3_parallel.py
        [--smoke | --large | --large-smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time
from functools import partial
from pathlib import Path

_ROOT = Path(__file__).resolve().parent.parent
for _path in (str(_ROOT), str(_ROOT / "src"), str(_ROOT / "benchmarks")):
    if _path not in sys.path:
        sys.path.insert(0, _path)

from repro.events import Simulator
from repro.parallel import (
    ParallelSimulation,
    build_lean_star_region,
    build_star_region,
    lean_star_partition,
    star_ring_partition,
)

from conftest import fmt, peak_rss_mb, print_table, traced_bytes

DEFAULT_OUT = _ROOT / "BENCH_parallel.json"
SMOKE_OUT = _ROOT / "BENCH_parallel.smoke.json"
LARGE_OUT = _ROOT / "BENCH_parallel_large.json"
LARGE_SMOKE_OUT = _ROOT / "BENCH_parallel_large.smoke.json"

SEED = 11
TELEMETRY = {"sample_rate": 0.1, "seed": 7}

#: Scenario sizes: (leaves per region, messages per region, sim horizon).
SIZES = {
    "smoke": dict(leaves=4, messages=1_500, until=2.0),
    "full": dict(leaves=8, messages=20_000, until=10.0),
}
#: Memory-lean tier sizes; ``large`` is the committed million-node /
#: ten-million-message claim, ``large_smoke`` the CI-sized rehearsal.
LARGE_SIZES = {
    "large_smoke": dict(leaves=25_000, messages=100_000, until=10.0),
    "large": dict(leaves=250_000, messages=2_500_000, until=10.0),
}
REGIONS = 4
CROSS_FRACTION = 0.2
#: Lean tier: message m crosses a boundary iff m % CROSS_EVERY == 0.
CROSS_EVERY = 25
BOUNDARY_LATENCY = 0.05


def make_sim(size: dict) -> ParallelSimulation:
    partition = star_ring_partition(REGIONS, leaves=size["leaves"],
                                    boundary_latency=BOUNDARY_LATENCY)
    build = partial(build_star_region, leaves=size["leaves"],
                    messages=size["messages"], until=size["until"],
                    cross_fraction=CROSS_FRACTION)
    return ParallelSimulation(partition, build, seed=SEED,
                              telemetry=TELEMETRY)


def make_lean_sim(size: dict) -> ParallelSimulation:
    partition = lean_star_partition(REGIONS,
                                    boundary_latency=BOUNDARY_LATENCY)
    build = partial(build_lean_star_region, leaves=size["leaves"],
                    messages=size["messages"], until=size["until"],
                    cross_every=CROSS_EVERY)
    return ParallelSimulation(partition, build, seed=SEED)


def summarize(result) -> dict:
    return {
        "events_per_sec": result.events_per_sec,
        "executed": result.executed,
        "wall_s": result.wall_seconds,
        "rounds": result.rounds,
        "restarts": result.restarts,
        "exchange_mode": result.mode,
        "sync_stalls": result.sync_stalls,
        "sent": result.stat("sent"),
        "delivered": result.stat("delivered"),
        "dropped": result.stat("dropped"),
        "checksum": result.checksum,
        "peak_rss_mb": peak_rss_mb(),
    }


def bytes_per_node_probes(size: dict) -> dict:
    """Tracemalloc probes: build ONE region's topology (no workload) and
    charge the traced heap to its node count.

    The classic builder materializes every leaf as Node + Link + routes;
    the lean builder keeps one ``array('I')`` slot per leaf — the ratio
    is the headline of the memory-lean fast path.  The probe needs
    enough leaves to amortize per-region constants (hub, boundaries,
    rng) or both readings degenerate to constants/leaves; tiny scenario
    tiers therefore probe at a floor leaf count — the builds are
    workload-free, so this stays cheap.
    """
    leaves = max(size["leaves"], 10_000)

    def classic() -> None:
        partition = star_ring_partition(REGIONS, leaves=leaves,
                                        boundary_latency=BOUNDARY_LATENCY)
        build_star_region(0, Simulator(), partition, SEED, leaves=leaves,
                          messages=0, until=1.0)

    def lean() -> None:
        partition = lean_star_partition(REGIONS,
                                        boundary_latency=BOUNDARY_LATENCY)
        build_lean_star_region(0, Simulator(), partition, SEED,
                               leaves=leaves, messages=0, until=1.0)

    nodes = leaves + 1  # one region: its leaves plus the hub
    return {
        "probe_leaves": leaves,
        "bytes_per_node_classic": round(traced_bytes(classic) / nodes, 1),
        "bytes_per_node": round(traced_bytes(lean) / nodes, 1),
    }


def run_suite(smoke: bool) -> dict:
    size = SIZES["smoke" if smoke else "full"]
    until = size["until"]

    single = make_sim(size).run(until=until, backend="inline")
    parallel = make_sim(size).run(until=until, backend="process")
    overlapped = make_sim(size).run(until=until, backend="process",
                                    mode="overlapped")
    repeat = make_sim(size).run(until=until, backend="process")

    kill_at = max(1, parallel.rounds // 2)

    def chaos(psim, round_index, now):
        if round_index == kill_at:
            psim.kill_worker(1)

    restarted = make_sim(size).run(until=until, backend="process",
                                   after_round=chaos)
    assert restarted.restarts == 1, "chaos hook did not trigger a restart"

    determinism = {
        "backends_match": parallel.checksum == single.checksum,
        "overlapped_match": overlapped.checksum == single.checksum,
        "repeat_match": repeat.checksum == parallel.checksum,
        "restart_match": restarted.checksum == single.checksum,
    }
    speedup = (parallel.events_per_sec / single.events_per_sec
               if single.events_per_sec else 0.0)

    print_table(
        "S3-P sharded parallel simulation (4-region star ring)",
        ["run", "backend", "events", "events/sec", "stalls", "speedup",
         "checksum ok"],
        [
            ["single-shard", "inline", single.executed,
             f"{single.events_per_sec:,.0f}", single.sync_stalls,
             "baseline", "-"],
            ["barrier", "process", parallel.executed,
             f"{parallel.events_per_sec:,.0f}", parallel.sync_stalls,
             fmt(speedup, 2) + "x",
             "yes" if determinism["backends_match"] else "NO"],
            ["overlapped", "process", overlapped.executed,
             f"{overlapped.events_per_sec:,.0f}", overlapped.sync_stalls,
             "-", "yes" if determinism["overlapped_match"] else "NO"],
            ["repeat", "process", repeat.executed,
             f"{repeat.events_per_sec:,.0f}", repeat.sync_stalls, "-",
             "yes" if determinism["repeat_match"] else "NO"],
            [f"kill@round {kill_at}", "process", restarted.executed,
             f"{restarted.events_per_sec:,.0f}", restarted.sync_stalls,
             "-", "yes" if determinism["restart_match"] else "NO"],
        ],
    )

    return {
        "bench": "s3_parallel",
        "mode": "smoke" if smoke else "full",
        "unix_time": time.time(),
        "python": sys.version.split()[0],
        "cores": os.cpu_count(),
        "scenario": {
            "regions": REGIONS,
            "workers": REGIONS,
            "cross_fraction": CROSS_FRACTION,
            "boundary_latency": BOUNDARY_LATENCY,
            "seed": SEED,
            "telemetry": TELEMETRY,
            **size,
        },
        "single_shard": summarize(single),
        "parallel": summarize(parallel),
        "overlapped": summarize(overlapped),
        "restart": summarize(restarted),
        "speedup": speedup,
        "determinism": determinism,
        "memory": {
            "peak_rss_mb": peak_rss_mb(),
            **bytes_per_node_probes(size),
        },
    }


# ---------------------------------------------------------------------------
# Million-node tier: the memory-lean streaming scenario.
# ---------------------------------------------------------------------------


def digest_checksum(result) -> str:
    """Order-invariant determinism checksum for the lean scenario.

    The lean shard folds every delivery into a mod-2^64 digest keyed by
    (delivery time, origin region, message id, leaf); hashing the sorted
    per-region digests plus the traffic counters gives one hex string
    that must be byte-identical across backends, exchange modes and
    adaptive horizon widening — delivery *times* are a pure function of
    the workload even where trace record order is not.
    """
    rows = [
        (region,
         result.regions[region]["stats"]["digest"],
         result.regions[region]["stats"]["sent"],
         result.regions[region]["stats"]["delivered"],
         result.regions[region]["stats"]["dropped"],
         result.regions[region]["stats"]["forwarded_out"],
         result.regions[region]["stats"]["ingressed"])
        for region in sorted(result.regions)
    ]
    payload = json.dumps(rows, separators=(",", ":")).encode()
    return hashlib.sha256(payload).hexdigest()


def summarize_large(result) -> dict:
    summary = summarize(result)
    summary["checksum"] = digest_checksum(result)
    return summary


def run_large_suite(smoke: bool) -> dict:
    size = LARGE_SIZES["large_smoke" if smoke else "large"]
    until = size["until"]
    nodes_total = REGIONS * (size["leaves"] + 1)
    messages_total = REGIONS * size["messages"]

    probes = bytes_per_node_probes(size)
    single = make_lean_sim(size).run(until=until, backend="inline")
    barrier = make_lean_sim(size).run(until=until, backend="process")
    overlapped = make_lean_sim(size).run(until=until, backend="process",
                                         mode="overlapped")
    repeat = make_lean_sim(size).run(until=until, backend="process",
                                     mode="overlapped")

    runs = {
        "single_shard": summarize_large(single),
        "barrier": summarize_large(barrier),
        "overlapped": summarize_large(overlapped),
        "repeat": summarize_large(repeat),
    }
    base = runs["single_shard"]["checksum"]
    determinism = {
        "backends_match": runs["barrier"]["checksum"] == base,
        "overlapped_match": runs["overlapped"]["checksum"] == base,
        "repeat_match":
            runs["repeat"]["checksum"] == runs["overlapped"]["checksum"],
        "zero_drops": all(run["dropped"] == 0 for run in runs.values()),
    }

    print_table(
        f"S3-P million-node tier ({nodes_total:,} nodes, "
        f"{messages_total:,} messages)",
        ["run", "backend", "events", "events/sec", "stalls", "peak MB",
         "checksum ok"],
        [
            [name,
             "inline" if name == "single_shard" else "process",
             run["executed"], f"{run['events_per_sec']:,.0f}",
             run["sync_stalls"], run["peak_rss_mb"],
             "-" if name == "single_shard" else
             ("yes" if run["checksum"] ==
              (runs["overlapped"]["checksum"] if name == "repeat"
               else base) else "NO")]
            for name, run in runs.items()
        ],
    )
    print(f"bytes/node: lean {probes['bytes_per_node']} vs classic "
          f"{probes['bytes_per_node_classic']} "
          f"(probe at {probes['probe_leaves']:,} leaves/region)")

    return {
        "bench": "s3_parallel_large",
        "mode": "large_smoke" if smoke else "large",
        "unix_time": time.time(),
        "python": sys.version.split()[0],
        "cores": os.cpu_count(),
        "scenario": {
            "regions": REGIONS,
            "workers": REGIONS,
            "nodes_total": nodes_total,
            "messages_total": messages_total,
            "cross_every": CROSS_EVERY,
            "boundary_latency": BOUNDARY_LATENCY,
            "seed": SEED,
            **size,
        },
        **runs,
        "determinism": determinism,
        "memory": {
            "peak_rss_mb": peak_rss_mb(),
            **probes,
        },
    }


def write_results(results: dict, out: Path = DEFAULT_OUT) -> None:
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out}")


# ---------------------------------------------------------------------------
# pytest entry points (smoke-sized; determinism is asserted here because
# it must hold on any host — the speedup floor is only meaningful on
# multi-core machines and is gated on the full run by
# check_bench_regression.py, conditional on the recorded core count).
# ---------------------------------------------------------------------------

_CACHED_RESULTS: dict | None = None


def _results() -> dict:
    global _CACHED_RESULTS
    if _CACHED_RESULTS is None:
        _CACHED_RESULTS = run_suite(smoke=True)
        # Never the canonical path: pytest runs are smoke-sized and must
        # not clobber the gated full-mode artifact.
        write_results(_CACHED_RESULTS, SMOKE_OUT)
    return _CACHED_RESULTS


def test_s3_process_backend_matches_single_shard_checksum():
    results = _results()
    assert results["determinism"]["backends_match"], (
        results["parallel"]["checksum"], results["single_shard"]["checksum"])
    assert results["parallel"]["executed"] \
        == results["single_shard"]["executed"]


def test_s3_overlapped_exchange_same_trace_fewer_stalls():
    results = _results()
    assert results["determinism"]["overlapped_match"], (
        results["overlapped"]["checksum"],
        results["single_shard"]["checksum"])
    assert results["overlapped"]["sync_stalls"] \
        < results["parallel"]["sync_stalls"]


def test_s3_repeated_same_seed_runs_are_byte_stable():
    results = _results()
    assert results["determinism"]["repeat_match"]


def test_s3_killed_worker_revives_with_identical_checksum():
    results = _results()
    assert results["restart"]["restarts"] == 1
    assert results["determinism"]["restart_match"]


def test_s3_workload_is_delivered():
    results = _results()
    run = results["parallel"]
    assert run["sent"] == REGIONS * SIZES["smoke"]["messages"]
    assert run["delivered"] >= run["sent"] * 0.95
    assert run["dropped"] == 0


def test_s3_memory_metrics_recorded():
    results = _results()
    memory = results["memory"]
    assert memory["bytes_per_node"] > 0
    # The lean shard must be dramatically cheaper per node than the
    # object-per-leaf builder, and peak RSS must be a plausible reading.
    assert memory["bytes_per_node"] < memory["bytes_per_node_classic"] / 4
    assert memory["peak_rss_mb"] >= 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    tier = parser.add_mutually_exclusive_group()
    tier.add_argument("--smoke", action="store_true",
                      help="small sizes for CI smoke runs")
    tier.add_argument("--large", action="store_true",
                      help="million-node memory-lean tier (full size)")
    tier.add_argument("--large-smoke", action="store_true",
                      help="memory-lean tier at CI size (~100k nodes)")
    parser.add_argument("--out", type=Path, default=None,
                        help="where to write the JSON results")
    cli = parser.parse_args()
    if cli.large or cli.large_smoke:
        suite = run_large_suite(smoke=cli.large_smoke)
        out = cli.out or (LARGE_SMOKE_OUT if cli.large_smoke else LARGE_OUT)
    else:
        suite = run_suite(smoke=cli.smoke)
        # Smoke runs land next to — never on top of — the canonical
        # full-mode artifact, which check_bench_regression.py gates on.
        out = cli.out or (SMOKE_OUT if cli.smoke else DEFAULT_OUT)
    write_results(suite, out)

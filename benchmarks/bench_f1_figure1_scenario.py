"""F1 — the paper's Figure 1, measured.

"Connector based reconfiguration and adaptation": serving components
attached to a connector, introspection streams up to RAML, intercession
arrows back down.  The scenario drives a fault through the figure's
loop and verifies every arrow fired, then reports the meta-level's
reaction timeline.

Series: time from fault to (a) first introspection evidence, (b) the
lightweight adaptation, (c) the intercession swap, and (d) full service
recovery; plus availability during the episode.  Expected shape: the
pipeline reacts within a handful of sweep periods and availability stays
above 50% during the fault window thanks to retries.
"""

import pytest

from repro import Simulator, star, telemetry
from repro.connectors import RpcConnector
from repro.core import Raml, Response, custom
from repro.events import PeriodicTimer
from repro.kernel import Assembly, Component, Interface, Operation

from conftest import fmt, print_table

FAULT_AT = 2.0
SWEEP = 0.25


def media_interface():
    return Interface("Media", "1.0", [Operation("render", ("frame",))])


class Serving(Component):
    def on_initialize(self):
        self.state.setdefault("rendered", 0)
        self.state.setdefault("degraded", False)

    def render(self, frame):
        if self.state["degraded"]:
            raise RuntimeError("wedged")
        self.state["rendered"] += 1
        return frame


def run_figure1(sampling=None, kernel_detail=None, capacity=None) -> dict:
    """Drive the Figure-1 loop; optionally under telemetry.

    ``sampling`` (a :class:`repro.telemetry.SamplingPolicy`) and/or
    ``kernel_detail`` install the tracer before the run — this is how
    the CI trace-artifact exporter reuses the scenario — and the tracer
    comes back in the result under ``"tracer"``.
    """
    sim = Simulator()
    tracer = None
    if sampling is not None or kernel_detail is not None:
        tracer = telemetry.install(
            sim, kernel_detail=kernel_detail, sampling=sampling,
            capacity=capacity or telemetry.DEFAULT_CAPACITY)
    assembly = Assembly(star(sim, leaves=3))
    serving_a = Serving("serving-a")
    serving_a.provide("svc", media_interface())
    assembly.deploy(serving_a, "leaf0")
    serving_b = Serving("serving-b")
    serving_b.provide("svc", media_interface())
    assembly.deploy(serving_b, "leaf1")
    connector = RpcConnector("media", media_interface())
    connector.attach("server", serving_a.provided_port("svc"))
    assembly.add_connector(connector)
    client = Component("client")
    client.require("media", media_interface())
    assembly.deploy(client, "leaf2")
    assembly.connect("client", "media", target=connector.endpoint("client"))
    if tracer is not None:
        telemetry.instrument_assembly(tracer, assembly)

    raml = Raml(assembly, period=SWEEP, metric_window=1.0).instrument()
    timeline: dict[str, float] = {}

    def stream(event):
        if (event.source.startswith("connector:")
                and event.kind == "error"):
            timeline.setdefault("first_evidence", sim.now)
            raml.record_metric("errors", 1.0)

    raml.hub.subscribe(stream)

    def too_many_errors(view):
        if "errors" not in view.metrics:
            return []
        series = view.metrics.series("errors")
        return ["error burst"] if series.count > 2 else []

    def adapt(raml_, violations):
        if connector.retries == 0:
            connector.retries = 2
            timeline.setdefault("adaptation", sim.now)

    def intercede(raml_, violations):
        active = connector.attachments["server"][0].target
        standby = (serving_b if active.component is serving_a
                   else serving_a).provided_port("svc")
        raml_.intercessor.swap_connector_attachment("media", "server",
                                                    active, standby)
        raml_.metrics.series("errors").reset()
        timeline.setdefault("intercession", sim.now)

    raml.add_constraint(custom("error-rate", too_many_errors),
                        Response(adapt=adapt, reconfigure=intercede,
                                 escalate_after=2))
    raml.start()

    window = {"ok": 0, "failed": 0}

    def call():
        try:
            client.required_port("media").call("render", "f")
            window["ok"] += 1
            if (serving_b.state["rendered"] > 0
                    and "recovered" not in timeline):
                timeline["recovered"] = sim.now
        except RuntimeError:
            window["failed"] += 1

    traffic = PeriodicTimer(sim, 0.05, call)
    sim.at(lambda: serving_a.state.__setitem__("degraded", True), when=FAULT_AT)
    sim.run(until=6.0)
    traffic.stop()
    raml.stop()

    total = window["ok"] + window["failed"]
    return {
        "timeline": timeline,
        "availability": window["ok"] / total if total else 0.0,
        "rendered_by_standby": serving_b.state["rendered"],
        "events_observed": len(raml.hub.events),
        "health": raml.health(),
        "tracer": tracer,
    }


def test_f1_figure1_loop(benchmark):
    result = benchmark.pedantic(run_figure1, rounds=1, iterations=1)
    timeline = result["timeline"]

    rows = [
        [arrow, fmt(timeline[arrow] - FAULT_AT, 3) + "s"]
        for arrow in ("first_evidence", "adaptation", "intercession",
                      "recovered")
        if arrow in timeline
    ]
    rows.append(["availability", fmt(result["availability"] * 100, 1) + "%"])
    rows.append(["introspection events", result["events_observed"]])
    print_table("F1 figure-1 loop: delay after fault", ["arrow", "value"],
                rows)

    # Every arrow of the figure fired, in order.
    for arrow in ("first_evidence", "adaptation", "intercession",
                  "recovered"):
        assert arrow in timeline, f"figure arrow {arrow!r} never fired"
    assert (timeline["first_evidence"] <= timeline["adaptation"]
            <= timeline["intercession"] <= timeline["recovered"])
    # The loop closes within a handful of sweep periods.
    assert timeline["recovered"] - FAULT_AT <= 6 * SWEEP
    # Availability over the whole run stays high.
    assert result["availability"] > 0.5
    assert result["rendered_by_standby"] > 0
    assert result["health"]["reconfigurations"] >= 1

"""A1 — ablations of the reconfiguration engine's design choices.

Three knobs DESIGN.md calls out are individually removed to show what
each buys:

* **quiescence** — replace a component *without* blocking its channels:
  requests that arrive inside the swap window fail, whereas the full
  protocol buffers and replays them (zero failures);
* **consistency check + rollback** — apply a change set whose result is
  inconsistent: without the check the application is left broken
  (subsequent calls fail); with it the original configuration survives;
* **escalation threshold** — RAML's adaptation-first arbitration: with
  ``escalate_after=1`` every transient blip triggers a (costly)
  reconfiguration; with 3 the blips are ridden out and only the
  persistent fault escalates.
"""

import pytest

from repro import Simulator, star
from repro.core import Raml, Response, custom
from repro.kernel import Assembly, LifecycleState
from repro.reconfig import (
    ReconfigurationTransaction,
    RemoveBinding,
    ReplaceComponent,
)
from repro.workloads import OpenLoopGenerator, binding_transport

from conftest import print_table
from tests.helpers import CounterComponent, counter_interface


def fresh(name, require_peer=False):
    component = CounterComponent(name)
    component.provide("svc", counter_interface())
    if require_peer:
        component.require("peer", counter_interface())
    return component


def wired():
    sim = Simulator()
    assembly = Assembly(star(sim, leaves=2))
    client = assembly.deploy(fresh("client", require_peer=True), "leaf0")
    server = assembly.deploy(fresh("server"), "leaf1")
    assembly.connect("client", "peer", target_component="server")
    return sim, assembly, client, server


# ---------------------------------------------------------------------------
# Ablation 1: quiescence
# ---------------------------------------------------------------------------

def run_swap(with_quiescence: bool) -> dict:
    sim, assembly, client, server = wired()
    generator = OpenLoopGenerator(
        sim, binding_transport(client.required_port("peer")),
        "increment", make_args=lambda i: (1,), rate=1000.0,
    ).start(duration=1.0)
    replacement = fresh("server-v2")

    if with_quiescence:
        sim.at(lambda: ReconfigurationTransaction(assembly).add(
            ReplaceComponent("server", replacement)
        ).execute_async(), when=0.5)
    else:
        # Naive swap: passivate, transfer state over a window, only then
        # redirect — without blocking the channel.
        def naive():
            from repro.reconfig import transfer_state

            server.passivate()
            window = 0.01  # same order as the transactional window

            def finish():
                transfer_state(server, replacement)
                if replacement.lifecycle.state is LifecycleState.CREATED:
                    replacement.initialize()
                assembly.deploy(replacement, "leaf1")
                binding = client.required_port("peer").binding
                binding.redirect(replacement.provided_port("svc"))
                server.stop()

            sim.schedule(finish, delay=window)

        sim.at(naive, when=0.5)

    sim.run(until=2.0)
    return {
        "issued": generator.stats.issued,
        "failed": generator.stats.failed,
        "served": replacement.state.get("total", 0),
    }


# ---------------------------------------------------------------------------
# Ablation 2: consistency check + rollback
# ---------------------------------------------------------------------------

def run_inconsistent_change(with_check: bool) -> dict:
    sim, assembly, client, server = wired()
    if with_check:
        txn = ReconfigurationTransaction(assembly).add(
            RemoveBinding("client", "peer")  # leaves a dangling requirement
        )
        try:
            txn.execute()
        except Exception:  # noqa: BLE001 - rolled back
            pass
    else:
        # Raw change application, no validation/rollback.
        change = RemoveBinding("client", "peer")
        change.apply(assembly)

    # Is the application still whole?
    try:
        client.required_port("peer").call("increment", 1)
        working = True
    except Exception:  # noqa: BLE001
        working = False
    return {"working": working}


# ---------------------------------------------------------------------------
# Ablation 3: escalation threshold
# ---------------------------------------------------------------------------

def run_escalation(threshold: int) -> dict:
    sim, assembly, _client, _server = wired()
    raml = Raml(assembly, period=0.25)
    blip = {"bad": False}
    reconfigurations = []

    raml.add_constraint(
        custom("flaky-signal", lambda view: ["bad"] if blip["bad"] else []),
        Response(reconfigure=lambda r, v: reconfigurations.append(r.now),
                 escalate_after=threshold),
    )
    raml.start()
    # Three one-sweep transient blips, then one persistent fault.
    for at in (1.0, 2.0, 3.0):
        sim.at(lambda: blip.__setitem__("bad", True), when=at)
        sim.at(lambda: blip.__setitem__("bad", False), when=at + 0.3)
    sim.at(lambda: blip.__setitem__("bad", True), when=4.0)
    sim.run(until=6.0)
    raml.stop()
    persistent_caught = any(t >= 4.0 for t in reconfigurations)
    spurious = sum(1 for t in reconfigurations if t < 4.0)
    return {"spurious": spurious, "persistent_caught": persistent_caught}


def test_a1_ablations(benchmark):
    quiesced = run_swap(with_quiescence=True)
    naive = run_swap(with_quiescence=False)
    checked = run_inconsistent_change(with_check=True)
    unchecked = run_inconsistent_change(with_check=False)
    eager = run_escalation(threshold=1)
    patient = run_escalation(threshold=3)
    benchmark.pedantic(lambda: run_swap(True), rounds=1, iterations=1)

    rows = [
        ["swap + quiescence", f"failed={quiesced['failed']}",
         f"issued={quiesced['issued']}"],
        ["swap, no quiescence", f"failed={naive['failed']}",
         f"issued={naive['issued']}"],
        ["inconsistent change + check", f"app working={checked['working']}",
         "rolled back"],
        ["inconsistent change, no check",
         f"app working={unchecked['working']}", "shipped broken"],
        ["escalate_after=1", f"spurious={eager['spurious']}",
         f"persistent caught={eager['persistent_caught']}"],
        ["escalate_after=3", f"spurious={patient['spurious']}",
         f"persistent caught={patient['persistent_caught']}"],
    ]
    print_table("A1 ablations", ["configuration", "outcome", "detail"], rows)

    # Quiescence is what makes the swap lossless.
    assert quiesced["failed"] == 0
    assert naive["failed"] > 0
    # The consistency check is what keeps the application whole.
    assert checked["working"]
    assert not unchecked["working"]
    # Patience suppresses spurious reconfigurations without missing the
    # persistent fault.
    assert eager["spurious"] >= 3
    assert patient["spurious"] == 0
    assert eager["persistent_caught"] and patient["persistent_caught"]

"""Adaptation policies.

Dynamic adaptability is the *light-weight* reaction path: "in case
light-weight highly reactive solutions are required, dynamic adaptability
should be preferred to dynamic reconfiguration".  A policy binds a
condition over the observed context to a list of actions (strategy
switches, filter attachment, connector retuning) that apply *without*
any quiescence or structural change.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import AdaptationError

#: The observed context: flat metric/statistic names to values.
Context = Mapping[str, float]

#: An action applied when a policy fires.  Receives the context.
Action = Callable[[Context], None]


@dataclass
class AdaptationPolicy:
    """When ``condition(context)`` holds, run ``actions``.

    ``cooldown`` (simulated seconds) is the hysteresis window: after the
    policy fires it stays dormant for that long, preventing oscillation
    between adaptation states — the stability concern of any feedback
    mechanism.  ``arm_after`` requires the condition to hold for N
    consecutive evaluations before firing (debouncing).
    """

    name: str
    condition: Callable[[Context], bool]
    actions: list[Action] = field(default_factory=list)
    priority: int = 0
    cooldown: float = 0.0
    arm_after: int = 1
    one_shot: bool = False

    fired_count: int = field(default=0, compare=False)
    last_fired_at: float = field(default=float("-inf"), compare=False)
    _armed_streak: int = field(default=0, compare=False)
    _exhausted: bool = field(default=False, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise AdaptationError("policy name must be non-empty")
        if self.arm_after < 1:
            raise AdaptationError(
                f"policy {self.name!r}: arm_after must be >= 1"
            )

    def ready(self, context: Context, now: float) -> bool:
        """Condition + debouncing + cooldown evaluation."""
        if self._exhausted:
            return False
        if now - self.last_fired_at < self.cooldown:
            return False
        if not self.condition(context):
            self._armed_streak = 0
            return False
        self._armed_streak += 1
        return self._armed_streak >= self.arm_after

    def fire(self, context: Context, now: float) -> None:
        self.fired_count += 1
        self.last_fired_at = now
        self._armed_streak = 0
        if self.one_shot:
            self._exhausted = True
        for action in self.actions:
            action(context)


def switch_strategy(slot: Any, strategy_name: str, reason: str = "") -> Action:
    """Action: switch a :class:`~repro.strategy.StrategySlot`."""

    def action(context: Context) -> None:
        if slot.current_name != strategy_name:
            slot.use(strategy_name, reason=reason or "adaptation")

    return action


def attach_filters(filter_set: Any, port: Any) -> Action:
    """Action: attach a filter set (idempotent per target)."""

    def action(context: Context) -> None:
        live = [holder for holder, _i in filter_set._attached]
        if port not in live:
            filter_set.attach_to(port)

    return action


def detach_filters(filter_set: Any, port: Any) -> Action:
    """Action: detach a filter set if attached."""

    def action(context: Context) -> None:
        live = [holder for holder, _i in filter_set._attached]
        if port in live:
            filter_set.detach_from(port)

    return action


def set_connector_policy(connector: Any, policy: str) -> Action:
    """Action: retune a load-balancer connector's balancing policy."""

    def action(context: Context) -> None:
        if connector.policy != policy:
            connector.set_policy(policy)

    return action


def call(fn: Callable[..., None], *args: Any) -> Action:
    """Action: invoke an arbitrary tuning function."""

    def action(context: Context) -> None:
        fn(*args)

    return action

"""The adaptation manager.

Evaluates adaptation policies against the live context — a snapshot of
QoS metric statistics plus custom probes — either periodically or pushed
by QoS-monitor violations.  Adaptations "should be realized without
degrading the availability of the applications": actions here never
block channels or passivate components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import AdaptationError
from repro.events import PeriodicTimer, Simulator
from repro.qos.metrics import MetricRegistry
from repro.adaptation.policy import AdaptationPolicy, Context


@dataclass
class AdaptationEvent:
    """Log record of one policy firing."""

    time: float
    policy: str
    context: dict[str, float]


class AdaptationManager:
    """Holds policies and drives their evaluation."""

    def __init__(self, sim: Simulator,
                 registry: MetricRegistry | None = None,
                 period: float = 0.5) -> None:
        self.sim = sim
        self.registry = registry
        self.period = period
        self.policies: list[AdaptationPolicy] = []
        self.probes: dict[str, Callable[[], float]] = {}
        self.log: list[AdaptationEvent] = []
        self._timer: PeriodicTimer | None = None

    # -- configuration -------------------------------------------------------

    def add_policy(self, policy: AdaptationPolicy) -> "AdaptationManager":
        if any(existing.name == policy.name for existing in self.policies):
            raise AdaptationError(f"policy {policy.name!r} already exists")
        self.policies.append(policy)
        self.policies.sort(key=lambda p: -p.priority)
        return self

    def remove_policy(self, name: str) -> AdaptationPolicy:
        for policy in self.policies:
            if policy.name == name:
                self.policies.remove(policy)
                return policy
        raise AdaptationError(f"no policy named {name!r}")

    def add_probe(self, name: str, probe: Callable[[], float]) -> None:
        """Register a context value not derived from the metric registry."""
        self.probes[name] = probe

    # -- context ---------------------------------------------------------------

    def context(self) -> dict[str, float]:
        """Flattened observation snapshot: ``metric.stat`` keys + probes."""
        snapshot: dict[str, float] = {}
        if self.registry is not None:
            for metric, stats in self.registry.snapshot(self.sim.now).items():
                for stat, value in stats.items():
                    snapshot[f"{metric}.{stat}"] = value
        for name, probe in self.probes.items():
            snapshot[name] = probe()
        return snapshot

    # -- evaluation --------------------------------------------------------------

    def evaluate(self, context: Context | None = None) -> list[str]:
        """Run one evaluation sweep; returns the names of fired policies."""
        observed = dict(context) if context is not None else self.context()
        fired = []
        tracer = self.sim.tracer
        for policy in self.policies:
            if policy.ready(observed, self.sim.now):
                if tracer is not None:
                    tracer.record_audit("adaptation.fire", policy=policy.name,
                                        priority=policy.priority,
                                        context=dict(observed))
                policy.fire(observed, self.sim.now)
                fired.append(policy.name)
                self.log.append(
                    AdaptationEvent(self.sim.now, policy.name, observed)
                )
        return fired

    def start(self) -> "AdaptationManager":
        """Evaluate periodically on the simulated clock."""
        if self._timer is None or not self._timer.running:
            self._timer = PeriodicTimer(self.sim, self.period, self.evaluate)
        return self

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def on_violation(self, event: str, report) -> None:
        """QoS-monitor listener: evaluate immediately on violations —
        the highly-reactive path (no waiting for the next period)."""
        if event == "violation":
            self.evaluate()

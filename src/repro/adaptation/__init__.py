"""Dynamic adaptation engine (S15).

Lightweight trigger→policy→action loop that swaps strategies, filters,
aspects and connector tuning without reconfiguration — the highly
reactive path of the paper's taxonomy.
"""

from repro.adaptation.manager import AdaptationEvent, AdaptationManager
from repro.adaptation.policy import (
    Action,
    AdaptationPolicy,
    Context,
    attach_filters,
    call,
    detach_filters,
    set_connector_policy,
    switch_strategy,
)

__all__ = [
    "Action",
    "AdaptationEvent",
    "AdaptationManager",
    "AdaptationPolicy",
    "Context",
    "attach_filters",
    "call",
    "detach_filters",
    "set_connector_policy",
    "switch_strategy",
]

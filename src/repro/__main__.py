"""``python -m repro`` — a 30-second guided demo.

Runs the paper's Figure-1 loop end to end (fault → introspection →
adaptation → intercession → recovery) on a three-node simulated network
and prints the meta-level timeline.  No arguments, no configuration —
the shortest path to seeing the platform work.  The run is fully traced
by :mod:`repro.telemetry`; a profile summary follows the timeline.
"""

from __future__ import annotations

from repro import Simulator, star, telemetry
from repro.connectors import RpcConnector
from repro.core import Raml, Response, custom
from repro.events import PeriodicTimer
from repro.kernel import Assembly, Component, Interface, Operation


def main() -> int:
    media = Interface("Media", "1.0", [Operation("render", ("frame",))])

    class Serving(Component):
        def on_initialize(self):
            self.state.setdefault("rendered", 0)
            self.state.setdefault("degraded", False)

        def render(self, frame):
            if self.state["degraded"]:
                raise RuntimeError("wedged")
            self.state["rendered"] += 1
            return frame

    sim = Simulator()
    tracer = telemetry.install(sim)
    assembly = Assembly(star(sim, leaves=3), name="demo")
    primary = Serving("primary")
    primary.provide("svc", media)
    assembly.deploy(primary, "leaf0")
    standby = Serving("standby")
    standby.provide("svc", media)
    assembly.deploy(standby, "leaf1")

    connector = RpcConnector("front", media)
    connector.attach("server", primary.provided_port("svc"))
    assembly.add_connector(connector)

    client = Component("client")
    client.require("media", media)
    assembly.deploy(client, "leaf2")
    assembly.connect("client", "media", target=connector.endpoint("client"))

    telemetry.instrument_assembly(tracer, assembly)
    raml = Raml(assembly, period=0.25, metric_window=1.0).instrument()

    narrate = telemetry.Narrator(sim).say

    raml.hub.subscribe(
        lambda event: raml.record_metric("errors", 1.0)
        if event.source.startswith("connector:") and event.kind == "error"
        else None
    )

    def swap(raml_, violations):
        active = connector.attachments["server"][0].target
        next_up = (standby if active.component is primary
                   else primary).provided_port("svc")
        raml_.intercessor.swap_connector_attachment("front", "server",
                                                    active, next_up)
        raml_.metrics.series("errors").reset()
        narrate(f"INTERCESSION: connector now serves "
                f"{next_up.component.name!r}")

    raml.add_constraint(
        custom("error-burst",
               lambda view: ["burst"]
               if "errors" in view.metrics
               and view.metrics.series("errors").count > 2 else []),
        Response(reconfigure=swap, escalate_after=2),
    )
    raml.start()

    served = {"ok": 0, "failed": 0}

    def call():
        try:
            client.required_port("media").call("render", "frame")
            served["ok"] += 1
        except RuntimeError:
            served["failed"] += 1

    traffic = PeriodicTimer(sim, 0.05, call)

    print("repro demo — the paper's Figure 1, live:")
    narrate("traffic flowing through connector 'front' to 'primary'")
    sim.at(lambda: (primary.state.__setitem__("degraded", True),
                         narrate("FAULT: 'primary' starts failing")), when=2.0)
    sim.run(until=5.0)
    traffic.stop()
    raml.stop()

    health = raml.health()
    narrate(f"done: {served['ok']} frames ok, {served['failed']} failed")
    narrate(f"meta-level: {health['reconfigurations']} intercession(s), "
            f"{len(raml.hub.events)} events observed, "
            f"healthy={health['healthy']}")
    print()
    print(telemetry.render_summary(tracer, top=5, wall=False))
    print("\nNext: examples/quickstart.py, examples/figure1_raml.py, "
          "and `pytest benchmarks/ --benchmark-only -s`.")
    return 0 if health["healthy"] else 1


if __name__ == "__main__":
    raise SystemExit(main())

"""Durra-style reconfiguration baseline.

Durra reconfigures "for error recovery purposes, where the reconfiguration
is based on event-triggering mechanism": the application ships with a set
of pre-planned alternative configurations, and a matching event switches
to one of them.  The contrasts with RAML:

* reaction is **event-triggered only** — no periodic observation, so a
  degradation that never raises the configured event is never handled;
* the switch is a pre-compiled plan — no state transfer (error recovery
  assumes the failed component's state is lost);
* there is no arbitration — every trigger causes a full plan execution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReconfigurationError
from repro.kernel.assembly import Assembly
from repro.reconfig.changes import Change
from repro.reconfig.consistency import check_assembly


@dataclass
class DurraConfiguration:
    """One pre-planned alternative configuration."""

    name: str
    plan: Callable[[Assembly], list[Change]]


@dataclass
class DurraSwitch:
    """Record of one executed configuration switch."""

    time: float
    event: str
    configuration: str
    changes: list[str] = field(default_factory=list)


class DurraManager:
    """Event-triggered switching between pre-planned configurations."""

    def __init__(self, assembly: Assembly) -> None:
        self.assembly = assembly
        self.configurations: dict[str, DurraConfiguration] = {}
        self.triggers: dict[str, str] = {}  # event name -> configuration
        self.switches: list[DurraSwitch] = []

    def define_configuration(self, name: str,
                             plan: Callable[[Assembly], list[Change]]) -> None:
        if name in self.configurations:
            raise ReconfigurationError(
                f"durra configuration {name!r} already defined"
            )
        self.configurations[name] = DurraConfiguration(name, plan)

    def on_event(self, event: str, configuration: str) -> None:
        """Arm a trigger: when ``event`` fires, switch to ``configuration``."""
        if configuration not in self.configurations:
            raise ReconfigurationError(
                f"unknown durra configuration {configuration!r}"
            )
        self.triggers[event] = configuration

    def raise_event(self, event: str) -> DurraSwitch | None:
        """Deliver an event; executes the armed plan, if any."""
        configuration_name = self.triggers.get(event)
        if configuration_name is None:
            return None  # unplanned events are ignored — Durra's blind spot
        configuration = self.configurations[configuration_name]
        changes = configuration.plan(self.assembly)
        switch = DurraSwitch(self.assembly.sim.now, event, configuration_name)
        for change in changes:
            change.validate(self.assembly)
            change.apply(self.assembly)
            switch.changes.append(change.description)
        consistency = check_assembly(self.assembly)
        if not consistency:
            raise ReconfigurationError(
                f"durra switch to {configuration_name!r} produced "
                "inconsistencies: " + "; ".join(consistency.violations)
            )
        self.switches.append(switch)
        return switch

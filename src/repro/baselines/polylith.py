"""Polylith-style reconfiguration baseline.

Polylith [Port94] reconfigures by "waiting to reach a reconfiguration
point; and blocking communication channels (to manage the messages in
transit) while the module context is encoded and a new module is
created".  The crucial contrast with the connector/RAML approach is
*scope*: Polylith's software bus freezes **every** channel of the
application during the change, not just the affected region — so the
whole application pays for each swap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import ReconfigurationError
from repro.kernel.assembly import Assembly
from repro.kernel.component import Component
from repro.reconfig.changes import Change, ReplaceComponent
from repro.reconfig.consistency import check_assembly
from repro.reconfig.quiescence import QuiescenceRegion


@dataclass
class PolylithReport:
    """Outcome of one Polylith-style change."""

    started_at: float = 0.0
    finished_at: float = 0.0
    blocked_channels: int = 0
    buffered_calls: int = 0

    @property
    def blocked_duration(self) -> float:
        return self.finished_at - self.started_at


class PolylithReconfigurator:
    """Applies changes with Polylith's global-freeze discipline."""

    def __init__(self, assembly: Assembly) -> None:
        self.assembly = assembly
        self.reports: list[PolylithReport] = []

    def _global_region(self) -> QuiescenceRegion:
        components = [c for c in self.assembly.registry
                      if not c.lifecycle.is_stopped]
        return QuiescenceRegion(components, list(self.assembly.bindings))

    def window_cost(self, changes: list[Change]) -> float:
        """Module context encoding + creation time (same model as the
        transactional engine, for a fair comparison)."""
        return sum(change.cost() for change in changes)

    def apply_async(self, changes: list[Change],
                    on_done: Callable[[PolylithReport], None] | None = None,
                    poll_interval: float = 0.001,
                    timeout: float = 10.0) -> None:
        """Freeze the whole bus, wait for a global reconfiguration point,
        apply, hold the window, thaw."""
        sim = self.assembly.sim
        report = PolylithReport(started_at=sim.now)
        region = self._global_region()
        report.blocked_channels = len(region.bindings)
        region.block(now=sim.now)
        deadline = sim.now + timeout

        def poll() -> None:
            if region.is_drained():
                region.passivate(now=sim.now)
                for change in changes:
                    change.validate(self.assembly)
                    change.apply(self.assembly)
                consistency = check_assembly(self.assembly)
                if not consistency:
                    raise ReconfigurationError(
                        "polylith reconfiguration produced inconsistencies: "
                        + "; ".join(consistency.violations)
                    )
                for change in changes:
                    if isinstance(change, ReplaceComponent):
                        change.commit(self.assembly)

                def finish() -> None:
                    report.buffered_calls = sum(
                        binding.pending_count for binding in region.bindings
                    )
                    region.release(now=sim.now)
                    report.finished_at = sim.now
                    self.reports.append(report)
                    if on_done is not None:
                        on_done(report)

                sim.schedule(finish, delay=self.window_cost(changes))
                return
            if sim.now >= deadline:
                region.release(now=sim.now)
                raise ReconfigurationError(
                    "polylith: global reconfiguration point not reached"
                )
            sim.schedule(poll, delay=poll_interval)

        sim.call_soon(poll)

    def replace_module(self, old_name: str, new_component: Component,
                       on_done: Callable[[PolylithReport], None] | None = None
                       ) -> None:
        """The canonical Polylith operation: swap one module."""
        self.apply_async(
            [ReplaceComponent(old_name, new_component)], on_done=on_done
        )

"""Baseline reconfiguration approaches (S20).

Reimplementations of the two research lines the paper surveys —
Polylith's global-freeze module bus and Durra's event-triggered
pre-planned configurations — for head-to-head comparison with the
connector/RAML approach.
"""

from repro.baselines.durra import DurraConfiguration, DurraManager, DurraSwitch
from repro.baselines.polylith import PolylithReconfigurator, PolylithReport

__all__ = [
    "DurraConfiguration",
    "DurraManager",
    "DurraSwitch",
    "PolylithReconfigurator",
    "PolylithReport",
]

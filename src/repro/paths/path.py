"""Composition paths.

"Composition paths are used to select the elementary services that are
incorporated within the families of services … according to a predefined
path (extraction, coding and transferring infrastructure for video
service)" [Hong01].  A :class:`PathFamily` declares the stages of a
service and the alternative elementary services available per stage; the
:class:`PathPlanner` selects the best feasible path for the current
execution context.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Mapping

import networkx as nx

from repro.errors import PathError


@dataclass(frozen=True)
class ServiceOption:
    """One elementary service usable at one stage.

    Attributes:
        name: unique option name.
        stage: the stage this option implements.
        fn: the service body, ``fn(value) -> value``.
        input_format / output_format: adjacent options must agree on the
            data format flowing between them ("*" matches anything).
        latency: processing cost (adds to the path cost).
        quality: user-perceived quality (higher is better).
        bandwidth_required: minimum link bandwidth this option needs.
    """

    name: str
    stage: str
    fn: Callable[[Any], Any]
    input_format: str = "*"
    output_format: str = "*"
    latency: float = 1.0
    quality: float = 1.0
    bandwidth_required: float = 0.0

    def feasible(self, context: Mapping[str, float]) -> bool:
        available = context.get("bandwidth", float("inf"))
        return self.bandwidth_required <= available

    def compatible_after(self, previous: "ServiceOption") -> bool:
        return (
            previous.output_format == "*"
            or self.input_format == "*"
            or previous.output_format == self.input_format
        )


@dataclass
class CompositionPath:
    """A selected chain of service options — one per stage."""

    options: list[ServiceOption]

    @property
    def names(self) -> list[str]:
        return [option.name for option in self.options]

    @property
    def total_latency(self) -> float:
        return sum(option.latency for option in self.options)

    @property
    def total_quality(self) -> float:
        if not self.options:
            return 0.0
        return min(option.quality for option in self.options)

    def execute(self, value: Any) -> Any:
        """Run the value through every stage in order."""
        for option in self.options:
            value = option.fn(value)
        return value


class PathFamily:
    """The service family: ordered stages and their alternatives."""

    def __init__(self, name: str, stages: list[str]) -> None:
        if not stages:
            raise PathError(f"path family {name!r} needs at least one stage")
        if len(set(stages)) != len(stages):
            raise PathError(f"path family {name!r} has duplicate stages")
        self.name = name
        self.stages = list(stages)
        self._options: dict[str, list[ServiceOption]] = {s: [] for s in stages}

    def add_option(self, option: ServiceOption) -> "PathFamily":
        if option.stage not in self._options:
            raise PathError(
                f"option {option.name!r} targets unknown stage "
                f"{option.stage!r} of family {self.name!r}"
            )
        if any(o.name == option.name for opts in self._options.values()
               for o in opts):
            raise PathError(f"duplicate option name {option.name!r}")
        self._options[option.stage].append(option)
        return self

    def options_for(self, stage: str) -> list[ServiceOption]:
        try:
            return list(self._options[stage])
        except KeyError:
            raise PathError(
                f"family {self.name!r} has no stage {stage!r}"
            ) from None

    def all_paths(self, context: Mapping[str, float] | None = None
                  ) -> list[CompositionPath]:
        """Enumerate every feasible, format-compatible path (exponential;
        for tests and small families)."""
        context = context or {}
        partials: list[list[ServiceOption]] = [[]]
        for stage in self.stages:
            extended: list[list[ServiceOption]] = []
            for partial in partials:
                for option in self._options[stage]:
                    if not option.feasible(context):
                        continue
                    if partial and not option.compatible_after(partial[-1]):
                        continue
                    extended.append(partial + [option])
            partials = extended
        return [CompositionPath(p) for p in partials]


class PathPlanner:
    """Selects the best feasible path via shortest-path search.

    Cost per option: ``latency - quality_weight * quality``; the planner
    builds a stage-layered DAG (edges only between format-compatible
    options) and runs Dijkstra — polynomial, unlike naive enumeration.
    """

    def __init__(self, family: PathFamily, quality_weight: float = 0.0) -> None:
        self.family = family
        self.quality_weight = quality_weight
        self.plan_count = 0

    def _option_cost(self, option: ServiceOption) -> float:
        return option.latency - self.quality_weight * option.quality

    def plan(self, context: Mapping[str, float] | None = None) -> CompositionPath:
        """Return the minimum-cost feasible path for ``context``.

        Raises :class:`PathError` when no stage-complete path exists.
        """
        context = context or {}
        self.plan_count += 1
        graph = nx.DiGraph()
        graph.add_node("source")
        graph.add_node("sink")
        # Cost shift keeps edge weights non-negative for Dijkstra.
        shift = max(
            (abs(self._option_cost(o))
             for stage in self.family.stages
             for o in self.family.options_for(stage)),
            default=0.0,
        )
        previous_layer: list[ServiceOption | None] = [None]
        for stage in self.family.stages:
            layer = [
                option
                for option in self.family.options_for(stage)
                if option.feasible(context)
            ]
            if not layer:
                raise PathError(
                    f"no feasible option for stage {stage!r} of family "
                    f"{self.family.name!r} under context {dict(context)}"
                )
            for option in layer:
                graph.add_node(option.name, option=option)
                for prev in previous_layer:
                    if prev is None:
                        graph.add_edge("source", option.name,
                                       weight=self._option_cost(option) + shift)
                    elif option.compatible_after(prev):
                        graph.add_edge(prev.name, option.name,
                                       weight=self._option_cost(option) + shift)
            previous_layer = layer
        for prev in previous_layer:
            if prev is not None:
                graph.add_edge(prev.name, "sink", weight=0.0)
        try:
            node_path = nx.shortest_path(graph, "source", "sink", weight="weight")
        except nx.NetworkXNoPath:
            raise PathError(
                f"stage options of family {self.family.name!r} are "
                f"format-incompatible under context {dict(context)}"
            ) from None
        options = [graph.nodes[n]["option"] for n in node_path[1:-1]]
        return CompositionPath(options)

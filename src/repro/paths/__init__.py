"""Composition paths (S12): staged service families with context-driven
path planning, after Hong & Landay's automatic path creation."""

from repro.paths.path import (
    CompositionPath,
    PathFamily,
    PathPlanner,
    ServiceOption,
)

__all__ = ["CompositionPath", "PathFamily", "PathPlanner", "ServiceOption"]

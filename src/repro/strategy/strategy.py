"""Strategy infrastructure.

"The Strategy pattern is commonly used to implement dynamically changing
algorithms … This pattern separates alternative algorithms that are to be
changed from the adaptation mechanism that implements the change.
Introspection mechanisms may capture state changes and set up the
expected adaptation."

:class:`StrategySlot` holds the interchangeable algorithms and the
currently selected one; :class:`StrategySelector` is the adaptation
mechanism: guard rules over an observed context choose the strategy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import StrategyError


@dataclass(frozen=True)
class Strategy:
    """One interchangeable algorithm with descriptive metadata.

    ``traits`` (e.g. quality, cpu_cost, bandwidth) let selectors reason
    about candidates without executing them.
    """

    name: str
    fn: Callable[..., Any]
    traits: Mapping[str, float] = field(default_factory=dict)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.fn(*args, **kwargs)


class StrategySlot:
    """An atomically swappable algorithm holder.

    The slot itself is callable, so it can serve directly as a component
    implementation method.
    """

    def __init__(self, name: str, strategies: list[Strategy] | None = None,
                 initial: str | None = None) -> None:
        self.name = name
        self._strategies: dict[str, Strategy] = {}
        for strategy in strategies or []:
            self.register(strategy)
        self._current: str | None = None
        #: (strategy_name, reason) switch log for introspection.
        self.history: list[tuple[str, str]] = []
        if initial is not None:
            self.use(initial, reason="initial")
        elif self._strategies:
            self.use(next(iter(self._strategies)), reason="initial")

    def register(self, strategy: Strategy) -> None:
        if strategy.name in self._strategies:
            raise StrategyError(
                f"slot {self.name!r} already has strategy {strategy.name!r}"
            )
        self._strategies[strategy.name] = strategy

    def unregister(self, name: str) -> None:
        if name == self._current:
            raise StrategyError(
                f"cannot unregister active strategy {name!r} of slot "
                f"{self.name!r}"
            )
        if self._strategies.pop(name, None) is None:
            raise StrategyError(f"slot {self.name!r} has no strategy {name!r}")

    def names(self) -> list[str]:
        return sorted(self._strategies)

    @property
    def current(self) -> Strategy:
        if self._current is None:
            raise StrategyError(f"slot {self.name!r} has no active strategy")
        return self._strategies[self._current]

    @property
    def current_name(self) -> str | None:
        return self._current

    def use(self, name: str, reason: str = "") -> None:
        """Switch the active strategy (atomic)."""
        if name not in self._strategies:
            raise StrategyError(
                f"slot {self.name!r} has no strategy {name!r}; choices: "
                f"{', '.join(self.names())}"
            )
        self._current = name
        self.history.append((name, reason))

    @property
    def switch_count(self) -> int:
        """Number of actual switches (excluding the initial selection)."""
        return max(0, len(self.history) - 1)

    def __call__(self, *args: Any, **kwargs: Any) -> Any:
        return self.current(*args, **kwargs)


@dataclass
class SelectionRule:
    """Guarded choice: when ``condition(context)`` holds, use ``strategy``."""

    condition: Callable[[Mapping[str, float]], bool]
    strategy: str
    priority: int = 0
    label: str = ""


class StrategySelector:
    """Rule-driven strategy selection over an observed context.

    Rules are evaluated by descending priority; the first whose condition
    holds wins.  ``default`` applies when no rule fires.
    """

    def __init__(self, slot: StrategySlot, default: str | None = None) -> None:
        self.slot = slot
        self.default = default
        self.rules: list[SelectionRule] = []

    def add_rule(self, condition: Callable[[Mapping[str, float]], bool],
                 strategy: str, priority: int = 0, label: str = "") -> None:
        if strategy not in self.slot.names():
            raise StrategyError(
                f"selector rule targets unknown strategy {strategy!r}"
            )
        self.rules.append(SelectionRule(condition, strategy, priority, label))
        self.rules.sort(key=lambda rule: -rule.priority)

    def select(self, context: Mapping[str, float]) -> str | None:
        """Pick and activate a strategy for ``context``.

        Returns the new strategy name when a switch happened, else None.
        """
        chosen = self.default
        reason = "default"
        for rule in self.rules:
            if rule.condition(context):
                chosen = rule.strategy
                reason = rule.label or f"rule->{rule.strategy}"
                break
        if chosen is None or chosen == self.slot.current_name:
            return None
        self.slot.use(chosen, reason=reason)
        return chosen

"""Strategy infrastructure (S11): runtime-swappable algorithms with
introspection-driven selection."""

from repro.strategy.strategy import (
    SelectionRule,
    Strategy,
    StrategySelector,
    StrategySlot,
)

__all__ = ["SelectionRule", "Strategy", "StrategySelector", "StrategySlot"]

"""Composition frameworks: pluggable component slots.

The first of the paper's ten adaptation approaches: "Composition
Frameworks, with pluggable components is similar to electronic cards in
a cabinet, where each slot is reserved to a component of a predefined
family with compliant specifications … allows interchanging components
and aspects dynamically" [Cons01].

A :class:`CompositionFramework` declares typed :class:`Slot`s (interface
+ optional behaviour protocol = the "predefined family").  Components
plug in, unplug and hot-swap; *aspect slots* hold interceptors that cut
across every plugged card.  Other components reach a slot's current
occupant through the slot's stable :class:`Invocable` façade, so
interchanging a card never re-wires the callers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.errors import ReproError
from repro.kernel.component import (
    Interceptor,
    Invocable,
    Invocation,
    ProvidedPort,
)
from repro.kernel.interface import Interface
from repro.lts.lts import Lts


class FrameworkError(ReproError):
    """Errors raised by composition frameworks."""


@dataclass(frozen=True)
class SlotSpec:
    """The predefined family a slot accepts."""

    name: str
    interface: Interface
    protocol: Lts | None = None
    required: bool = True


class SlotFacade:
    """The stable invocable face of a slot (callers bind here)."""

    def __init__(self, slot: "Slot") -> None:
        self._slot = slot
        self.interface = slot.spec.interface

    @property
    def qualified_name(self) -> str:
        return f"{self._slot.framework_name}[{self._slot.spec.name}]"

    def invoke(self, invocation: Invocation) -> Any:
        return self._slot.invoke(invocation)


class Slot:
    """One cabinet position."""

    def __init__(self, framework: "CompositionFramework",
                 spec: SlotSpec) -> None:
        self._framework = framework
        self.spec = spec
        self.occupant: ProvidedPort | None = None
        self.facade = SlotFacade(self)
        self.swap_count = 0

    @property
    def framework_name(self) -> str:
        return self._framework.name

    @property
    def is_filled(self) -> bool:
        return self.occupant is not None

    def _check_compliance(self, port: ProvidedPort) -> None:
        if not port.interface.satisfies(self.spec.interface):
            raise FrameworkError(
                f"slot {self.spec.name!r} accepts family "
                f"{self.spec.interface.name!r} "
                f"v{self.spec.interface.version}; "
                f"{port.qualified_name} provides "
                f"{port.interface.name!r} v{port.interface.version}"
            )
        behaviour = getattr(port.component, "behaviour", None)
        if self.spec.protocol is not None and behaviour is not None:
            from repro.lts.check import simulates

            if not simulates(self.spec.protocol, behaviour):
                raise FrameworkError(
                    f"slot {self.spec.name!r}: behaviour of "
                    f"{port.component.name!r} violates the family protocol"
                )

    def plug(self, port: ProvidedPort) -> None:
        if self.occupant is not None:
            raise FrameworkError(
                f"slot {self.spec.name!r} is occupied by "
                f"{self.occupant.qualified_name}; swap() instead"
            )
        self._check_compliance(port)
        self.occupant = port

    def unplug(self) -> ProvidedPort:
        if self.occupant is None:
            raise FrameworkError(f"slot {self.spec.name!r} is empty")
        card, self.occupant = self.occupant, None
        return card

    def swap(self, port: ProvidedPort) -> ProvidedPort:
        """Atomically interchange the card (validated before removal)."""
        if self.occupant is None:
            raise FrameworkError(
                f"slot {self.spec.name!r} is empty; plug() first"
            )
        self._check_compliance(port)
        old, self.occupant = self.occupant, port
        self.swap_count += 1
        return old

    def invoke(self, invocation: Invocation) -> Any:
        if self.occupant is None:
            raise FrameworkError(
                f"slot {self.spec.name!r} of {self.framework_name!r} is "
                "empty"
            )
        return self._framework._invoke_through_aspects(
            self.spec.name, self.occupant, invocation
        )


class CompositionFramework:
    """A cabinet of typed slots with crosscutting aspect slots."""

    def __init__(self, name: str, slots: list[SlotSpec]) -> None:
        if not slots:
            raise FrameworkError(f"framework {name!r} needs at least one slot")
        names = [spec.name for spec in slots]
        if len(set(names)) != len(names):
            raise FrameworkError(f"framework {name!r} has duplicate slots")
        self.name = name
        self.slots: dict[str, Slot] = {
            spec.name: Slot(self, spec) for spec in slots
        }
        #: Aspect slots: name -> interceptor applied to every card call.
        self._aspects: dict[str, Interceptor] = {}

    # -- slots ----------------------------------------------------------------

    def slot(self, name: str) -> Slot:
        try:
            return self.slots[name]
        except KeyError:
            raise FrameworkError(
                f"framework {self.name!r} has no slot {name!r}"
            ) from None

    def facade(self, slot_name: str) -> SlotFacade:
        """The stable invocable callers bind to."""
        return self.slot(slot_name).facade

    def plug(self, slot_name: str, port: ProvidedPort) -> None:
        self.slot(slot_name).plug(port)

    def swap(self, slot_name: str, port: ProvidedPort) -> ProvidedPort:
        return self.slot(slot_name).swap(port)

    def unplug(self, slot_name: str) -> ProvidedPort:
        return self.slot(slot_name).unplug()

    def is_complete(self) -> bool:
        return all(
            slot.is_filled or not slot.spec.required
            for slot in self.slots.values()
        )

    # -- aspect slots --------------------------------------------------------------

    def install_aspect(self, name: str, interceptor: Interceptor) -> None:
        """Plug a crosscutting aspect (applies to every slot's calls)."""
        if name in self._aspects:
            raise FrameworkError(
                f"framework {self.name!r} already has aspect {name!r}"
            )
        self._aspects[name] = interceptor

    def remove_aspect(self, name: str) -> None:
        if self._aspects.pop(name, None) is None:
            raise FrameworkError(
                f"framework {self.name!r} has no aspect {name!r}"
            )

    def aspect_names(self) -> list[str]:
        return sorted(self._aspects)

    def _invoke_through_aspects(self, slot_name: str, port: ProvidedPort,
                                invocation: Invocation) -> Any:
        invocation.meta.setdefault("framework", self.name)
        invocation.meta["slot"] = slot_name
        chain = list(self._aspects.values())

        def proceed(inv: Invocation, _position: int = 0) -> Any:
            if _position < len(chain):
                return chain[_position](
                    inv, lambda inner: proceed(inner, _position + 1)
                )
            return port.invoke(inv)

        return proceed(invocation)

    # -- introspection ----------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "complete": self.is_complete(),
            "slots": {
                name: {
                    "family": slot.spec.interface.name,
                    "version": str(slot.spec.interface.version),
                    "occupant": (slot.occupant.qualified_name
                                 if slot.occupant else None),
                    "swaps": slot.swap_count,
                }
                for name, slot in self.slots.items()
            },
            "aspects": self.aspect_names(),
        }

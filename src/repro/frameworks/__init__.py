"""Composition frameworks (the first of the paper's ten approaches).

Typed pluggable slots — "electronic cards in a cabinet" — with dynamic
card interchange and crosscutting aspect slots.
"""

from repro.frameworks.framework import (
    CompositionFramework,
    FrameworkError,
    Slot,
    SlotFacade,
    SlotSpec,
)

__all__ = [
    "CompositionFramework",
    "FrameworkError",
    "Slot",
    "SlotFacade",
    "SlotSpec",
]

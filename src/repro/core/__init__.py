"""The paper's primary contribution (S18): RAML.

The Reconfiguration and Adaptation Meta-Level — introspection streams,
behavioural constraints (structural, metric, LTS-conformance),
intercession over components/connections/connectors, and the periodic
observe → check → decide → act sweep with adaptation-first escalation to
reconfiguration.
"""

from repro.core.constraints import (
    Constraint,
    all_nodes_up,
    behavioural_conformance,
    custom,
    max_error_ratio,
    metric_bound,
    node_load_below,
    structural_consistency,
)
from repro.core.intercession import Intercessor
from repro.core.introspection import (
    IntrospectionHub,
    ObservationEvent,
    TraceConformance,
)
from repro.core.raml import Raml, Response, SweepRecord
from repro.core.verifier import (
    VerificationReport,
    composition_correctness,
    verify_assembly,
)

__all__ = [
    "Constraint",
    "Intercessor",
    "IntrospectionHub",
    "ObservationEvent",
    "Raml",
    "Response",
    "SweepRecord",
    "TraceConformance",
    "VerificationReport",
    "all_nodes_up",
    "behavioural_conformance",
    "composition_correctness",
    "custom",
    "max_error_ratio",
    "metric_bound",
    "node_load_below",
    "structural_consistency",
    "verify_assembly",
]

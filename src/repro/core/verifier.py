"""Whole-assembly composition-correctness verification.

The vision's analytical leg: "Each participating component can be
represented by a label transition system (LTS) model … Composition
correctness analysis may then be based on information provided by RAML
using reflection."  The verifier walks a live assembly through
reflection and checks, per connector:

1. **role conformance** — every attached component whose ``behaviour``
   LTS is declared must stay within its role's protocol (weak
   simulation);
2. **glue compatibility** — the connector kind's glue composed with its
   role protocols must be deadlock-free (Wright-style), instantiated at
   the *current* fan-out (e.g. a broadcast glue re-checked for the
   actual number of subscribers);

plus, per direct binding, interface satisfaction (shared with the
consistency checker).  The result aggregates into a RAML constraint so
composition correctness is re-established after every reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.kernel.assembly import Assembly
from repro.lts.check import DeadlockReport, find_deadlocks, simulates
from repro.lts.compose import compose
from repro.lts.lts import Lts
from repro.connectors.connector import Connector
from repro.connectors.protocols import (
    broadcast_glue,
    pipeline_glue,
    pipeline_stage_protocol,
    rpc_client_protocol,
    rpc_glue,
    rpc_server_protocol,
    subscriber_protocol,
)
from repro.core.constraints import Constraint


@dataclass
class VerificationReport:
    """Outcome of one assembly verification sweep."""

    problems: list[str] = field(default_factory=list)
    connectors_checked: int = 0
    attachments_checked: int = 0
    glue_reports: dict[str, DeadlockReport] = field(default_factory=dict)

    @property
    def correct(self) -> bool:
        return not self.problems

    def __bool__(self) -> bool:
        return self.correct


#: Builds (glue, role_protocols) for a connector at its current fan-out,
#: or None when the kind has no behavioural model.
GlueModel = Callable[[Connector], tuple[Lts, list[Lts]] | None]


def _default_glue_model(connector: Connector) -> tuple[Lts, list[Lts]] | None:
    kind = connector.kind
    if kind == "rpc":
        return rpc_glue(), [rpc_client_protocol(), rpc_server_protocol()]
    if kind == "pipeline":
        stages = len(connector.attachments.get("stage", []))
        if stages == 0:
            return None
        return (pipeline_glue(stages),
                [pipeline_stage_protocol(i) for i in range(stages)])
    if kind == "broadcast":
        subscribers = len(connector.attachments.get("subscriber", []))
        if subscribers == 0:
            return None
        return (broadcast_glue(subscribers),
                [subscriber_protocol(i) for i in range(subscribers)])
    return None


def verify_assembly(assembly: Assembly,
                    glue_model: GlueModel = _default_glue_model
                    ) -> VerificationReport:
    """Run composition-correctness analysis over a live assembly."""
    report = VerificationReport()

    for connector in assembly.connectors.values():
        report.connectors_checked += 1

        # 1. Role conformance of every attached behavioural model.
        for role_name, attachments in connector.attachments.items():
            role = connector.roles[role_name]
            for attachment in attachments:
                owner = getattr(attachment.target, "component", None)
                behaviour = getattr(owner, "behaviour", None)
                if role.protocol is None or behaviour is None:
                    continue
                report.attachments_checked += 1
                if not simulates(role.protocol, behaviour):
                    report.problems.append(
                        f"connector {connector.name!r}: behaviour of "
                        f"{owner.name!r} exceeds role {role_name!r} protocol"
                    )

        # 2. Glue compatibility at the current fan-out.
        model = glue_model(connector)
        if model is not None:
            glue, roles = model
            deadlocks = find_deadlocks(
                compose([glue, *roles], name=f"verify({connector.name})")
            )
            report.glue_reports[connector.name] = deadlocks
            if not deadlocks.deadlock_free:
                trace = " -> ".join(deadlocks.witness_trace) or "<initial>"
                report.problems.append(
                    f"connector {connector.name!r}: glue/role composition "
                    f"can deadlock after {trace}"
                )

    # 3. Direct-binding interface satisfaction (structural leg).
    for binding in assembly.bindings:
        target = binding.target
        owner = getattr(target, "component", None)
        if owner is None:
            continue  # connector endpoints were handled above
        if not target.interface.satisfies(binding.source.interface):
            adapters = getattr(target, "adapters", [])
            mediated = any(
                adapter.old.satisfies(binding.source.interface)
                for adapter in adapters
            )
            if not mediated:
                report.problems.append(
                    f"binding {binding.describe()}: interface no longer "
                    "satisfied"
                )

    return report


def composition_correctness(
    glue_model: GlueModel = _default_glue_model,
) -> Constraint:
    """A RAML constraint re-running the verifier every sweep."""

    def check(view) -> list[str]:
        return verify_assembly(view.assembly, glue_model).problems

    return Constraint("composition-correctness", check)

"""Intercession: the action side of RAML.

"These actions consist of interchanging the components or modifying the
connections between the components of the targeted application."  The
:class:`Intercessor` is a façade over the reconfiguration engine and the
lightweight mechanisms, giving RAML responses one vocabulary for both.
"""

from __future__ import annotations

from typing import Any

from repro.errors import RamlError
from repro.kernel.assembly import Assembly
from repro.kernel.component import Component
from repro.kernel.descriptor import DeploymentDescriptor
from repro.reconfig.changes import (
    AddComponent,
    ReplaceComponent,
    ReplaceImplementation,
    RewireBinding,
    SwapConnector,
)
from repro.reconfig.migration import MigrateComponent
from repro.reconfig.state_transfer import StateTranslator
from repro.reconfig.transaction import (
    ReconfigurationTransaction,
    TransactionReport,
)


class Intercessor:
    """Uniform act API for RAML responses."""

    def __init__(self, assembly: Assembly) -> None:
        self.assembly = assembly
        self.transactions: list[TransactionReport] = []

    def _audit(self, action: str, mechanism: str, **fields: Any) -> None:
        tracer = self.assembly.sim.tracer
        if tracer is not None:
            tracer.record_audit("raml.intercession", action=action,
                                mechanism=mechanism, **fields)

    # -- heavyweight (reconfiguration) ----------------------------------------

    def _run(self, name: str, *changes: Any) -> TransactionReport:
        txn = ReconfigurationTransaction(self.assembly, name=name)
        for change in changes:
            txn.add(change)
        try:
            report = txn.execute()
        except Exception:
            self._audit(name, "reconfiguration",
                        outcome=txn.report.state.value,
                        error=txn.report.error)
            raise
        self.transactions.append(report)
        self._audit(name, "reconfiguration", outcome=report.state.value,
                    changes=list(report.applied_changes))
        return report

    def replace_component(self, old_name: str, new_component: Component,
                          translator: StateTranslator | None = None
                          ) -> TransactionReport:
        """Strong hot-swap, state carried over."""
        return self._run(
            f"replace:{old_name}",
            ReplaceComponent(old_name, new_component, translator=translator),
        )

    def add_component(self, component: Component, node_name: str,
                      descriptor: DeploymentDescriptor | None = None
                      ) -> TransactionReport:
        return self._run(
            f"add:{component.name}",
            AddComponent(component, node_name, descriptor),
        )

    def rewire(self, source_component: str, required_port: str,
               target_component: str, target_port: str = "svc"
               ) -> TransactionReport:
        return self._run(
            f"rewire:{source_component}.{required_port}",
            RewireBinding(source_component, required_port,
                          target_component=target_component,
                          target_port=target_port),
        )

    def migrate(self, component_name: str, target_node: str
                ) -> TransactionReport:
        return self._run(
            f"migrate:{component_name}",
            MigrateComponent(component_name, target_node),
        )

    def swap_connector(self, old_name: str, new_connector: Any
                       ) -> TransactionReport:
        return self._run(
            f"swap-connector:{old_name}",
            SwapConnector(old_name, new_connector),
        )

    def replace_implementation(self, component_name: str, port_name: str,
                               implementation: Any) -> TransactionReport:
        return self._run(
            f"reimplement:{component_name}.{port_name}",
            ReplaceImplementation(component_name, port_name, implementation),
        )

    # -- lightweight (no quiescence) ----------------------------------------------

    def attach_interceptor(self, component_name: str, port_name: str,
                           interceptor: Any) -> None:
        port = self.assembly.component(component_name).provided_port(port_name)
        port.add_interceptor(interceptor)
        self._audit(f"attach-interceptor:{component_name}.{port_name}",
                    "adaptation", outcome="applied")

    def remove_interceptor(self, component_name: str, port_name: str,
                           interceptor: Any) -> None:
        port = self.assembly.component(component_name).provided_port(port_name)
        port.remove_interceptor(interceptor)
        self._audit(f"remove-interceptor:{component_name}.{port_name}",
                    "adaptation", outcome="applied")

    def swap_connector_attachment(self, connector_name: str, role: str,
                                  old_target: Any, new_target: Any) -> None:
        try:
            connector = self.assembly.connectors[connector_name]
        except KeyError:
            raise RamlError(f"no connector named {connector_name!r}") from None
        connector.replace_attachment(role, old_target, new_target)
        self._audit(f"swap-attachment:{connector_name}.{role}", "adaptation",
                    outcome="applied",
                    old=getattr(old_target, "qualified_name", repr(old_target)),
                    new=getattr(new_target, "qualified_name", repr(new_target)))

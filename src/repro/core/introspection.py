"""Introspection: the observation side of RAML.

The figure in the paper shows "RAML streams" carrying introspection data
from serving components and connectors up to the meta-level.  The
:class:`IntrospectionHub` is that stream: it taps ports, connectors,
bindings, the registry and the network, normalises everything into
:class:`ObservationEvent` records, and fans them out to subscribers
(metric recorders, trace checkers, loggers).
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Any, Callable

from repro.events import Simulator
from repro.kernel.binding import Binding
from repro.kernel.component import Component, Invocation, ProvidedPort
from repro.kernel.registry import Registry
from repro.netsim.network import Network


@dataclass(frozen=True)
class ObservationEvent:
    """One normalised introspection record."""

    time: float
    source: str       # e.g. "port:server.svc", "connector:rpc", "network"
    kind: str         # e.g. "call", "error", "register", "drop:loss"
    operation: str = ""
    details: tuple = ()


class IntrospectionHub:
    """Collects and fans out observation events."""

    def __init__(self, sim: Simulator, buffer_size: int = 10_000) -> None:
        self.sim = sim
        self.events: deque[ObservationEvent] = deque(maxlen=buffer_size)
        self.counts: Counter[str] = Counter()
        self.subscribers: list[Callable[[ObservationEvent], None]] = []
        self._tapped: set[int] = set()

    def emit(self, source: str, kind: str, operation: str = "",
             details: tuple = ()) -> None:
        event = ObservationEvent(self.sim.now, source, kind, operation, details)
        self.events.append(event)
        self.counts[kind] += 1
        for subscriber in list(self.subscribers):
            subscriber(event)

    def subscribe(self, subscriber: Callable[[ObservationEvent], None]) -> None:
        self.subscribers.append(subscriber)

    # -- taps -----------------------------------------------------------------

    def tap_port(self, port: ProvidedPort) -> None:
        """Observe every call phase on a provided port."""
        if id(port) in self._tapped:
            return
        self._tapped.add(id(port))
        source = f"port:{port.qualified_name}"

        def observer(phase: str, invocation: Invocation, payload: Any) -> None:
            kind = {"before": "call", "after": "return", "error": "error"}[phase]
            self.emit(source, kind, invocation.operation)

        port.observers.append(observer)

    def tap_component(self, component: Component) -> None:
        for port in component.provided.values():
            self.tap_port(port)
        component.lifecycle.observers.append(
            lambda old, new: self.emit(
                f"component:{component.name}", "lifecycle", str(new)
            )
        )

    def tap_connector(self, connector: Any) -> None:
        if id(connector) in self._tapped:
            return
        self._tapped.add(id(connector))
        source = f"connector:{connector.name}"

        def observer(phase: str, role: str, invocation: Invocation,
                     payload: Any) -> None:
            kind = {"before": "call", "after": "return", "error": "error"}[phase]
            self.emit(source, kind, invocation.operation, details=(role,))

        connector.observers.append(observer)

    def tap_binding(self, binding: Binding) -> None:
        if id(binding) in self._tapped:
            return
        self._tapped.add(id(binding))
        source = f"binding:{binding.describe()}"

        def tap(invocation: Invocation, payload: Any, ok: bool) -> None:
            self.emit(source, "call" if ok else "error", invocation.operation)

        binding.taps.append(tap)

    def tap_registry(self, registry: Registry) -> None:
        registry.observers.append(
            lambda event, component: self.emit(
                "registry", event, component.name
            )
        )

    def tap_network(self, network: Network) -> None:
        network.taps.append(
            lambda event, message: self.emit(
                "network", event, message.endpoint,
                details=(message.source, message.destination),
            )
        )

    # -- queries -----------------------------------------------------------------

    def _audit_query(self, query: str, **fields: Any) -> None:
        """Every introspection query is a meta-level decision input —
        record it in the decision audit when telemetry is on."""
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.record_audit("raml.introspect", query=query, **fields)

    def recent(self, count: int = 100) -> list[ObservationEvent]:
        self._audit_query("recent", count=count,
                          returned=min(count, len(self.events)))
        return list(self.events)[-count:]

    def count(self, kind: str) -> int:
        result = self.counts.get(kind, 0)
        self._audit_query("count", kind=kind, result=result)
        return result

    def error_ratio(self) -> float:
        calls = self.counts.get("call", 0)
        errors = self.counts.get("error", 0)
        total = calls + errors
        ratio = errors / total if total else 0.0
        self._audit_query("error_ratio", calls=calls, errors=errors,
                          result=ratio)
        return ratio


class TraceConformance:
    """Checks observed call sequences against declared behaviour models.

    For every attached component with a ``behaviour`` LTS, each provided
    call advances a set of possible states (nondeterministic simulation
    on operation names).  A call with no enabled transition is recorded
    as a conformance violation — the RAML "checking the compliancy of
    each application with its behavioral constraints".
    """

    def __init__(self) -> None:
        self._states: dict[str, set[str]] = {}
        self._models: dict[str, Any] = {}
        self.violations: list[tuple[str, str]] = []

    def attach(self, component: Component) -> None:
        if component.behaviour is None:
            return
        self._models[component.name] = component.behaviour
        self._states[component.name] = {component.behaviour.initial}
        name = component.name

        def observer(phase: str, invocation: Invocation, payload: Any) -> None:
            if phase == "before":
                self.observe_call(name, invocation.operation)

        for port in component.provided.values():
            port.observers.append(observer)

    def observe_call(self, component_name: str, operation: str) -> bool:
        """Advance the model; returns False (and records) on violation."""
        model = self._models.get(component_name)
        if model is None:
            return True
        current = self._states[component_name]
        successors: set[str] = set()
        for state in current:
            successors |= model.successors(state, operation)
        if not successors:
            self.violations.append((component_name, operation))
            # Re-anchor at the initial state so later calls keep being
            # checked rather than cascading failures.
            self._states[component_name] = {model.initial}
            return False
        self._states[component_name] = successors
        return True

    def conforming(self, component_name: str) -> bool:
        return not any(name == component_name
                       for name, _op in self.violations)

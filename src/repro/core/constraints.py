"""Behavioural constraints checked by RAML.

A :class:`Constraint` inspects the RAML view (assembly, metrics,
introspection hub, trace conformance) and reports violations as strings.
Built-in constraint factories cover the properties the paper calls out:
structural consistency, bounded error rates, QoS thresholds, behavioural
(LTS) conformance and placement health.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.reconfig.consistency import check_assembly


class RamlView(Protocol):
    """What constraints may inspect (implemented by Raml)."""

    assembly: object
    metrics: object
    hub: object
    conformance: object

    @property
    def now(self) -> float: ...


#: A check returns a list of violation descriptions (empty = satisfied).
CheckFn = Callable[["RamlView"], list[str]]


@dataclass(frozen=True)
class Constraint:
    """A named property RAML re-checks every sweep."""

    name: str
    check: CheckFn
    severity: str = "error"  # "warn" constraints never trigger responses

    def evaluate(self, view: "RamlView") -> list[str]:
        return self.check(view)


def structural_consistency() -> Constraint:
    """Every sweep re-runs the reconfiguration consistency rules."""

    def check(view: "RamlView") -> list[str]:
        return list(check_assembly(view.assembly).violations)

    return Constraint("structural-consistency", check)


def max_error_ratio(limit: float) -> Constraint:
    """Bound on the global observed error/call ratio."""

    def check(view: "RamlView") -> list[str]:
        ratio = view.hub.error_ratio()
        if ratio > limit:
            return [f"error ratio {ratio:.3f} exceeds {limit:.3f}"]
        return []

    return Constraint(f"error-ratio<={limit}", check)


def metric_bound(metric: str, statistic: str, limit: float,
                 lower: bool = False) -> Constraint:
    """Bound on a windowed metric statistic (``mean``/``p95``/``last``…)."""

    def check(view: "RamlView") -> list[str]:
        if metric not in view.metrics:
            return []
        series = view.metrics.series(metric)
        if series.empty:
            return []
        if statistic == "mean":
            observed = series.mean()
        elif statistic == "last":
            observed = series.last()
        elif statistic == "max":
            observed = series.maximum()
        elif statistic.startswith("p"):
            observed = series.percentile(float(statistic[1:]))
        else:
            return [f"unknown statistic {statistic!r}"]
        if lower:
            if observed < limit:
                return [
                    f"{statistic}({metric}) = {observed:.4f} below {limit}"
                ]
        elif observed > limit:
            return [f"{statistic}({metric}) = {observed:.4f} exceeds {limit}"]
        return []

    direction = ">=" if lower else "<="
    return Constraint(f"{statistic}({metric}){direction}{limit}", check)


def behavioural_conformance() -> Constraint:
    """No component may deviate from its declared behaviour LTS."""

    def check(view: "RamlView") -> list[str]:
        return [
            f"component {name!r} violated its behaviour model at "
            f"operation {operation!r}"
            for name, operation in view.conformance.violations
        ]

    return Constraint("behavioural-conformance", check)


def all_nodes_up() -> Constraint:
    """Every node hosting components must be alive."""

    def check(view: "RamlView") -> list[str]:
        problems = []
        for component in view.assembly.registry:
            node_name = component.node_name
            if node_name is None:
                continue
            node = view.assembly.network.nodes.get(node_name)
            if node is None or not node.up:
                problems.append(
                    f"component {component.name!r} is hosted on dead node "
                    f"{node_name!r}"
                )
        return problems

    return Constraint("hosting-nodes-up", check)


def node_load_below(limit: float) -> Constraint:
    """No hosting node may exceed a utilisation watermark."""

    def check(view: "RamlView") -> list[str]:
        problems = []
        for name, utilisation in view.assembly.network.utilisation_map().items():
            if utilisation > limit and view.assembly.registry.on_node(name):
                problems.append(
                    f"node {name!r} utilisation {utilisation:.2f} exceeds "
                    f"{limit:.2f}"
                )
        return problems

    return Constraint(f"node-load<={limit}", check)


def custom(name: str, check: CheckFn, severity: str = "error") -> Constraint:
    """Wrap an arbitrary predicate as a constraint."""
    return Constraint(name, check, severity)

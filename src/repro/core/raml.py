"""RAML — the Reconfiguration and Adaptation Meta-Level.

The paper's proposed architecture: "setting up a Reconfiguration and
Adaptation Meta-Level (RAML) which is in charge of observing the system,
checking the compliancy of each application with its behavioral
constraints and properties, and undertaking adaptation or reconfiguration
actions."

:class:`Raml` runs a periodic **observe → check → decide → act** sweep:

* *observe* — introspection taps feed the hub, QoS metrics accumulate;
* *check* — registered constraints evaluate against the live view;
* *decide* — per-constraint responses arbitrate between the lightweight
  adaptation path and the heavyweight reconfiguration path, preferring
  adaptation and escalating to reconfiguration only when a violation
  persists (``escalate_after`` consecutive sweeps);
* *act* — responses run through the intercessor / adaptation manager.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RamlError
from repro.events import PeriodicTimer
from repro.kernel.assembly import Assembly
from repro.qos.metrics import MetricRegistry
from repro.qos.monitor import QosMonitor
from repro.adaptation.manager import AdaptationManager
from repro.core.constraints import Constraint
from repro.core.intercession import Intercessor
from repro.core.introspection import IntrospectionHub, TraceConformance

#: Responses receive (raml, violation_messages).
ResponseFn = Callable[["Raml", list[str]], None]


@dataclass
class Response:
    """How RAML reacts when a constraint is violated.

    ``adapt`` is tried on every violating sweep; ``reconfigure`` fires
    once the violation has persisted for ``escalate_after`` consecutive
    sweeps (1 = immediately).  Either may be None.
    """

    adapt: ResponseFn | None = None
    reconfigure: ResponseFn | None = None
    escalate_after: int = 3


@dataclass
class SweepRecord:
    """One observe/check/decide/act iteration."""

    time: float
    violations: dict[str, list[str]] = field(default_factory=dict)
    adapted: list[str] = field(default_factory=list)
    reconfigured: list[str] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        return not self.violations


class Raml:
    """The meta-level controller over one assembly."""

    def __init__(self, assembly: Assembly, period: float = 1.0,
                 metric_window: float = 10.0) -> None:
        self.assembly = assembly
        self.period = period
        self.metrics = MetricRegistry(window=metric_window)
        self.hub = IntrospectionHub(assembly.sim)
        self.conformance = TraceConformance()
        self.monitor = QosMonitor(assembly.sim, self.metrics, period=period)
        self.adaptation = AdaptationManager(assembly.sim, self.metrics,
                                            period=period)
        self.intercessor = Intercessor(assembly)
        self.constraints: list[Constraint] = []
        self.responses: dict[str, Response] = {}
        self.history: list[SweepRecord] = []
        self._violation_streaks: dict[str, int] = {}
        self._timer: PeriodicTimer | None = None

    @property
    def now(self) -> float:
        return self.assembly.sim.now

    # -- wiring ------------------------------------------------------------------

    def instrument(self) -> "Raml":
        """Tap everything currently in the assembly (idempotent)."""
        self.hub.tap_registry(self.assembly.registry)
        self.hub.tap_network(self.assembly.network)
        for component in self.assembly.registry:
            self.hub.tap_component(component)
            self.conformance.attach(component)
        for connector in self.assembly.connectors.values():
            self.hub.tap_connector(connector)
        for binding in self.assembly.bindings:
            self.hub.tap_binding(binding)
        return self

    def add_constraint(self, constraint: Constraint,
                       response: Response | None = None) -> "Raml":
        if any(existing.name == constraint.name
               for existing in self.constraints):
            raise RamlError(f"constraint {constraint.name!r} already exists")
        self.constraints.append(constraint)
        if response is not None:
            self.responses[constraint.name] = response
        self._violation_streaks[constraint.name] = 0
        return self

    def record_metric(self, name: str, value: float) -> None:
        """Feed an observation into the RAML metric registry."""
        self.metrics.record(name, value, self.now)

    def add_contract(self, contract, response: Response | None = None
                     ) -> "Raml":
        """Put a QoS contract under meta-level governance.

        The contract is registered with the periodic monitor *and*
        becomes a constraint in the sweep, so a violation can trigger
        the usual adaptation-first / escalate-to-reconfiguration
        arbitration ("systems should also keep compliant with the
        contracted quality of service").
        """
        self.monitor.add_contract(contract)

        def check(view) -> list[str]:
            report = contract.evaluate(view.metrics, view.now)
            return [
                f"{status.obligation.describe()} observed "
                f"{status.observed:.4f}"
                for status in report.violations
            ]

        self.add_constraint(
            Constraint(f"contract:{contract.name}", check), response
        )
        return self

    # -- the sweep -----------------------------------------------------------------

    def sweep(self) -> SweepRecord:
        """One observe → check → decide → act iteration."""
        tracer = self.assembly.sim.tracer
        span = tracer.span("raml", "sweep") if tracer is not None \
            else nullcontext()
        with span:
            record = SweepRecord(self.now)

            # Check.  A crashing constraint must not take the meta-level
            # down with it: the failure is itself reported as a violation.
            for constraint in self.constraints:
                try:
                    violations = constraint.evaluate(self)
                except Exception as exc:  # noqa: BLE001 - surfaced as violation
                    violations = [f"constraint check crashed: {exc!r}"]
                if violations:
                    record.violations[constraint.name] = violations

            # Decide + act.
            for constraint in self.constraints:
                name = constraint.name
                violations = record.violations.get(name)
                if not violations or constraint.severity == "warn":
                    self._violation_streaks[name] = 0
                    continue
                self._violation_streaks[name] += 1
                response = self.responses.get(name)
                if response is None:
                    continue
                if response.adapt is not None:
                    if tracer is not None:
                        tracer.record_audit(
                            "raml.decision", constraint=name, action="adapt",
                            streak=self._violation_streaks[name],
                            escalate_after=response.escalate_after,
                            violations=list(violations),
                        )
                    response.adapt(self, violations)
                    record.adapted.append(name)
                should_escalate = (
                    response.reconfigure is not None
                    and self._violation_streaks[name] >= response.escalate_after
                )
                if should_escalate:
                    if tracer is not None:
                        tracer.record_audit(
                            "raml.decision", constraint=name,
                            action="reconfigure",
                            streak=self._violation_streaks[name],
                            escalate_after=response.escalate_after,
                            violations=list(violations),
                        )
                    response.reconfigure(self, violations)
                    record.reconfigured.append(name)
                    self._violation_streaks[name] = 0

            self.history.append(record)
            if tracer is not None:
                tracer.record_audit(
                    "raml.sweep", sweep=len(self.history),
                    violations={name: list(v)
                                for name, v in record.violations.items()},
                    adapted=list(record.adapted),
                    reconfigured=list(record.reconfigured),
                )
        return record

    def start(self) -> "Raml":
        """Run sweeps periodically on the simulated clock."""
        if self._timer is None or not self._timer.running:
            self._timer = PeriodicTimer(self.assembly.sim, self.period,
                                        self.sweep)
        self.monitor.start()
        return self

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()
        self.monitor.stop()

    # -- reporting -----------------------------------------------------------------

    def health(self) -> dict[str, Any]:
        """Current meta-level summary (for dashboards and tests)."""
        last = self.history[-1] if self.history else None
        return {
            "sweeps": len(self.history),
            "healthy": last.healthy if last else True,
            "open_violations": dict(last.violations) if last else {},
            "observed_events": len(self.hub.events),
            "error_ratio": self.hub.error_ratio(),
            "adaptations": sum(len(r.adapted) for r in self.history),
            "reconfigurations": sum(len(r.reconfigured) for r in self.history),
        }

"""Pretty-printing ADL documents back to source.

The inverse of :func:`~repro.adl.parser.parse_adl`: given a (possibly
programmatically-built or introspected) :class:`Document`, emit source
text that parses back to an equivalent document.  Used to export the
*current* architecture of a running assembly for inspection and
version-control of configurations.
"""

from __future__ import annotations

from repro.adl.ast_nodes import (
    ArchitectureDecl,
    ComponentDecl,
    ConnectorDecl,
    Document,
    InterfaceDecl,
)


def _format_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f'"{value}"'
    return str(value)


def _print_interface(decl: InterfaceDecl) -> str:
    lines = [f"interface {decl.name} version {decl.version} {{"]
    for operation in decl.operations:
        rendered = []
        required = len(operation.params) - operation.optional
        for index, param in enumerate(operation.params):
            rendered.append(param if index < required else f"{param}?")
        lines.append(f"  operation {operation.name}({', '.join(rendered)})")
    lines.append("}")
    return "\n".join(lines)


def _print_component(decl: ComponentDecl) -> str:
    lines = [f"component {decl.name} {{"]
    for port in decl.ports:
        lines.append(
            f"  {port.kind} {port.name} : {port.interface} {port.version}"
        )
    if decl.behaviour is not None:
        lines.append("  behaviour {")
        lines.append(f"    init {decl.behaviour.initial}")
        for transition in decl.behaviour.transitions:
            lines.append(
                f"    {transition.source} -> {transition.target} : "
                f"{transition.action}"
            )
        for final in decl.behaviour.final_states:
            lines.append(f"    final {final}")
        lines.append("  }")
    lines.append("}")
    return "\n".join(lines)


def _print_connector(decl: ConnectorDecl) -> str:
    header = (f"connector {decl.name} kind {decl.kind} "
              f"interface {decl.interface} {decl.version}")
    if not decl.options:
        return header
    lines = [header + " {"]
    for name, value in decl.options:
        lines.append(f"  option {name} = {_format_value(value)}")
    lines.append("}")
    return "\n".join(lines)


def _print_architecture(decl: ArchitectureDecl) -> str:
    lines = [f"architecture {decl.name} {{"]
    for instance in decl.instances:
        header = f"  instance {instance.name} : {instance.type_name} on {instance.node}"
        body = []
        if instance.cpu:
            body.append(f"    cpu {instance.cpu:g}")
        if instance.services:
            body.append(f"    services {' '.join(instance.services)}")
        for peer in instance.colocate_with:
            body.append(f"    colocate {peer}")
        for peer in instance.separate_from:
            body.append(f"    separate {peer}")
        if body:
            lines.append(header + " {")
            lines.extend(body)
            lines.append("  }")
        else:
            lines.append(header)
    for use in decl.connectors:
        lines.append(f"  use {use.name} : {use.connector_type}")
    for bind in decl.binds:
        lines.append(
            f"  bind {bind.source_instance}.{bind.source_port} -> "
            f"{bind.target_instance}.{bind.target_port}"
        )
    for attach in decl.attaches:
        lines.append(
            f"  attach {attach.component_instance}.{attach.component_port} "
            f"-> {attach.connector_instance}.{attach.role}"
        )
    lines.append("}")
    return "\n".join(lines)


def print_document(document: Document) -> str:
    """Render a document as parseable ADL source."""
    blocks = []
    for decl in document.interfaces.values():
        blocks.append(_print_interface(decl))
    for decl in document.components.values():
        blocks.append(_print_component(decl))
    for decl in document.connectors.values():
        blocks.append(_print_connector(decl))
    for decl in document.architectures.values():
        blocks.append(_print_architecture(decl))
    return "\n\n".join(blocks) + "\n"


def export_assembly(assembly) -> str:
    """Reverse-engineer a live assembly into ADL source.

    Behaviour blocks, descriptor details and connector options are
    emitted from the live objects' reflective state; the result parses
    and re-validates ("provide means to configure and administrate it").
    """
    from repro.adl.ast_nodes import (
        AttachDecl,
        BehaviourDecl,
        BindDecl,
        InstanceDecl,
        OperationDecl,
        PortDecl,
        TransitionDecl,
        UseConnectorDecl,
    )

    document = Document()

    def ensure_interface(interface) -> None:
        if interface.name in document.interfaces:
            return
        document.interfaces[interface.name] = InterfaceDecl(
            interface.name, str(interface.version),
            tuple(
                OperationDecl(op.name, op.params, op.optional)
                for op in interface.operations.values()
            ),
        )

    instances = []
    for component in assembly.registry:
        ports = []
        for name, port in component.provided.items():
            ensure_interface(port.interface)
            ports.append(PortDecl("provides", name, port.interface.name,
                                  str(port.interface.version)))
        for name, port in component.required.items():
            ensure_interface(port.interface)
            ports.append(PortDecl("requires", name, port.interface.name,
                                  str(port.interface.version)))
        behaviour = None
        if component.behaviour is not None:
            lts = component.behaviour
            behaviour = BehaviourDecl(
                tuple(TransitionDecl(s, t, a)
                      for s, a, t in lts.all_transitions()),
                tuple(sorted(lts.final)),
                lts.initial,
            )
        type_name = f"{component.name.replace('-', '_')}_type"
        document.components[type_name] = ComponentDecl(
            type_name, tuple(ports), behaviour
        )
        instances.append(InstanceDecl(component.name, type_name,
                                      component.node_name or "unplaced"))

    uses = []
    attaches = []
    for connector in assembly.connectors.values():
        iface = next(iter(connector.roles.values())).interface
        ensure_interface(iface)
        type_name = f"{connector.name.replace('-', '_')}_conn"
        document.connectors[type_name] = ConnectorDecl(
            type_name, connector.kind, iface.name, str(iface.version)
        )
        uses.append(UseConnectorDecl(connector.name, type_name))
        for role_name, attachments in connector.attachments.items():
            for attachment in attachments:
                owner = getattr(attachment.target, "component", None)
                if owner is not None:
                    attaches.append(AttachDecl(
                        owner.name, attachment.target.name,
                        connector.name, role_name,
                    ))

    binds = []
    for binding in assembly.bindings:
        target = binding.target
        owner = getattr(target, "component", None)
        if owner is not None:
            binds.append(BindDecl(binding.source.component.name,
                                  binding.source.name,
                                  owner.name, target.name))
        else:
            connector = getattr(target, "connector", None)
            if connector is not None:
                binds.append(BindDecl(binding.source.component.name,
                                      binding.source.name,
                                      connector.name, target.role.name))

    document.architectures[assembly.name] = ArchitectureDecl(
        assembly.name, tuple(instances), tuple(uses), tuple(binds),
        tuple(attaches),
    )
    return print_document(document)

"""Architecture description language (S5).

A compact Wright/Darwin-flavoured ADL: interfaces with versioned
operations, components with ports and behaviour (LTS) blocks, connector
declarations over the builtin kinds, and architecture blocks with
instances, deployment nodes, binds and role attachments.  Documents
parse, validate and build into live assemblies.
"""

from repro.adl.ast_nodes import (
    ArchitectureDecl,
    AttachDecl,
    BehaviourDecl,
    BindDecl,
    ComponentDecl,
    ConnectorDecl,
    Document,
    InstanceDecl,
    InterfaceDecl,
    OperationDecl,
    PortDecl,
    TransitionDecl,
    UseConnectorDecl,
)
from repro.adl.builder import (
    build_architecture,
    interface_from_decl,
    lts_from_behaviour,
)
from repro.adl.parser import parse_adl
from repro.adl.partition import (
    DEFAULT_BOUNDARY_THRESHOLD,
    partition_from_architecture,
)
from repro.adl.printer import export_assembly, print_document
from repro.adl.validator import check_document, validate_document

__all__ = [
    "ArchitectureDecl",
    "AttachDecl",
    "BehaviourDecl",
    "BindDecl",
    "ComponentDecl",
    "ConnectorDecl",
    "Document",
    "InstanceDecl",
    "InterfaceDecl",
    "OperationDecl",
    "PortDecl",
    "TransitionDecl",
    "UseConnectorDecl",
    "DEFAULT_BOUNDARY_THRESHOLD",
    "build_architecture",
    "check_document",
    "export_assembly",
    "interface_from_decl",
    "lts_from_behaviour",
    "parse_adl",
    "partition_from_architecture",
    "print_document",
    "validate_document",
]

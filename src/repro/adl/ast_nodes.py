"""AST node types for the architecture description language."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class OperationDecl:
    name: str
    params: tuple[str, ...] = ()
    optional: int = 0  # count of trailing optional params


@dataclass(frozen=True)
class InterfaceDecl:
    name: str
    version: str = "1.0"
    operations: tuple[OperationDecl, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class PortDecl:
    kind: str            # "provides" | "requires"
    name: str
    interface: str
    version: str = "1.0"
    line: int = 0


@dataclass(frozen=True)
class TransitionDecl:
    source: str
    target: str
    action: str


@dataclass(frozen=True)
class BehaviourDecl:
    transitions: tuple[TransitionDecl, ...] = ()
    final_states: tuple[str, ...] = ()
    initial: str = ""


@dataclass(frozen=True)
class ComponentDecl:
    name: str
    ports: tuple[PortDecl, ...] = ()
    behaviour: BehaviourDecl | None = None
    line: int = 0


@dataclass(frozen=True)
class ConnectorDecl:
    name: str
    kind: str
    interface: str
    version: str = "1.0"
    options: tuple[tuple[str, Any], ...] = ()
    line: int = 0


@dataclass(frozen=True)
class InstanceDecl:
    name: str
    type_name: str
    node: str
    #: Deployment-descriptor options: cpu reservation, container
    #: services, placement constraints.
    cpu: float = 0.0
    services: tuple[str, ...] = ()
    colocate_with: tuple[str, ...] = ()
    separate_from: tuple[str, ...] = ()
    line: int = 0


@dataclass(frozen=True)
class UseConnectorDecl:
    name: str            # instance name
    connector_type: str  # declared connector name
    line: int = 0


@dataclass(frozen=True)
class BindDecl:
    source_instance: str
    source_port: str
    target_instance: str
    target_port: str     # provided port name or connector role
    line: int = 0


@dataclass(frozen=True)
class AttachDecl:
    component_instance: str
    component_port: str
    connector_instance: str
    role: str
    line: int = 0


@dataclass(frozen=True)
class ArchitectureDecl:
    name: str
    instances: tuple[InstanceDecl, ...] = ()
    connectors: tuple[UseConnectorDecl, ...] = ()
    binds: tuple[BindDecl, ...] = ()
    attaches: tuple[AttachDecl, ...] = ()
    line: int = 0


@dataclass
class Document:
    """A parsed ADL source file."""

    interfaces: dict[str, InterfaceDecl] = field(default_factory=dict)
    components: dict[str, ComponentDecl] = field(default_factory=dict)
    connectors: dict[str, ConnectorDecl] = field(default_factory=dict)
    architectures: dict[str, ArchitectureDecl] = field(default_factory=dict)

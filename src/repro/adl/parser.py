"""Lexer and recursive-descent parser for the repro ADL.

The language is a compact Wright/Darwin-flavoured ADL::

    interface Counter version 1.0 {
      operation increment(amount?)
      operation total()
    }

    component CounterServer {
      provides svc : Counter 1.0
      behaviour {
        init s0
        s0 -> s0 : increment
        s0 -> s0 : total
        final s0
      }
    }

    connector Front kind load-balancer interface Counter 1.0 {
      option policy = "round_robin"
      option seed = 7
    }

    architecture App {
      instance client : CounterClient on leaf0
      instance server : CounterServer on leaf1
      use lb : Front
      bind client.peer -> lb.client
      attach server.svc -> lb.worker
    }

Comments start with ``//`` or ``#`` and run to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any

from repro.errors import AdlSyntaxError
from repro.adl.ast_nodes import (
    ArchitectureDecl,
    AttachDecl,
    BehaviourDecl,
    BindDecl,
    ComponentDecl,
    ConnectorDecl,
    Document,
    InstanceDecl,
    InterfaceDecl,
    OperationDecl,
    PortDecl,
    TransitionDecl,
    UseConnectorDecl,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>(//|\#)[^\n]*)
  | (?P<version>\d+\.\d+)
  | (?P<number>\d+(?!\.)|\d+\.\d+\.\d+)
  | (?P<string>"[^"\n]*")
  | (?P<arrow>->)
  | (?P<punct>[{}():,.=?;])
  | (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int
    column: int


def tokenize(source: str) -> list[Token]:
    tokens: list[Token] = []
    line = 1
    line_start = 0
    position = 0
    while position < len(source):
        match = _TOKEN_RE.match(source, position)
        if match is None:
            column = position - line_start + 1
            raise AdlSyntaxError(
                f"unexpected character {source[position]!r}", line, column
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, line, position - line_start + 1))
        newlines = text.count("\n")
        if newlines:
            line += newlines
            line_start = position + text.rfind("\n") + 1
        position = match.end()
    tokens.append(Token("eof", "", line, 1))
    return tokens


class Parser:
    """Recursive-descent parser producing a :class:`Document`."""

    def __init__(self, source: str) -> None:
        self.tokens = tokenize(source)
        self.position = 0

    # -- token plumbing -----------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.position]

    def _advance(self) -> Token:
        token = self.current
        self.position += 1
        return token

    def _error(self, message: str) -> AdlSyntaxError:
        token = self.current
        return AdlSyntaxError(
            f"{message} (found {token.text or 'end of file'!r})",
            token.line, token.column,
        )

    def _expect(self, kind: str, text: str | None = None) -> Token:
        token = self.current
        if token.kind != kind or (text is not None and token.text != text):
            expected = text if text is not None else kind
            raise self._error(f"expected {expected!r}")
        return self._advance()

    def _expect_keyword(self, word: str) -> Token:
        return self._expect("name", word)

    def _at_keyword(self, word: str) -> bool:
        return self.current.kind == "name" and self.current.text == word

    def _name(self) -> str:
        return self._expect("name").text

    def _maybe_version(self, default: str = "1.0") -> str:
        if self.current.kind == "version":
            return self._advance().text
        return default

    # -- grammar ------------------------------------------------------------

    def parse(self) -> Document:
        document = Document()
        while self.current.kind != "eof":
            if self._at_keyword("interface"):
                decl = self._interface()
                self._register(document.interfaces, decl.name, decl, "interface")
            elif self._at_keyword("component"):
                decl = self._component()
                self._register(document.components, decl.name, decl, "component")
            elif self._at_keyword("connector"):
                decl = self._connector()
                self._register(document.connectors, decl.name, decl, "connector")
            elif self._at_keyword("architecture"):
                decl = self._architecture()
                self._register(document.architectures, decl.name, decl,
                               "architecture")
            else:
                raise self._error(
                    "expected 'interface', 'component', 'connector' or "
                    "'architecture'"
                )
        return document

    def _register(self, table: dict, name: str, decl: Any, what: str) -> None:
        if name in table:
            raise AdlSyntaxError(f"duplicate {what} {name!r}",
                                 getattr(decl, "line", 0))
        table[name] = decl

    def _interface(self) -> InterfaceDecl:
        line = self.current.line
        self._expect_keyword("interface")
        name = self._name()
        version = "1.0"
        if self._at_keyword("version"):
            self._advance()
            version = self._expect("version").text
        self._expect("punct", "{")
        operations = []
        while not (self.current.kind == "punct" and self.current.text == "}"):
            operations.append(self._operation())
        self._expect("punct", "}")
        return InterfaceDecl(name, version, tuple(operations), line)

    def _operation(self) -> OperationDecl:
        self._expect_keyword("operation")
        name = self._name()
        self._expect("punct", "(")
        params: list[str] = []
        optional = 0
        while not (self.current.kind == "punct" and self.current.text == ")"):
            if params:
                self._expect("punct", ",")
            params.append(self._name())
            if self.current.kind == "punct" and self.current.text == "?":
                self._advance()
                optional += 1
            elif optional:
                raise self._error(
                    "required parameter cannot follow optional parameters"
                )
        self._expect("punct", ")")
        return OperationDecl(name, tuple(params), optional)

    def _component(self) -> ComponentDecl:
        line = self.current.line
        self._expect_keyword("component")
        name = self._name()
        self._expect("punct", "{")
        ports: list[PortDecl] = []
        behaviour: BehaviourDecl | None = None
        while not (self.current.kind == "punct" and self.current.text == "}"):
            if self._at_keyword("provides") or self._at_keyword("requires"):
                ports.append(self._port())
            elif self._at_keyword("behaviour"):
                if behaviour is not None:
                    raise self._error("component already has a behaviour block")
                behaviour = self._behaviour()
            else:
                raise self._error(
                    "expected 'provides', 'requires' or 'behaviour'"
                )
        self._expect("punct", "}")
        return ComponentDecl(name, tuple(ports), behaviour, line)

    def _port(self) -> PortDecl:
        line = self.current.line
        kind = self._name()  # provides | requires (guarded by caller)
        name = self._name()
        self._expect("punct", ":")
        interface = self._name()
        version = self._maybe_version()
        return PortDecl(kind, name, interface, version, line)

    def _behaviour(self) -> BehaviourDecl:
        self._expect_keyword("behaviour")
        self._expect("punct", "{")
        transitions: list[TransitionDecl] = []
        finals: list[str] = []
        initial = ""
        while not (self.current.kind == "punct" and self.current.text == "}"):
            if self._at_keyword("final"):
                self._advance()
                finals.append(self._name())
            elif self._at_keyword("init"):
                self._advance()
                initial = self._name()
            else:
                source = self._name()
                self._expect("arrow")
                target = self._name()
                self._expect("punct", ":")
                action = self._name()
                transitions.append(TransitionDecl(source, target, action))
            if self.current.kind == "punct" and self.current.text == ";":
                self._advance()
        self._expect("punct", "}")
        if not initial:
            initial = transitions[0].source if transitions else "s0"
        return BehaviourDecl(tuple(transitions), tuple(finals), initial)

    def _connector(self) -> ConnectorDecl:
        line = self.current.line
        self._expect_keyword("connector")
        name = self._name()
        self._expect_keyword("kind")
        kind = self._name()
        self._expect_keyword("interface")
        interface = self._name()
        version = self._maybe_version()
        options: list[tuple[str, Any]] = []
        if self.current.kind == "punct" and self.current.text == "{":
            self._advance()
            while not (self.current.kind == "punct" and self.current.text == "}"):
                self._expect_keyword("option")
                option_name = self._name()
                self._expect("punct", "=")
                options.append((option_name, self._value()))
            self._expect("punct", "}")
        return ConnectorDecl(name, kind, interface, version, tuple(options),
                             line)

    def _value(self) -> Any:
        token = self.current
        if token.kind == "string":
            self._advance()
            return token.text[1:-1]
        if token.kind == "number":
            self._advance()
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "version":
            self._advance()
            return float(token.text)
        if token.kind == "name":
            self._advance()
            if token.text in ("true", "false"):
                return token.text == "true"
            return token.text
        raise self._error("expected a value")

    def _architecture(self) -> ArchitectureDecl:
        line = self.current.line
        self._expect_keyword("architecture")
        name = self._name()
        self._expect("punct", "{")
        instances: list[InstanceDecl] = []
        connectors: list[UseConnectorDecl] = []
        binds: list[BindDecl] = []
        attaches: list[AttachDecl] = []
        while not (self.current.kind == "punct" and self.current.text == "}"):
            if self._at_keyword("instance"):
                decl_line = self.current.line
                self._advance()
                instance_name = self._name()
                self._expect("punct", ":")
                type_name = self._name()
                self._expect_keyword("on")
                node = self._node_name()
                descriptor = self._maybe_instance_descriptor()
                instances.append(InstanceDecl(
                    instance_name, type_name, node,
                    cpu=descriptor["cpu"],
                    services=tuple(descriptor["services"]),
                    colocate_with=tuple(descriptor["colocate"]),
                    separate_from=tuple(descriptor["separate"]),
                    line=decl_line,
                ))
            elif self._at_keyword("use"):
                decl_line = self.current.line
                self._advance()
                instance_name = self._name()
                self._expect("punct", ":")
                connector_type = self._name()
                connectors.append(UseConnectorDecl(instance_name,
                                                   connector_type, decl_line))
            elif self._at_keyword("bind"):
                decl_line = self.current.line
                self._advance()
                source_instance, source_port = self._dotted()
                self._expect("arrow")
                target_instance, target_port = self._dotted()
                binds.append(BindDecl(source_instance, source_port,
                                      target_instance, target_port, decl_line))
            elif self._at_keyword("attach"):
                decl_line = self.current.line
                self._advance()
                component_instance, component_port = self._dotted()
                self._expect("arrow")
                connector_instance, role = self._dotted()
                attaches.append(AttachDecl(component_instance, component_port,
                                           connector_instance, role, decl_line))
            else:
                raise self._error(
                    "expected 'instance', 'use', 'bind' or 'attach'"
                )
        self._expect("punct", "}")
        return ArchitectureDecl(name, tuple(instances), tuple(connectors),
                                tuple(binds), tuple(attaches), line)

    def _maybe_instance_descriptor(self) -> dict:
        """Optional deployment-descriptor block after an instance::

            instance s : Server on leaf1 {
              cpu 10
              services logging metering
              colocate other
              separate rival
            }
        """
        descriptor = {"cpu": 0.0, "services": [], "colocate": [],
                      "separate": []}
        if not (self.current.kind == "punct" and self.current.text == "{"):
            return descriptor
        self._advance()
        while not (self.current.kind == "punct" and self.current.text == "}"):
            if self._at_keyword("cpu"):
                self._advance()
                token = self.current
                if token.kind in ("number", "version"):
                    self._advance()
                    descriptor["cpu"] = float(token.text)
                else:
                    raise self._error("expected a number after 'cpu'")
            elif self._at_keyword("services"):
                self._advance()
                while self.current.kind == "name" and self.current.text not in (
                        "cpu", "services", "colocate", "separate"):
                    descriptor["services"].append(self._name())
            elif self._at_keyword("colocate"):
                self._advance()
                descriptor["colocate"].append(self._name())
            elif self._at_keyword("separate"):
                self._advance()
                descriptor["separate"].append(self._name())
            else:
                raise self._error(
                    "expected 'cpu', 'services', 'colocate' or 'separate'"
                )
        self._expect("punct", "}")
        return descriptor

    def _node_name(self) -> str:
        # Node names may contain dashes and digit suffixes (leaf0,
        # rack0-host1); the lexer already folds those into one name token.
        return self._name()

    def _dotted(self) -> tuple[str, str]:
        left = self._name()
        self._expect("punct", ".")
        right = self._name()
        return left, right


def parse_adl(source: str) -> Document:
    """Parse ADL source text into a :class:`Document`."""
    return Parser(source).parse()

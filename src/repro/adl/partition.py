"""Derive a simulation :class:`~repro.netsim.Partition` from an ADL
architecture.

The architecture description already says everything a partitioner
needs: instances name their deployment *nodes*, binds and connector
attachments say which nodes talk to each other, and connector options
carry the link latency.  This module turns that into the sharding plan
for :class:`~repro.parallel.ParallelSimulation`:

* deployment nodes joined by *fast* communication (direct binds, or
  connectors whose declared ``latency`` is below the threshold) belong
  in the same region — cheap chatter must never cross a conservative
  synchronization boundary;
* each remaining connected component becomes one region, numbered in
  order of first instance appearance (deterministic for a given
  document);
* every *slow* connector becomes boundary links between the regions it
  spans, carrying its declared ``latency``/``bandwidth``/``loss``; the
  gateway inside each region is the first deployment node the connector
  touches there.

The resulting partition's lookahead is therefore exactly the minimum
declared wide-area latency — the same quantity the conservative
coordinator needs to be strictly positive, which the ADL's slow/fast
split guarantees by construction.
"""

from __future__ import annotations

from repro.adl.ast_nodes import ArchitectureDecl, ConnectorDecl, Document
from repro.errors import AdlValidationError, NetworkError
from repro.netsim.partition import Partition

#: Connectors at or above this declared latency (seconds) are treated as
#: wide-area links and become region boundaries.
DEFAULT_BOUNDARY_THRESHOLD = 0.005


def _resolve_architecture(document: Document,
                          architecture: str | None) -> ArchitectureDecl:
    if architecture is not None:
        try:
            return document.architectures[architecture]
        except KeyError:
            raise AdlValidationError(
                f"unknown architecture {architecture!r}") from None
    if len(document.architectures) != 1:
        raise AdlValidationError(
            f"document has {len(document.architectures)} architectures; "
            f"pass architecture= to pick one")
    return next(iter(document.architectures.values()))


def _connector_option(decl: ConnectorDecl, name: str, default: float) -> float:
    for key, value in decl.options:
        if key == name:
            return float(value)
    return default


def partition_from_architecture(
    document: Document,
    architecture: str | None = None,
    *,
    boundary_threshold: float = DEFAULT_BOUNDARY_THRESHOLD,
    default_bandwidth: float = 1_000_000.0,
) -> Partition:
    """Build the region partition implied by an architecture block.

    Args:
        document: parsed ADL document.
        architecture: which ``architecture`` block to partition (may be
            omitted when the document declares exactly one).
        boundary_threshold: connectors with declared ``latency`` at or
            above this are wide-area boundaries; below it (or
            undeclared) they are intra-region links.
        default_bandwidth: boundary bandwidth when the connector
            declares none.

    Returns:
        A :class:`Partition` assigning every deployment node to a
        region, with one boundary per region pair each slow connector
        spans.  Raises :class:`AdlValidationError` on an unknown or
        ambiguous architecture, a bind/attach referencing an undeclared
        instance, or an architecture with no instances.
    """
    arch = _resolve_architecture(document, architecture)
    if not arch.instances:
        raise AdlValidationError(
            f"architecture {arch.name!r} has no instances to partition")

    # Deployment nodes in first-appearance order (deterministic
    # numbering), plus instance → node for edge resolution.
    nodes: list[str] = []
    node_of: dict[str, str] = {}
    for instance in arch.instances:
        node_of[instance.name] = instance.node
        if instance.node not in nodes:
            nodes.append(instance.node)
    connector_types = {use.name: use.connector_type
                       for use in arch.connectors}

    def located(name: str, what: str) -> str | None:
        """Deployment node of a component instance; ``None`` for
        connector instances (they live between nodes)."""
        if name in node_of:
            return node_of[name]
        if name in connector_types:
            return None
        raise AdlValidationError(
            f"{what} references unknown instance {name!r} "
            f"in architecture {arch.name!r}")

    # Union-find over deployment nodes; fast edges merge regions.
    parent = {node: node for node in nodes}

    def find(node: str) -> str:
        root = node
        while parent[root] != root:
            root = parent[root]
        while parent[node] != root:
            parent[node], node = root, parent[node]
        return root

    def union(a: str, b: str) -> None:
        parent[find(a)] = find(b)

    # Deployment nodes each connector instance touches, in order.
    touches: dict[str, list[str]] = {use.name: [] for use in arch.connectors}

    def touch(conn: str, node: str | None) -> None:
        if node is not None and node not in touches[conn]:
            touches[conn].append(node)

    for bind in arch.binds:
        src = located(bind.source_instance, "bind")
        dst = located(bind.target_instance, "bind")
        if src is not None and dst is not None:
            union(src, dst)  # direct bind: in-process call path, fast
        elif src is not None:
            touch(bind.target_instance, src)
        elif dst is not None:
            touch(bind.source_instance, dst)
    for attach in arch.attaches:
        node = located(attach.component_instance, "attach")
        if attach.connector_instance not in touches:
            raise AdlValidationError(
                f"attach references unknown connector "
                f"{attach.connector_instance!r} in architecture "
                f"{arch.name!r}")
        touch(attach.connector_instance, node)

    slow: list[tuple[str, ConnectorDecl, list[str]]] = []
    for use in arch.connectors:
        decl = document.connectors.get(use.connector_type)
        if decl is None:
            raise AdlValidationError(
                f"connector instance {use.name!r} uses undeclared "
                f"connector type {use.connector_type!r}")
        latency = _connector_option(decl, "latency", 0.0)
        spanned = touches[use.name]
        if latency >= boundary_threshold and latency > 0:
            slow.append((use.name, decl, spanned))
            continue
        # Fast connector: everything it touches is one region.
        for node in spanned[1:]:
            union(spanned[0], node)

    # Number regions by first appearance of each root.
    region_of_root: dict[str, int] = {}
    partition_nodes: dict[str, int] = {}
    for node in nodes:
        root = find(node)
        if root not in region_of_root:
            region_of_root[root] = len(region_of_root)
        partition_nodes[node] = region_of_root[root]

    partition = Partition(len(region_of_root))
    for node, region in partition_nodes.items():
        partition.assign(node, region)

    for name, decl, spanned in slow:
        # Gateway per region: the first node the connector touches
        # there.  A slow connector wholly inside one region adds no
        # boundary (nothing to synchronize).
        gateways: dict[int, str] = {}
        for node in spanned:
            gateways.setdefault(partition_nodes[node], node)
        regions = sorted(gateways)
        for i, a in enumerate(regions):
            for b in regions[i + 1:]:
                partition.add_boundary(
                    gateways[a], gateways[b],
                    latency=_connector_option(decl, "latency", 0.0),
                    bandwidth=_connector_option(decl, "bandwidth",
                                                default_bandwidth),
                    loss=_connector_option(decl, "loss", 0.0))

    try:
        partition.validate()
    except NetworkError:
        # Disconnected regions are legitimate for an architecture with
        # independent islands; the caller decides whether that matters.
        pass
    return partition

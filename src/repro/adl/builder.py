"""Instantiating ADL architectures into live assemblies.

The ADL describes *structure* (and behaviour protocols); Python supplies
the *implementations*.  :func:`build_architecture` walks a validated
document, creates component instances from registered factories, deploys
them to the named nodes, creates connectors through the connector
factory, and wires every bind/attach — yielding a running
:class:`~repro.kernel.assembly.Assembly` ("quick generation of
prototypes" plus "means to configure and administrate it").
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import AdlValidationError
from repro.kernel.assembly import Assembly
from repro.kernel.component import Component
from repro.kernel.interface import Interface, Operation
from repro.lts.lts import Lts
from repro.netsim.network import Network
from repro.connectors.factory import ConnectorFactory, ConnectorSpec
from repro.adl.ast_nodes import BehaviourDecl, Document, InterfaceDecl
from repro.adl.validator import check_document

#: A factory builds the implementation object for one component instance.
ImplementationFactory = Callable[[str], Any]


def interface_from_decl(decl: InterfaceDecl) -> Interface:
    """Materialise an :class:`Interface` from its declaration."""
    return Interface(
        decl.name,
        decl.version,
        [Operation(op.name, op.params, op.optional) for op in decl.operations],
    )


def lts_from_behaviour(name: str, behaviour: BehaviourDecl) -> Lts:
    """Materialise the declared behaviour protocol as an LTS."""
    lts = Lts(name, initial=behaviour.initial)
    for transition in behaviour.transitions:
        lts.add_transition(transition.source, transition.action,
                           transition.target)
    lts.mark_final(*behaviour.final_states)
    return lts


def build_architecture(
    document: Document,
    architecture_name: str,
    network: Network,
    implementations: dict[str, ImplementationFactory],
    connector_factory: ConnectorFactory | None = None,
    validate: bool = True,
) -> Assembly:
    """Instantiate one architecture of a document over a network.

    Args:
        document: parsed (and validated) ADL document.
        architecture_name: which ``architecture`` block to build.
        network: the simulated network whose nodes host the instances.
        implementations: component type name → factory producing the
            implementation object for an instance (receives the instance
            name).  The ADL's port declarations are applied on top.
        connector_factory: factory for connector kinds (default builtins).
        validate: run semantic validation first.
    """
    if validate:
        check_document(document)
    try:
        architecture = document.architectures[architecture_name]
    except KeyError:
        raise AdlValidationError(
            f"document has no architecture {architecture_name!r}; "
            f"available: {sorted(document.architectures)}"
        ) from None

    factory = connector_factory or ConnectorFactory()
    assembly = Assembly(network, name=architecture_name)
    interfaces = {
        name: interface_from_decl(decl)
        for name, decl in document.interfaces.items()
    }

    # Components.
    for instance in architecture.instances:
        component_decl = document.components[instance.type_name]
        try:
            implementation_factory = implementations[instance.type_name]
        except KeyError:
            raise AdlValidationError(
                f"no implementation registered for component type "
                f"{instance.type_name!r}"
            ) from None
        implementation = implementation_factory(instance.name)
        if isinstance(implementation, Component):
            component = implementation
            if component.name != instance.name:
                raise AdlValidationError(
                    f"factory for {instance.type_name!r} returned component "
                    f"named {component.name!r}, expected {instance.name!r}"
                )
        else:
            component = Component(instance.name)
        for port in component_decl.ports:
            interface = interfaces[port.interface]
            if port.kind == "provides":
                if port.name not in component.provided:
                    component.provide(
                        port.name, interface,
                        implementation=None
                        if isinstance(implementation, Component)
                        else implementation,
                    )
            else:
                if port.name not in component.required:
                    component.require(port.name, interface)
        if component_decl.behaviour is not None:
            component.behaviour = lts_from_behaviour(
                f"{instance.type_name}.behaviour", component_decl.behaviour
            )
        descriptor = None
        if (instance.cpu or instance.services or instance.colocate_with
                or instance.separate_from):
            from repro.kernel.descriptor import (
                DeploymentDescriptor,
                PlacementConstraint,
            )

            descriptor = DeploymentDescriptor(
                instance.name,
                cpu_reservation=instance.cpu,
                services=instance.services,
                placement=PlacementConstraint(
                    colocate_with=frozenset(instance.colocate_with),
                    separate_from=frozenset(instance.separate_from),
                ),
            )
        assembly.deploy(component, instance.node, descriptor)

    # Connectors.
    for use in architecture.connectors:
        connector_decl = document.connectors[use.connector_type]
        spec = ConnectorSpec(
            name=use.name,
            kind=connector_decl.kind,
            interface=interfaces[connector_decl.interface],
            options=dict(connector_decl.options),
        )
        assembly.add_connector(factory.create(spec))

    # Attachments before binds, so connectors are complete when callers
    # start flowing.
    for attach in architecture.attaches:
        connector = assembly.connectors[attach.connector_instance]
        component = assembly.component(attach.component_instance)
        connector.attach(attach.role,
                         component.provided_port(attach.component_port))

    for bind in architecture.binds:
        if bind.target_instance in assembly.connectors:
            connector = assembly.connectors[bind.target_instance]
            assembly.connect(bind.source_instance, bind.source_port,
                             target=connector.endpoint(bind.target_port))
        else:
            assembly.connect(bind.source_instance, bind.source_port,
                             target_component=bind.target_instance,
                             target_port=bind.target_port)

    return assembly

"""Semantic validation of ADL documents.

Checks the rules a parser cannot: referenced interfaces/components/
connectors exist, bindings connect existing ports with compatible
interfaces, behaviours only use operations their component provides,
connector kinds are known, and architectures are well-formed.
"""

from __future__ import annotations

from repro.errors import AdlValidationError
from repro.adl.ast_nodes import (
    ArchitectureDecl,
    ComponentDecl,
    Document,
)

#: Connector kinds the builtin factory can build.
KNOWN_CONNECTOR_KINDS = frozenset(
    {"rpc", "broadcast", "event-bus", "pipeline", "load-balancer", "failover"}
)

#: Role names per builtin kind: (caller_roles, callee_roles).
CONNECTOR_ROLES: dict[str, tuple[frozenset[str], frozenset[str]]] = {
    "rpc": (frozenset({"client"}), frozenset({"server"})),
    "broadcast": (frozenset({"publisher"}), frozenset({"subscriber"})),
    "event-bus": (frozenset({"publisher"}), frozenset({"subscriber"})),
    "pipeline": (frozenset({"source"}), frozenset({"stage"})),
    "load-balancer": (frozenset({"client"}), frozenset({"worker"})),
    "failover": (frozenset({"client"}), frozenset({"replica"})),
}


def validate_document(document: Document) -> list[str]:
    """Return a list of problems (empty = valid)."""
    problems: list[str] = []
    _check_components(document, problems)
    _check_connectors(document, problems)
    for architecture in document.architectures.values():
        _check_architecture(document, architecture, problems)
    return problems


def check_document(document: Document) -> None:
    """Raise :class:`AdlValidationError` on the first batch of problems."""
    problems = validate_document(document)
    if problems:
        raise AdlValidationError("; ".join(problems))


def _check_components(document: Document, problems: list[str]) -> None:
    for component in document.components.values():
        seen_ports: set[str] = set()
        provided_operations: set[str] = set()
        for port in component.ports:
            if port.name in seen_ports:
                problems.append(
                    f"component {component.name!r}: duplicate port "
                    f"{port.name!r}"
                )
            seen_ports.add(port.name)
            if port.interface not in document.interfaces:
                problems.append(
                    f"component {component.name!r}: port {port.name!r} "
                    f"references unknown interface {port.interface!r}"
                )
            elif port.kind == "provides":
                interface = document.interfaces[port.interface]
                provided_operations.update(
                    operation.name for operation in interface.operations
                )
        if component.behaviour is not None:
            states = {component.behaviour.initial}
            for transition in component.behaviour.transitions:
                states.add(transition.source)
                states.add(transition.target)
                if (provided_operations
                        and transition.action not in provided_operations):
                    problems.append(
                        f"component {component.name!r}: behaviour uses "
                        f"action {transition.action!r} which no provided "
                        "interface offers"
                    )
            for final in component.behaviour.final_states:
                if final not in states:
                    problems.append(
                        f"component {component.name!r}: final state "
                        f"{final!r} never appears in a transition"
                    )


def _check_connectors(document: Document, problems: list[str]) -> None:
    for connector in document.connectors.values():
        if connector.kind not in KNOWN_CONNECTOR_KINDS:
            problems.append(
                f"connector {connector.name!r}: unknown kind "
                f"{connector.kind!r}"
            )
        if connector.interface not in document.interfaces:
            problems.append(
                f"connector {connector.name!r}: unknown interface "
                f"{connector.interface!r}"
            )


def _check_architecture(document: Document, architecture: ArchitectureDecl,
                        problems: list[str]) -> None:
    from repro.kernel.descriptor import DeploymentDescriptor

    instance_types: dict[str, ComponentDecl] = {}
    for instance in architecture.instances:
        if instance.name in instance_types:
            problems.append(
                f"architecture {architecture.name!r}: duplicate instance "
                f"{instance.name!r}"
            )
        component = document.components.get(instance.type_name)
        if component is None:
            problems.append(
                f"architecture {architecture.name!r}: instance "
                f"{instance.name!r} has unknown type {instance.type_name!r}"
            )
        else:
            instance_types[instance.name] = component
        unknown_services = (set(instance.services)
                            - DeploymentDescriptor.KNOWN_SERVICES)
        if unknown_services:
            problems.append(
                f"instance {instance.name!r}: unknown container services "
                f"{sorted(unknown_services)}"
            )
        if instance.cpu < 0:
            problems.append(
                f"instance {instance.name!r}: cpu reservation must be >= 0"
            )

    declared_names = {i.name for i in architecture.instances}
    for instance in architecture.instances:
        for peer in (*instance.colocate_with, *instance.separate_from):
            if peer not in declared_names:
                problems.append(
                    f"instance {instance.name!r}: placement references "
                    f"unknown instance {peer!r}"
                )

    connector_kinds: dict[str, str] = {}
    for use in architecture.connectors:
        if use.name in instance_types or use.name in connector_kinds:
            problems.append(
                f"architecture {architecture.name!r}: duplicate name "
                f"{use.name!r}"
            )
        declared = document.connectors.get(use.connector_type)
        if declared is None:
            problems.append(
                f"architecture {architecture.name!r}: connector instance "
                f"{use.name!r} has unknown type {use.connector_type!r}"
            )
        else:
            connector_kinds[use.name] = declared.kind

    def port_of(instance_name: str, port_name: str, kind: str) -> object | None:
        component = instance_types.get(instance_name)
        if component is None:
            return None
        for port in component.ports:
            if port.name == port_name and port.kind == kind:
                return port
        return None

    for bind in architecture.binds:
        source = port_of(bind.source_instance, bind.source_port, "requires")
        if bind.source_instance not in instance_types:
            problems.append(
                f"bind: unknown source instance {bind.source_instance!r}"
            )
            continue
        if source is None:
            problems.append(
                f"bind: {bind.source_instance!r} has no required port "
                f"{bind.source_port!r}"
            )
            continue
        if bind.target_instance in instance_types:
            target = port_of(bind.target_instance, bind.target_port, "provides")
            if target is None:
                problems.append(
                    f"bind: {bind.target_instance!r} has no provided port "
                    f"{bind.target_port!r}"
                )
            elif target.interface != source.interface:  # type: ignore[union-attr]
                problems.append(
                    f"bind: interface mismatch "
                    f"{bind.source_instance}.{bind.source_port} "
                    f"({source.interface}) -> "  # type: ignore[union-attr]
                    f"{bind.target_instance}.{bind.target_port} "
                    f"({target.interface})"
                )
        elif bind.target_instance in connector_kinds:
            kind = connector_kinds[bind.target_instance]
            callers, _callees = CONNECTOR_ROLES.get(
                kind, (frozenset(), frozenset())
            )
            if bind.target_port not in callers:
                problems.append(
                    f"bind: {bind.target_port!r} is not a caller role of "
                    f"{kind!r} connector {bind.target_instance!r}"
                )
        else:
            problems.append(
                f"bind: unknown target {bind.target_instance!r}"
            )

    for attach in architecture.attaches:
        if attach.component_instance not in instance_types:
            problems.append(
                f"attach: unknown instance {attach.component_instance!r}"
            )
            continue
        port = port_of(attach.component_instance, attach.component_port,
                       "provides")
        if port is None:
            problems.append(
                f"attach: {attach.component_instance!r} has no provided "
                f"port {attach.component_port!r}"
            )
        if attach.connector_instance not in connector_kinds:
            problems.append(
                f"attach: unknown connector {attach.connector_instance!r}"
            )
            continue
        kind = connector_kinds[attach.connector_instance]
        _callers, callees = CONNECTOR_ROLES.get(kind, (frozenset(), frozenset()))
        if attach.role not in callees:
            problems.append(
                f"attach: {attach.role!r} is not a callee role of {kind!r} "
                f"connector {attach.connector_instance!r}"
            )

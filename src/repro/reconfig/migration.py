"""Geographical reconfiguration: component migration and load balancing.

"Geographical changes … impact the distribution of the components and
their localization [and] are especially used for load balancing, fault
tolerance, and adaptation to the fluctuation of available resources."

:class:`MigrateComponent` is the change primitive (detach → ship state →
redeploy); :class:`MigrationPlanner` decides *what* to move *where*,
either to level load across nodes or to move components "closer to the
demand" given a traffic matrix.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConsistencyError, MigrationError
from repro.kernel.assembly import Assembly
from repro.kernel.component import Component
from repro.kernel.descriptor import DeploymentDescriptor
from repro.netsim.node import Node
from repro.reconfig.changes import Change, DEFAULT_CHANGE_COST
from repro.reconfig.state_transfer import state_size


class MigrateComponent(Change):
    """Move a component to another node, shipping its state."""

    def __init__(self, component_name: str, target_node: str) -> None:
        self.component_name = component_name
        self.target_node = target_node
        self.description = f"migrate {component_name} to {target_node}"
        self._source_node: str | None = None
        self._state_bytes = 0

    def validate(self, assembly: Assembly) -> None:
        if self.component_name not in assembly.registry:
            raise ConsistencyError(
                f"component {self.component_name!r} does not exist"
            )
        component = assembly.component(self.component_name)
        if component.node_name == self.target_node:
            raise ConsistencyError(
                f"component {self.component_name!r} is already on "
                f"{self.target_node!r}"
            )
        if self.target_node not in assembly.network.nodes:
            raise ConsistencyError(f"unknown node {self.target_node!r}")
        node = assembly.network.node(self.target_node)
        if not node.up:
            raise ConsistencyError(f"target node {self.target_node!r} is down")
        descriptor = self._descriptor_of(assembly, component)
        if descriptor is not None:
            if not descriptor.placement.allows_node(node.name, node.region):
                raise ConsistencyError(
                    f"placement constraints of {self.component_name!r} forbid "
                    f"node {self.target_node!r}"
                )
            if descriptor.cpu_reservation + node.reserved > node.capacity:
                raise ConsistencyError(
                    f"node {self.target_node!r} lacks capacity for "
                    f"{self.component_name!r}"
                )

    def _descriptor_of(self, assembly: Assembly,
                       component: Component) -> DeploymentDescriptor | None:
        container = assembly.containers.get(component.node_name or "")
        if container is None:
            return None
        return container.descriptors.get(self.component_name)

    def affected_components(self, assembly: Assembly) -> list[Component]:
        return [assembly.component(self.component_name)]

    def journal_payload(self, assembly: Assembly) -> dict:
        component = assembly.component(self.component_name)
        return {
            "component": self.component_name,
            "source": component.node_name,
            "target": self.target_node,
            "state_bytes": state_size(component),
        }

    def cost(self) -> float:
        # Transfer time is charged when applied (state captured then).
        return DEFAULT_CHANGE_COST + self._state_bytes / 1_000_000.0

    def apply(self, assembly: Assembly) -> None:
        component = assembly.component(self.component_name)
        self._source_node = component.node_name
        self._state_bytes = state_size(component)
        container = assembly.containers[component.node_name]
        detached, descriptor = container.detach(self.component_name)
        try:
            assembly.deploy(detached, self.target_node,
                            _replaced_descriptor(descriptor, detached))
        except Exception as exc:
            # Put it back where it was.
            assembly.deploy(detached, self._source_node,
                            _replaced_descriptor(descriptor, detached))
            raise MigrationError(
                f"could not migrate {self.component_name!r} to "
                f"{self.target_node!r}: {exc}"
            ) from exc

    def revert(self, assembly: Assembly) -> None:
        if self._source_node is None:
            return
        component = assembly.component(self.component_name)
        container = assembly.containers[component.node_name]
        detached, descriptor = container.detach(self.component_name)
        assembly.deploy(detached, self._source_node,
                        _replaced_descriptor(descriptor, detached))
        self._source_node = None


def _replaced_descriptor(descriptor: DeploymentDescriptor,
                         component: Component) -> DeploymentDescriptor:
    """Redeploying needs a descriptor naming the component (same one)."""
    return descriptor


@dataclass
class MigrationMove:
    """One planned move with its rationale."""

    component: str
    source: str
    target: str
    reason: str


@dataclass
class TrafficMatrix:
    """Observed call volume between clients (by node) and components.

    ``demand[(node_name, component_name)]`` counts calls originating on
    ``node_name`` towards ``component_name``.
    """

    demand: dict[tuple[str, str], float] = field(default_factory=dict)

    def record(self, node_name: str, component_name: str,
               calls: float = 1.0) -> None:
        key = (node_name, component_name)
        self.demand[key] = self.demand.get(key, 0.0) + calls

    def hottest_source(self, component_name: str) -> str | None:
        """The node generating the most demand for a component."""
        best_node, best_calls = None, 0.0
        for (node_name, comp), calls in sorted(self.demand.items()):
            if comp == component_name and calls > best_calls:
                best_node, best_calls = node_name, calls
        return best_node


class MigrationPlanner:
    """Decides which components move where.

    Two policies from the paper:

    * :meth:`plan_load_levelling` — move components off overloaded nodes
      onto the least-loaded candidates;
    * :meth:`plan_affinity` — move components onto (or adjacent to) the
      node generating most of their demand, so they execute "closer" to it.
    """

    def __init__(self, assembly: Assembly,
                 high_watermark: float = 0.75,
                 low_watermark: float = 0.5) -> None:
        if not 0 < low_watermark <= high_watermark < 1:
            raise MigrationError(
                "watermarks must satisfy 0 < low <= high < 1, got "
                f"low={low_watermark}, high={high_watermark}"
            )
        self.assembly = assembly
        self.high_watermark = high_watermark
        self.low_watermark = low_watermark

    def _movable(self, node_name: str) -> list[Component]:
        return [
            component
            for component in self.assembly.registry.on_node(node_name)
            if not component.lifecycle.is_stopped
        ]

    def _candidate_nodes(self, exclude: Iterable[str] = ()) -> list[Node]:
        banned = set(exclude)
        return [
            node for node in self.assembly.network.live_nodes()
            if node.name not in banned and node.region != "switch"
        ]

    def plan_load_levelling(self, max_moves: int = 10) -> list[MigrationMove]:
        """Drain nodes above the high watermark onto cool nodes."""
        moves: list[MigrationMove] = []
        utilisation = {
            node.name: node.utilisation
            for node in self.assembly.network.live_nodes()
        }
        hot_nodes = sorted(
            (name for name, util in utilisation.items()
             if util > self.high_watermark),
            key=lambda name: -utilisation[name],
        )
        for hot in hot_nodes:
            for component in self._movable(hot):
                if len(moves) >= max_moves:
                    return moves
                candidates = [
                    node for node in self._candidate_nodes(exclude=[hot])
                    if node.utilisation < self.low_watermark
                ]
                if not candidates:
                    return moves
                target = min(candidates,
                             key=lambda node: (node.utilisation, node.name))
                moves.append(MigrationMove(
                    component.name, hot, target.name,
                    reason=(f"load {utilisation[hot]:.2f} > "
                            f"{self.high_watermark:.2f}"),
                ))
                # Only move one component per hot node per round: the
                # next sweep re-measures before draining further.
                break
        return moves

    def plan_affinity(self, traffic: TrafficMatrix,
                      max_moves: int = 10) -> list[MigrationMove]:
        """Move components towards their dominant demand source."""
        moves: list[MigrationMove] = []
        for component in self.assembly.registry:
            if len(moves) >= max_moves:
                break
            hottest = traffic.hottest_source(component.name)
            if hottest is None or hottest == component.node_name:
                continue
            node = self.assembly.network.nodes.get(hottest)
            if node is None or not node.up or node.region == "switch":
                continue
            if node.utilisation > self.high_watermark:
                continue
            moves.append(MigrationMove(
                component.name, component.node_name or "?", hottest,
                reason=f"demand concentrated on {hottest}",
            ))
        return moves

    def to_changes(self, moves: list[MigrationMove]) -> list[MigrateComponent]:
        return [MigrateComponent(m.component, m.target) for m in moves]

"""Global consistency checking of configurations.

"One important problem concerning reconfiguration is to assure the
global consistency of a new configuration."  These checks run inside the
reconfiguration transaction *after* changes are applied and *before* the
system is released; any violation triggers rollback.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kernel.assembly import Assembly


@dataclass
class ConsistencyReport:
    """Outcome of a consistency sweep; falsy when violations exist."""

    violations: list[str] = field(default_factory=list)

    def add(self, message: str) -> None:
        self.violations.append(message)

    @property
    def consistent(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.consistent


def check_assembly(assembly: Assembly) -> ConsistencyReport:
    """Run every structural consistency rule over an assembly."""
    report = ConsistencyReport()
    _check_components(assembly, report)
    _check_bindings(assembly, report)
    _check_connectors(assembly, report)
    _check_placement(assembly, report)
    return report


def _check_components(assembly: Assembly, report: ConsistencyReport) -> None:
    for component in assembly.registry:
        if component.lifecycle.is_stopped:
            report.add(
                f"stopped component {component.name!r} is still registered"
            )
        if component.node_name is None:
            report.add(f"component {component.name!r} is not deployed")
        elif component.node_name not in assembly.network.nodes:
            report.add(
                f"component {component.name!r} is deployed on unknown node "
                f"{component.node_name!r}"
            )
        for port_name, port in component.required.items():
            if not port.is_bound:
                report.add(
                    f"required port {component.name}.{port_name} is unbound"
                )


def _binding_compatible(binding) -> bool:
    """Structural satisfaction, or adapter-mediated compliance: a port
    whose interface took a breaking evolution still serves old callers
    when an installed adapter translates from the caller's interface."""
    source, target = binding.source, binding.target
    if target.interface.satisfies(source.interface):
        return True
    for adapter in getattr(target, "adapters", []):
        if (adapter.new.name == target.interface.name
                and adapter.new.version == target.interface.version
                and adapter.old.satisfies(source.interface)):
            return True
    return False


def _check_bindings(assembly: Assembly, report: ConsistencyReport) -> None:
    for binding in assembly.bindings:
        source = binding.source
        target = binding.target
        if source.binding is not binding:
            report.add(
                f"binding {binding.describe()} is stale (port rebound "
                "elsewhere)"
            )
            continue
        if not _binding_compatible(binding):
            report.add(
                f"binding {binding.describe()}: provider "
                f"{target.interface.name!r} v{target.interface.version} no "
                f"longer satisfies requirement v{source.interface.version}"
            )
        owner = getattr(target, "component", None)
        if owner is not None:
            if owner.lifecycle.is_stopped:
                report.add(
                    f"binding {binding.describe()} targets stopped component "
                    f"{owner.name!r}"
                )
            elif owner.name not in assembly.registry:
                report.add(
                    f"binding {binding.describe()} targets unregistered "
                    f"component {owner.name!r}"
                )


def _check_connectors(assembly: Assembly, report: ConsistencyReport) -> None:
    for connector in assembly.connectors.values():
        if not connector.is_complete():
            missing = [
                role.name
                for role in connector.roles.values()
                if role.required and role.kind.value == "callee"
                and not connector.attachments[role.name]
            ]
            report.add(
                f"connector {connector.name!r} has unfilled required roles: "
                f"{missing}"
            )
        for role_name, attachments in connector.attachments.items():
            for attachment in attachments:
                owner = getattr(attachment.target, "component", None)
                if owner is not None and owner.lifecycle.is_stopped:
                    report.add(
                        f"connector {connector.name!r} role {role_name!r} "
                        f"is attached to stopped component {owner.name!r}"
                    )


def _check_placement(assembly: Assembly, report: ConsistencyReport) -> None:
    for container in assembly.containers.values():
        for name, descriptor in container.descriptors.items():
            node = container.node
            if not descriptor.placement.allows_node(node.name, node.region):
                report.add(
                    f"component {name!r} violates its placement constraints "
                    f"on node {node.name!r}"
                )
            for peer in descriptor.placement.colocate_with:
                if peer in assembly.registry:
                    peer_node = assembly.registry.lookup(peer).node_name
                    if peer_node != node.name:
                        report.add(
                            f"{name!r} must colocate with {peer!r} but they "
                            f"are on {node.name!r} and {peer_node!r}"
                        )
            for peer in descriptor.placement.separate_from:
                if peer in assembly.registry:
                    peer_node = assembly.registry.lookup(peer).node_name
                    if peer_node == node.name:
                        report.add(
                            f"{name!r} must be separated from {peer!r} but "
                            f"both are on {node.name!r}"
                        )

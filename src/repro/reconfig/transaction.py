"""Transactional reconfiguration.

A :class:`ReconfigurationTransaction` bundles changes and applies them
with the guarantees the paper demands:

1. **validate** every change against the current configuration;
2. **quiesce** the affected region (block channels, drain calls);
3. **apply** the changes, keeping an undo log;
4. **check global consistency** of the result;
5. **release** the region (flush buffered traffic) — or, on any failure,
   **roll back** the undo log and release, leaving the original
   configuration intact.

The reconfiguration window occupies simulated time (the sum of change
costs), so concurrent traffic observes a realistic freeze.

With a :class:`~repro.durability.wal.WriteAheadLog` supplied, every
phase transition is journaled *before* the corresponding in-memory
mutation — intent (with the pre-reconfiguration checksum), quiescence,
one write-ahead record per change, the commit decision marker, and the
post-commit checksum — so a crash anywhere inside the window is
recoverable by :func:`repro.durability.recovery.recover`.  WAL appends
on the forward path are load-bearing: a backend failure before the
commit marker aborts/rolls back the transaction (not durably journaled
means not done).  Appends on the failure path are best-effort: a broken
store must never stop an in-memory rollback, so those errors are
collected in ``report.wal_errors`` instead of raised.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, TYPE_CHECKING

from repro.errors import (
    ConsistencyError,
    QuiescenceError,
    ReconfigurationError,
    RollbackError,
    StoreError,
)
from repro.kernel.assembly import Assembly
from repro.reconfig.changes import Change, ReplaceComponent
from repro.reconfig.consistency import check_assembly
from repro.reconfig.quiescence import QuiescenceRegion, reach_quiescence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.durability.wal import WriteAheadLog


class TransactionState(enum.Enum):
    PENDING = "pending"
    COMMITTED = "committed"
    ROLLED_BACK = "rolled-back"
    FAILED = "failed"


@dataclass
class TransactionReport:
    """What happened during one reconfiguration transaction."""

    name: str
    state: TransactionState = TransactionState.PENDING
    started_at: float = 0.0
    finished_at: float = 0.0
    blocked_duration: float = 0.0
    buffered_calls: int = 0
    applied_changes: list[str] = field(default_factory=list)
    error: str = ""
    #: Best-effort WAL appends that failed (failure-path journaling
    #: never masks the in-memory outcome; it is surfaced here instead).
    wal_errors: list[str] = field(default_factory=list)

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class ReconfigurationTransaction:
    """Builder + executor for one atomic reconfiguration.

    Args:
        assembly: the configuration the transaction mutates.
        name: also the write-ahead-log transaction id, so journaled
            transactions should use unique names per log.
        wal: optional :class:`~repro.durability.wal.WriteAheadLog`;
            when supplied, every phase is journaled ahead of its
            in-memory mutation (see the module docstring).
    """

    def __init__(self, assembly: Assembly, name: str = "reconfig",
                 wal: "WriteAheadLog | None" = None) -> None:
        self.assembly = assembly
        self.name = name
        self.wal = wal
        self.changes: list[Change] = []
        self.report = TransactionReport(name)

    def add(self, change: Change) -> "ReconfigurationTransaction":
        self.changes.append(change)
        return self

    # -- write-ahead journaling --------------------------------------------

    def _journal_intent(self) -> None:
        """Durable intent + pre-checksum; a failure here fails the
        transaction before anything was touched."""
        if self.wal is None:
            return
        from repro.durability.checksum import assembly_checksum

        self.wal.intent(self.name, self.name,
                        [change.description for change in self.changes],
                        assembly_checksum(self.assembly))

    def _journal_apply(self, index: int, change: Change) -> None:
        """Write-ahead record for one change, journaled pre-mutation."""
        if self.wal is None:
            return
        if isinstance(change, ReplaceComponent) and change.transfer and (
                change.snapshot_journal is None):
            wal, txn, description = self.wal, self.name, change.description

            def journal_snapshot(snapshot: dict[str, Any]) -> None:
                wal.snapshot(txn, description, snapshot)

            change.snapshot_journal = journal_snapshot
        self.wal.apply(self.name, index, change.description,
                       change.journal_payload(self.assembly))

    def _journal_safe(self, write: Callable[[], Any]) -> None:
        """Failure-path journaling: a broken store must never stop an
        in-memory rollback, so only collect the error."""
        if self.wal is None:
            return
        try:
            write()
        except StoreError as exc:
            self.report.wal_errors.append(str(exc))

    def _journal_failure(self, applied: list[Change], error: str) -> None:
        """Journal the failure outcome: ``abort`` when nothing was
        applied, ``rollback-begin`` otherwise (the matching ``rollback``
        record is appended after the undo succeeds)."""
        if applied:
            self._journal_safe(
                lambda: self.wal.rollback_begin(self.name, error))
        else:
            self._journal_safe(lambda: self.wal.abort(self.name, error))

    def _journal_rolled_back(self, applied: list[Change]) -> None:
        if applied:
            self._journal_safe(lambda: self.wal.rollback(
                self.name, [change.description for change in applied]))

    # -- telemetry ---------------------------------------------------------

    def _audit_phase(self, phase: str, **fields) -> None:
        """Record one transaction phase in the RAML decision audit."""
        tracer = self.assembly.sim.tracer
        if tracer is not None:
            tracer.record_audit("reconfig.phase", txn=self.name, phase=phase,
                                **fields)

    def _emit_span(self) -> None:
        """One span covering the whole transaction window."""
        tracer = self.assembly.sim.tracer
        # "reconfig" sits in the default always-on sampling set, so this
        # records at any probabilistic rate unless explicitly opted out.
        if tracer is not None and tracer.sample("reconfig"):
            report = self.report
            tracer.emit("reconfig", self.name,
                        report.started_at, report.finished_at,
                        state=report.state.value,
                        blocked=report.blocked_duration,
                        buffered=report.buffered_calls)

    # -- region computation ----------------------------------------------------

    def region(self) -> QuiescenceRegion:
        """The components and channels that must be frozen."""
        components = []
        seen = set()
        for change in self.changes:
            for component in change.affected_components(self.assembly):
                if component.name not in seen:
                    seen.add(component.name)
                    components.append(component)
        bindings = []
        for component in components:
            for binding in self.assembly.bindings_touching(component.name):
                if binding not in bindings:
                    bindings.append(binding)
        return QuiescenceRegion(components, bindings)

    def window_cost(self) -> float:
        """Simulated time the reconfiguration window stays open."""
        return sum(change.cost() for change in self.changes)

    # -- synchronous execution ------------------------------------------------

    def execute(self) -> TransactionReport:
        """Validate → quiesce (immediately) → apply → check → release.

        Synchronous variant: assumes no call is in progress (true between
        simulator events).  Raises on failure *after* rolling back.
        """
        if self.report.state is not TransactionState.PENDING:
            raise ReconfigurationError(
                f"transaction {self.name!r} was already executed"
            )
        sim = self.assembly.sim
        self.report.started_at = sim.now

        # Pre-validate the first change only: later changes may depend on
        # earlier ones, so they are validated just before they apply.
        if self.changes:
            try:
                self.changes[0].validate(self.assembly)
            except ConsistencyError as exc:
                self.report.state = TransactionState.FAILED
                self.report.error = str(exc)
                self.report.finished_at = sim.now
                raise

        try:
            self._journal_intent()
        except StoreError as exc:
            self.report.state = TransactionState.FAILED
            self.report.error = str(exc)
            self.report.finished_at = sim.now
            raise

        region = self.region()
        region.block(now=sim.now)
        if not region.is_drained():
            region.release(now=sim.now)
            self.report.state = TransactionState.FAILED
            self.report.error = "region not idle"
            self._audit_phase("quiescence", outcome="failed",
                              error="region not idle")
            raise QuiescenceError(
                f"transaction {self.name!r}: affected components are mid-call; "
                "use execute_async under live traffic"
            )
        region.passivate(now=sim.now)
        self._audit_phase("quiescence", outcome="reached",
                          components=[c.name for c in region.components])

        applied: list[Change] = []
        try:
            if self.wal is not None:
                self.wal.quiesce(self.name,
                                 [c.name for c in region.components])
            for index, change in enumerate(self.changes):
                change.validate(self.assembly)
                self._journal_apply(index, change)
                change.apply(self.assembly)
                applied.append(change)
                self.report.applied_changes.append(change.description)
                self._audit_phase("change", change=change.description)
            consistency = check_assembly(self.assembly)
            if not consistency:
                raise ConsistencyError(
                    "post-change consistency violations: "
                    + "; ".join(consistency.violations)
                )
            # The durable commit decision: journaled only after every
            # change applied and the consistency check passed.  A store
            # failure here lands in the except path — not durably
            # committed means rolled back.
            if self.wal is not None:
                self.wal.commit(self.name)
        except Exception as exc:
            self._journal_failure(applied, str(exc))
            self._rollback(applied)
            self._journal_rolled_back(applied)
            region.release(now=sim.now)
            self.report.state = (
                TransactionState.FAILED if not applied
                else TransactionState.ROLLED_BACK
            )
            self.report.error = str(exc)
            self.report.finished_at = sim.now
            self.report.blocked_duration = region.report.blocked_duration
            self._audit_phase("rollback", error=str(exc),
                              reverted=[c.description for c in applied])
            self._emit_span()
            raise

        # Commit: finalise replacements and release immediately.  The
        # synchronous variant does not advance simulated time; use
        # execute_async for a realistic timed window under live traffic.
        for change in applied:
            if isinstance(change, ReplaceComponent):
                change.commit(self.assembly)
                self._audit_phase("state_transfer", change=change.description)
        self._finish(region)
        return self.report

    def _finish(self, region: QuiescenceRegion) -> None:
        sim = self.assembly.sim
        region.release(now=sim.now)
        self.report.blocked_duration = region.report.blocked_duration
        self.report.buffered_calls = region.report.buffered_calls
        self.report.state = TransactionState.COMMITTED
        self.report.finished_at = sim.now
        if self.wal is not None:
            # Informational marker: the commit decision is already
            # durable, so a store failure here must not un-commit.
            from repro.durability.checksum import assembly_checksum

            self._journal_safe(lambda: self.wal.post_commit(
                self.name, assembly_checksum(self.assembly)))
        self._audit_phase("commit",
                          blocked=self.report.blocked_duration,
                          buffered=self.report.buffered_calls,
                          changes=list(self.report.applied_changes))
        self._emit_span()

    # -- asynchronous execution --------------------------------------------------

    def execute_async(self, on_done: Callable[[TransactionReport], None]
                      | None = None,
                      quiescence_timeout: float = 10.0) -> None:
        """Run under live traffic: schedule quiescence, apply when drained.

        The window occupies simulated time; buffered calls flush on
        release.  ``on_done`` receives the final report (committed or
        rolled back — rollback errors propagate through the event loop).
        """
        if self.report.state is not TransactionState.PENDING:
            raise ReconfigurationError(
                f"transaction {self.name!r} was already executed"
            )
        sim = self.assembly.sim
        self.report.started_at = sim.now

        if self.changes:
            self.changes[0].validate(self.assembly)

        try:
            self._journal_intent()
        except StoreError as exc:
            self.report.state = TransactionState.FAILED
            self.report.error = str(exc)
            self.report.finished_at = sim.now
            raise

        region = self.region()

        def when_quiescent() -> None:
            self._audit_phase("quiescence", outcome="reached",
                              components=[c.name for c in region.components])
            applied: list[Change] = []
            try:
                if self.wal is not None:
                    self.wal.quiesce(self.name,
                                     [c.name for c in region.components])
                for index, change in enumerate(self.changes):
                    change.validate(self.assembly)
                    self._journal_apply(index, change)
                    change.apply(self.assembly)
                    applied.append(change)
                    self.report.applied_changes.append(change.description)
                    self._audit_phase("change", change=change.description)
                consistency = check_assembly(self.assembly)
                if not consistency:
                    raise ConsistencyError(
                        "post-change consistency violations: "
                        + "; ".join(consistency.violations)
                    )
                if self.wal is not None:
                    self.wal.commit(self.name)
            except Exception as exc:  # noqa: BLE001 - rolled back below
                self._journal_failure(applied, str(exc))
                self._rollback(applied)
                self._journal_rolled_back(applied)
                region.release(now=sim.now)
                self.report.state = TransactionState.ROLLED_BACK
                self.report.error = str(exc)
                self.report.finished_at = sim.now
                self._audit_phase("rollback", error=str(exc),
                                  reverted=[c.description for c in applied])
                self._emit_span()
                if on_done is not None:
                    on_done(self.report)
                return
            for change in applied:
                if isinstance(change, ReplaceComponent):
                    change.commit(self.assembly)
                    self._audit_phase("state_transfer",
                                      change=change.description)

            def finish() -> None:
                self._finish(region)
                if on_done is not None:
                    on_done(self.report)

            sim.schedule(finish, delay=self.window_cost())

        reach_quiescence(region, sim, when_quiescent,
                         timeout=quiescence_timeout)

    def _rollback(self, applied: list[Change]) -> None:
        errors = []
        for change in reversed(applied):
            try:
                change.revert(self.assembly)
            except Exception as exc:  # noqa: BLE001 - aggregated
                errors.append(f"{change.description}: {exc}")
        if errors:
            raise RollbackError(
                f"transaction {self.name!r} rollback failed: "
                + "; ".join(errors)
            )

"""The quiescence protocol.

Before a component may be replaced or migrated, the engine must ensure
"the ongoing activities of the system will keep running correctly while
the configuration process is in progress": it blocks the communication
channels that reach the affected components (new asynchronous calls
buffer FIFO — no loss, no duplication), waits for in-progress calls to
drain, and passivates the components.  Releasing reverses the steps and
flushes buffered traffic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import QuiescenceError
from repro.events import Simulator
from repro.kernel.binding import Binding
from repro.kernel.component import Component
from repro.kernel.lifecycle import LifecycleState


@dataclass
class QuiescenceReport:
    """Timing and traffic accounting of one quiescence window."""

    started_at: float = 0.0
    quiescent_at: float = 0.0
    released_at: float = 0.0
    buffered_calls: int = 0
    polls: int = 0

    @property
    def blocked_duration(self) -> float:
        return self.released_at - self.started_at

    @property
    def drain_duration(self) -> float:
        return self.quiescent_at - self.started_at


class QuiescenceRegion:
    """A set of components plus the channels that reach them."""

    def __init__(self, components: Iterable[Component],
                 bindings: Iterable[Binding]) -> None:
        self.components = list(components)
        self.bindings = list(bindings)
        self.report = QuiescenceReport()
        self._blocked = False
        self._passivated: list[Component] = []

    # -- protocol steps -----------------------------------------------------

    def block(self, now: float = 0.0) -> None:
        """Step 1: block the channels (buffer new asynchronous traffic)."""
        if self._blocked:
            raise QuiescenceError("region is already blocked")
        self.report.started_at = now
        for binding in self.bindings:
            binding.block()
        self._blocked = True

    def is_drained(self) -> bool:
        """True when no affected component has a call in progress."""
        return all(component.is_idle for component in self.components)

    def passivate(self, now: float = 0.0) -> None:
        """Step 2: once drained, freeze the components."""
        if not self._blocked:
            raise QuiescenceError("block() the region before passivating")
        if not self.is_drained():
            raise QuiescenceError(
                "cannot passivate: calls still in progress on "
                + ", ".join(c.name for c in self.components if not c.is_idle)
            )
        self.report.quiescent_at = now
        for component in self.components:
            if component.lifecycle.state is LifecycleState.ACTIVE:
                component.passivate()
                self._passivated.append(component)

    def release(self, now: float = 0.0) -> None:
        """Step 3: reactivate components and flush buffered channels."""
        if not self._blocked:
            raise QuiescenceError("region is not blocked")
        for component in self._passivated:
            if component.lifecycle.state is LifecycleState.PASSIVE:
                component.lifecycle.transition(LifecycleState.ACTIVE)
        self._passivated.clear()
        self.report.buffered_calls = sum(b.pending_count for b in self.bindings)
        self.report.released_at = now
        for binding in self.bindings:
            binding.unblock()
        self._blocked = False

    @property
    def is_blocked(self) -> bool:
        return self._blocked


def reach_quiescence(region: QuiescenceRegion, sim: Simulator,
                     on_quiescent: Callable[[], None],
                     poll_interval: float = 0.001,
                     timeout: float = 10.0) -> None:
    """Asynchronously drive a region to quiescence.

    Blocks the channels now, then polls until in-progress calls drain and
    calls ``on_quiescent`` (with the region passivated).  Raises
    :class:`QuiescenceError` via the event loop when ``timeout`` passes
    first — the caller should release the region and retry or abort.
    """
    region.block(now=sim.now)
    deadline = sim.now + timeout

    def poll() -> None:
        region.report.polls += 1
        if region.is_drained():
            region.passivate(now=sim.now)
            on_quiescent()
            return
        if sim.now >= deadline:
            region.release(now=sim.now)
            raise QuiescenceError(
                f"quiescence not reached within {timeout} time units"
            )
        sim.schedule(poll, delay=poll_interval)

    sim.call_soon(poll)

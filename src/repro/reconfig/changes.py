"""Reconfiguration change classes.

One class per change category in the paper's taxonomy:

* **structural** — :class:`AddComponent`, :class:`RemoveComponent`,
  :class:`AddBinding`, :class:`RemoveBinding`, :class:`RewireBinding`,
  :class:`SwapConnector`;
* **geographical** — :class:`MigrateComponent`;
* **interface modification** — :class:`ModifyInterface`;
* **implementation modification** — :class:`ReplaceImplementation` and
  the strong-reconfiguration :class:`ReplaceComponent` (state transfer).

Every change knows how to validate itself against the target assembly,
apply, revert (for transactional rollback) and estimate its simulated
cost — the time the reconfiguration window must stay open.
"""

from __future__ import annotations

from typing import Any

from repro.errors import (
    ConsistencyError,
    InterfaceError,
    ReconfigurationError,
)
from repro.kernel.assembly import Assembly
from repro.kernel.binding import Binding, bind
from repro.kernel.component import Component, Invocable, Invocation
from repro.kernel.descriptor import DeploymentDescriptor
from repro.kernel.interface import Interface, InterfaceAdapter
from repro.kernel.lifecycle import LifecycleState
from repro.reconfig.state_transfer import (
    StateTranslator,
    state_size,
    transfer_state,
)

#: Simulated seconds charged per change by default.
DEFAULT_CHANGE_COST = 0.002


class Change:
    """Base class for reconfiguration changes."""

    description = "change"

    def validate(self, assembly: Assembly) -> None:
        """Raise :class:`ConsistencyError` if the change cannot apply."""

    def apply(self, assembly: Assembly) -> None:
        raise NotImplementedError

    def revert(self, assembly: Assembly) -> None:
        raise NotImplementedError

    def cost(self) -> float:
        """Simulated time this change keeps the region frozen."""
        return DEFAULT_CHANGE_COST

    def affected_components(self, assembly: Assembly) -> list[Component]:
        """Components that must be quiescent while the change applies."""
        return []

    def journal_payload(self, assembly: Assembly) -> dict[str, Any]:
        """Extra fields for this change's write-ahead apply record.

        Called just before :meth:`apply`, so implementations may capture
        pre-mutation facts (source node, state schema) that recovery and
        audits want durable.
        """
        return {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.description})"


class AddComponent(Change):
    """Structural: deploy a new component onto a node."""

    def __init__(self, component: Component, node_name: str,
                 descriptor: DeploymentDescriptor | None = None) -> None:
        self.component = component
        self.node_name = node_name
        self.descriptor = descriptor
        self.description = f"add {component.name} on {node_name}"

    def validate(self, assembly: Assembly) -> None:
        if self.component.name in assembly.registry:
            raise ConsistencyError(
                f"component {self.component.name!r} already exists"
            )
        if self.node_name not in assembly.network.nodes:
            raise ConsistencyError(f"unknown node {self.node_name!r}")
        if not assembly.network.node(self.node_name).up:
            raise ConsistencyError(f"node {self.node_name!r} is down")

    def apply(self, assembly: Assembly) -> None:
        assembly.deploy(self.component, self.node_name, self.descriptor)

    def revert(self, assembly: Assembly) -> None:
        assembly.undeploy(self.component.name)


class RemoveComponent(Change):
    """Structural: undeploy a component (its bindings must be gone)."""

    def __init__(self, component_name: str) -> None:
        self.component_name = component_name
        self.description = f"remove {component_name}"
        self._removed: Component | None = None
        self._node: str | None = None
        self._descriptor: DeploymentDescriptor | None = None

    def validate(self, assembly: Assembly) -> None:
        if self.component_name not in assembly.registry:
            raise ConsistencyError(
                f"component {self.component_name!r} does not exist"
            )
        dangling = assembly.bindings_to(self.component_name)
        if dangling:
            raise ConsistencyError(
                f"cannot remove {self.component_name!r}: "
                f"{len(dangling)} binding(s) still target it — rewire first"
            )

    def affected_components(self, assembly: Assembly) -> list[Component]:
        return [assembly.component(self.component_name)]

    def apply(self, assembly: Assembly) -> None:
        component = assembly.component(self.component_name)
        self._node = component.node_name
        container = assembly.containers[component.node_name]
        self._descriptor = container.descriptors[self.component_name]
        self._removed, _descriptor = container.detach(self.component_name)
        self._removed.stop()

    def revert(self, assembly: Assembly) -> None:
        if self._removed is None or self._node is None:
            return
        # A stopped component cannot be restarted; redeploy a shell with
        # the same name is impossible without a factory, so revert keeps
        # the original alive by never stopping until commit.  We instead
        # recreate registration for rollback support.
        raise ReconfigurationError(
            f"RemoveComponent({self.component_name!r}) cannot be reverted "
            "after the component was stopped; order removals last"
        )


class AddBinding(Change):
    """Structural: bind a required port to a provider."""

    def __init__(self, source_component: str, required_port: str,
                 target: Invocable | None = None,
                 target_component: str | None = None,
                 target_port: str = "svc") -> None:
        self.source_component = source_component
        self.required_port = required_port
        self.target = target
        self.target_component = target_component
        self.target_port = target_port
        self.description = f"bind {source_component}.{required_port}"
        self._binding: Binding | None = None

    def validate(self, assembly: Assembly) -> None:
        source = assembly.component(self.source_component)
        port = source.required_port(self.required_port)
        if port.is_bound:
            raise ConsistencyError(
                f"{self.source_component}.{self.required_port} is already "
                "bound; use RewireBinding"
            )
        target = self._resolve_target(assembly)
        if not target.interface.satisfies(port.interface):
            raise ConsistencyError(
                f"target does not satisfy "
                f"{self.source_component}.{self.required_port}"
            )

    def _resolve_target(self, assembly: Assembly) -> Invocable:
        if self.target is not None:
            return self.target
        if self.target_component is None:
            raise ConsistencyError("AddBinding needs a target")
        return assembly.component(self.target_component).provided_port(
            self.target_port
        )

    def affected_components(self, assembly: Assembly) -> list[Component]:
        return [assembly.component(self.source_component)]

    def apply(self, assembly: Assembly) -> None:
        self._binding = assembly.connect(
            self.source_component, self.required_port,
            target=self._resolve_target(assembly),
        )

    def revert(self, assembly: Assembly) -> None:
        if self._binding is not None:
            assembly.disconnect(self._binding)
            self._binding = None


class RemoveBinding(Change):
    """Structural: unbind a required port."""

    def __init__(self, source_component: str, required_port: str) -> None:
        self.source_component = source_component
        self.required_port = required_port
        self.description = f"unbind {source_component}.{required_port}"
        self._old_target: Invocable | None = None

    def validate(self, assembly: Assembly) -> None:
        port = assembly.component(self.source_component).required_port(
            self.required_port
        )
        if not port.is_bound:
            raise ConsistencyError(
                f"{self.source_component}.{self.required_port} is not bound"
            )

    def affected_components(self, assembly: Assembly) -> list[Component]:
        return [assembly.component(self.source_component)]

    def apply(self, assembly: Assembly) -> None:
        port = assembly.component(self.source_component).required_port(
            self.required_port
        )
        self._old_target = port.binding.target
        assembly.disconnect(port.binding)

    def revert(self, assembly: Assembly) -> None:
        if self._old_target is not None:
            assembly.connect(self.source_component, self.required_port,
                             target=self._old_target)
            self._old_target = None


class RewireBinding(Change):
    """Structural: modify a connection — redirect a live binding."""

    def __init__(self, source_component: str, required_port: str,
                 new_target: Invocable | None = None,
                 target_component: str | None = None,
                 target_port: str = "svc") -> None:
        self.source_component = source_component
        self.required_port = required_port
        self.new_target = new_target
        self.target_component = target_component
        self.target_port = target_port
        self.description = f"rewire {source_component}.{required_port}"
        self._old_target: Invocable | None = None

    def _resolve_target(self, assembly: Assembly) -> Invocable:
        if self.new_target is not None:
            return self.new_target
        if self.target_component is None:
            raise ConsistencyError("RewireBinding needs a target")
        return assembly.component(self.target_component).provided_port(
            self.target_port
        )

    def validate(self, assembly: Assembly) -> None:
        port = assembly.component(self.source_component).required_port(
            self.required_port
        )
        if not port.is_bound:
            raise ConsistencyError(
                f"{self.source_component}.{self.required_port} is not bound"
            )
        target = self._resolve_target(assembly)
        if not target.interface.satisfies(port.interface):
            raise ConsistencyError(
                "new target does not satisfy "
                f"{self.source_component}.{self.required_port}"
            )

    def affected_components(self, assembly: Assembly) -> list[Component]:
        return [assembly.component(self.source_component)]

    def apply(self, assembly: Assembly) -> None:
        binding = assembly.component(self.source_component).required_port(
            self.required_port
        ).binding
        self._old_target = binding.target
        binding.redirect(self._resolve_target(assembly))

    def revert(self, assembly: Assembly) -> None:
        if self._old_target is None:
            return
        binding = assembly.component(self.source_component).required_port(
            self.required_port
        ).binding
        binding.redirect(self._old_target, check_compatibility=False)
        self._old_target = None


class ReplaceComponent(Change):
    """Strong dynamic reconfiguration: hot-swap a stateful component.

    The replacement is initialised from the predecessor's captured state
    (optionally through a :class:`StateTranslator`), every binding that
    targeted the predecessor is redirected, and the predecessor is
    passivated (stopped only at commit, so rollback can resurrect it).
    """

    def __init__(self, old_name: str, new_component: Component,
                 node_name: str | None = None,
                 descriptor: DeploymentDescriptor | None = None,
                 translator: StateTranslator | None = None,
                 transfer: bool = True) -> None:
        self.old_name = old_name
        self.new_component = new_component
        self.node_name = node_name
        self.descriptor = descriptor
        self.translator = translator
        self.transfer = transfer
        self.description = f"replace {old_name} with {new_component.name}"
        #: Optional durable-snapshot hook: called with the translated
        #: state snapshot before it is restored into the successor.  A
        #: WAL-journaled transaction wires this to the store, so a crash
        #: mid-transfer leaves the shipped state recoverable.
        self.snapshot_journal: Any = None
        self._redirected: list[tuple[Binding, Invocable]] = []
        self._reattached: list[tuple[Any, str, Invocable, Invocable]] = []
        self._old: Component | None = None

    def validate(self, assembly: Assembly) -> None:
        if self.old_name not in assembly.registry:
            raise ConsistencyError(f"component {self.old_name!r} does not exist")
        if (self.new_component.name != self.old_name
                and self.new_component.name in assembly.registry):
            raise ConsistencyError(
                f"replacement name {self.new_component.name!r} is taken"
            )
        old = assembly.component(self.old_name)
        for binding in assembly.bindings_to(self.old_name):
            old_port = binding.target
            port_name = getattr(old_port, "name", None)
            if port_name is None or port_name not in self.new_component.provided:
                raise ConsistencyError(
                    f"replacement {self.new_component.name!r} lacks provided "
                    f"port {port_name!r} needed by {binding.describe()}"
                )
            new_port = self.new_component.provided[port_name]
            if not new_port.interface.satisfies(binding.source.interface):
                raise ConsistencyError(
                    f"replacement port {port_name!r} does not satisfy "
                    f"{binding.source.qualified_name}"
                )
        for _connector, role_name, old_target in self._old_attachments(assembly):
            port_name = getattr(old_target, "name", None)
            if port_name is None or port_name not in self.new_component.provided:
                raise ConsistencyError(
                    f"replacement {self.new_component.name!r} lacks provided "
                    f"port {port_name!r} attached to connector role "
                    f"{role_name!r}"
                )

    def _old_attachments(self, assembly: Assembly):
        """Connector attachments whose target is a port of the old
        component — they must follow the replacement too."""
        for connector in assembly.connectors.values():
            for role_name, attachments in connector.attachments.items():
                for attachment in list(attachments):
                    owner = getattr(attachment.target, "component", None)
                    if owner is not None and owner.name == self.old_name:
                        yield connector, role_name, attachment.target

    def affected_components(self, assembly: Assembly) -> list[Component]:
        return [assembly.component(self.old_name)]

    def cost(self) -> float:
        # Encoding + re-initialisation cost grows with state size.
        base = DEFAULT_CHANGE_COST
        if self._old is not None:
            base += state_size(self._old) / 1_000_000.0
        return base

    def journal_payload(self, assembly: Assembly) -> dict[str, Any]:
        old = assembly.component(self.old_name)
        return {
            "old": self.old_name,
            "new": self.new_component.name,
            "transfer": self.transfer,
            "state_keys": sorted(str(key) for key in old.state),
        }

    def apply(self, assembly: Assembly) -> None:
        old = assembly.component(self.old_name)
        self._old = old
        node_name = self.node_name or old.node_name
        if self.transfer:
            # Transfer before initialisation: the snapshot is installed
            # wholesale, then ``on_initialize`` (conventionally written
            # with ``setdefault``) fills any keys the predecessor's
            # schema never had.
            transfer_state(old, self.new_component, self.translator,
                           journal=self.snapshot_journal)
            if self.new_component.lifecycle.state is LifecycleState.CREATED:
                self.new_component.initialize()
        assembly.deploy(self.new_component, node_name, self.descriptor)
        for binding in assembly.bindings_to(self.old_name):
            old_target = binding.target
            port_name = getattr(old_target, "name")
            binding.redirect(self.new_component.provided[port_name])
            self._redirected.append((binding, old_target))
        for connector, role_name, old_target in self._old_attachments(assembly):
            new_target = self.new_component.provided[old_target.name]
            connector.detach(role_name, old_target)
            connector.attach(role_name, new_target, check_behaviour=False)
            self._reattached.append((connector, role_name, old_target,
                                     new_target))
        if old.lifecycle.state is LifecycleState.ACTIVE:
            old.passivate()

    def revert(self, assembly: Assembly) -> None:
        for binding, old_target in self._redirected:
            binding.redirect(old_target, check_compatibility=False)
        self._redirected.clear()
        for connector, role_name, old_target, new_target in self._reattached:
            connector.detach(role_name, new_target)
            connector.attach(role_name, old_target, check_behaviour=False)
        self._reattached.clear()
        if self.new_component.name in assembly.registry:
            assembly.undeploy(self.new_component.name)
        if self._old is not None and self._old.lifecycle.is_quiescent:
            self._old.lifecycle.transition(LifecycleState.ACTIVE)
        self._old = None

    def commit(self, assembly: Assembly) -> None:
        """Finalise: undeploy and stop the predecessor."""
        if self._old is not None and self._old.name in assembly.registry:
            assembly.undeploy(self._old.name)


class ReplaceImplementation(Change):
    """Implementation modification: swap a port's internals in place."""

    def __init__(self, component_name: str, port_name: str,
                 new_implementation: Any) -> None:
        self.component_name = component_name
        self.port_name = port_name
        self.new_implementation = new_implementation
        self.description = f"reimplement {component_name}.{port_name}"
        self._old_implementation: Any = None

    def validate(self, assembly: Assembly) -> None:
        component = assembly.component(self.component_name)
        port = component.provided_port(self.port_name)
        for operation in port.interface.operations:
            if not callable(getattr(self.new_implementation, operation, None)):
                raise ConsistencyError(
                    f"new implementation of {self.component_name}."
                    f"{self.port_name} lacks operation {operation!r}"
                )

    def affected_components(self, assembly: Assembly) -> list[Component]:
        return [assembly.component(self.component_name)]

    def apply(self, assembly: Assembly) -> None:
        component = assembly.component(self.component_name)
        self._old_implementation = component._implementations[self.port_name]
        component.replace_implementation(self.port_name, self.new_implementation)

    def revert(self, assembly: Assembly) -> None:
        if self._old_implementation is not None:
            assembly.component(self.component_name).replace_implementation(
                self.port_name, self._old_implementation
            )
            self._old_implementation = None


class ModifyInterface(Change):
    """Interface modification: evolve a provided port's interface.

    For compatible (minor) evolutions the port interface is simply
    replaced.  For breaking evolutions an :class:`InterfaceAdapter` must
    be supplied; an interceptor translating old-style calls is installed
    so existing callers keep working.
    """

    def __init__(self, component_name: str, port_name: str,
                 new_interface: Interface,
                 adapter: InterfaceAdapter | None = None) -> None:
        self.component_name = component_name
        self.port_name = port_name
        self.new_interface = new_interface
        self.adapter = adapter
        self.description = (
            f"modify interface {component_name}.{port_name} -> "
            f"v{new_interface.version}"
        )
        self._old_interface: Interface | None = None
        self._interceptor: Any = None

    def validate(self, assembly: Assembly) -> None:
        component = assembly.component(self.component_name)
        port = component.provided_port(self.port_name)
        if self.new_interface.satisfies(port.interface):
            return
        if self.adapter is None:
            raise ConsistencyError(
                f"new interface v{self.new_interface.version} breaks "
                f"v{port.interface.version} and no adapter was supplied"
            )
        try:
            self.adapter.verify()
        except InterfaceError as exc:
            raise ConsistencyError(f"interface adapter is unsound: {exc}") from exc

    def affected_components(self, assembly: Assembly) -> list[Component]:
        return [assembly.component(self.component_name)]

    def apply(self, assembly: Assembly) -> None:
        component = assembly.component(self.component_name)
        port = component.provided_port(self.port_name)
        self._old_interface = port.interface
        port.interface = self.new_interface
        if self.adapter is not None:
            adapter = self.adapter

            def translate(invocation: Invocation, proceed: Any) -> Any:
                # Old-style calls (operation and arity match the legacy
                # interface) are adapted; new-style calls pass through.
                if invocation.operation in adapter.old:
                    legacy = adapter.old.operation(invocation.operation)
                    if legacy.accepts_arity(len(invocation.args)):
                        name, args = adapter.translate(
                            invocation.operation, invocation.args
                        )
                        invocation = Invocation(name, args, invocation.kwargs,
                                                meta=invocation.meta,
                                                caller=invocation.caller)
                return proceed(invocation)

            port.add_interceptor(translate, index=0)
            port.adapters.append(adapter)
            self._interceptor = translate

    def revert(self, assembly: Assembly) -> None:
        component = assembly.component(self.component_name)
        port = component.provided_port(self.port_name)
        if self._old_interface is not None:
            port.interface = self._old_interface
            self._old_interface = None
        if self._interceptor is not None:
            port.remove_interceptor(self._interceptor)
            self._interceptor = None
        if self.adapter is not None and self.adapter in port.adapters:
            port.adapters.remove(self.adapter)


class SwapConnector(Change):
    """Structural: interchange a connector while keeping participants."""

    def __init__(self, old_name: str, new_connector: Any,
                 role_mapping: dict[str, str] | None = None) -> None:
        self.old_name = old_name
        self.new_connector = new_connector
        self.role_mapping = role_mapping or {}
        self.description = f"swap connector {old_name} -> {new_connector.name}"
        self._old_connector: Any = None
        self._rebound: list[tuple[Binding, Invocable]] = []

    def validate(self, assembly: Assembly) -> None:
        if self.old_name not in assembly.connectors:
            raise ConsistencyError(f"no connector named {self.old_name!r}")
        old = assembly.connectors[self.old_name]
        for role_name in old.roles:
            new_role = self.role_mapping.get(role_name, role_name)
            if new_role not in self.new_connector.roles:
                raise ConsistencyError(
                    f"new connector lacks role {new_role!r} "
                    f"(mapped from {role_name!r})"
                )

    def apply(self, assembly: Assembly) -> None:
        from repro.connectors.roles import RoleKind

        old = assembly.connectors[self.old_name]
        self._old_connector = old
        # Move callee attachments.
        for role_name, attachments in old.attachments.items():
            new_role = self.role_mapping.get(role_name, role_name)
            for attachment in list(attachments):
                self.new_connector.attach(new_role, attachment.target,
                                          weight=attachment.weight,
                                          check_behaviour=False)
        # Re-point caller bindings from old endpoints to new ones.
        for binding in assembly.bindings:
            target_connector = getattr(binding.target, "connector", None)
            if target_connector is old:
                role_name = binding.target.role.name
                new_role = self.role_mapping.get(role_name, role_name)
                self._rebound.append((binding, binding.target))
                binding.redirect(self.new_connector.endpoint(new_role),
                                 check_compatibility=False)
        assembly.remove_connector(self.old_name)
        assembly.add_connector(self.new_connector)
        old.enabled = False

    def revert(self, assembly: Assembly) -> None:
        if self._old_connector is None:
            return
        for binding, endpoint in self._rebound:
            binding.redirect(endpoint, check_compatibility=False)
        self._rebound.clear()
        if self.new_connector.name in assembly.connectors:
            assembly.remove_connector(self.new_connector.name)
        assembly.add_connector(self._old_connector)
        self._old_connector.enabled = True
        self._old_connector = None

"""State transfer for strong dynamic reconfiguration.

"New components must be initialized with adequate internal state
variables, contexts, program counters and registers.  We term such a
configuration as strong dynamic reconfiguration."

Beyond a plain snapshot copy, replacements across *schema changes*
(implementation v2 stores state differently) use a
:class:`StateTranslator` mapping old keys/values to the new layout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import StateTransferError
from repro.kernel.component import Component


@dataclass
class StateTranslator:
    """Maps a predecessor's state snapshot to a successor's schema.

    ``renames`` maps old keys to new keys; ``converters`` post-process
    individual (new-key) values; ``defaults`` fill keys the old component
    never had; ``drop`` lists keys not carried over.
    """

    renames: dict[str, str] = field(default_factory=dict)
    converters: dict[str, Callable[[Any], Any]] = field(default_factory=dict)
    defaults: dict[str, Any] = field(default_factory=dict)
    drop: frozenset[str] = frozenset()

    def translate(self, snapshot: dict[str, Any]) -> dict[str, Any]:
        translated: dict[str, Any] = dict(self.defaults)
        for key, value in snapshot.items():
            if key in self.drop:
                continue
            new_key = self.renames.get(key, key)
            translated[new_key] = value
        for key, converter in self.converters.items():
            if key in translated:
                translated[key] = converter(translated[key])
        return translated


IDENTITY_TRANSLATOR = StateTranslator()


def transfer_state(source: Component, target: Component,
                   translator: StateTranslator | None = None,
                   verify: Callable[[dict[str, Any]], bool] | None = None,
                   journal: Callable[[dict[str, Any]], Any] | None = None
                   ) -> dict[str, Any]:
    """Capture, translate and install state from source to target.

    Returns the snapshot installed in the target.  ``verify`` may inspect
    the translated snapshot and veto the transfer.  ``journal`` observes
    the verified snapshot *before* it is restored — the hook a
    write-ahead-journaled transaction uses to make the shipped state
    durable ahead of the mutation.
    """
    try:
        snapshot = source.capture_state()
    except Exception as exc:  # noqa: BLE001 - wrapped with context
        raise StateTransferError(
            f"could not capture state of {source.name!r}: {exc}"
        ) from exc
    translated = (translator or IDENTITY_TRANSLATOR).translate(snapshot)
    if verify is not None and not verify(translated):
        raise StateTransferError(
            f"translated state of {source.name!r} failed verification"
        )
    if journal is not None:
        journal(translated)
    try:
        target.restore_state(translated)
    except Exception as exc:  # noqa: BLE001 - wrapped with context
        raise StateTransferError(
            f"could not restore state into {target.name!r}: {exc}"
        ) from exc
    return translated


def state_size(component: Component) -> int:
    """Rough byte size of a component's state — drives the simulated cost
    of encoding and shipping state during migration."""
    import sys

    def sizeof(value: Any) -> int:
        if isinstance(value, dict):
            return sum(sizeof(k) + sizeof(v) for k, v in value.items()) + 64
        if isinstance(value, (list, tuple, set)):
            return sum(sizeof(v) for v in value) + 56
        return sys.getsizeof(value)

    return sizeof(component.state)

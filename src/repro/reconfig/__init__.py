"""Dynamic reconfiguration engine (S14).

Change classes for the paper's four change categories, the quiescence
protocol, global consistency checking, strong-reconfiguration state
transfer, transactional apply with rollback, and migration planning.
"""

from repro.reconfig.changes import (
    AddBinding,
    AddComponent,
    Change,
    ModifyInterface,
    RemoveBinding,
    RemoveComponent,
    ReplaceComponent,
    ReplaceImplementation,
    RewireBinding,
    SwapConnector,
)
from repro.reconfig.consistency import ConsistencyReport, check_assembly
from repro.reconfig.migration import (
    MigrateComponent,
    MigrationMove,
    MigrationPlanner,
    TrafficMatrix,
)
from repro.reconfig.quiescence import (
    QuiescenceRegion,
    QuiescenceReport,
    reach_quiescence,
)
from repro.reconfig.state_transfer import (
    StateTranslator,
    state_size,
    transfer_state,
)
from repro.reconfig.transaction import (
    ReconfigurationTransaction,
    TransactionReport,
    TransactionState,
)

__all__ = [
    "AddBinding",
    "AddComponent",
    "Change",
    "ConsistencyReport",
    "MigrateComponent",
    "MigrationMove",
    "MigrationPlanner",
    "ModifyInterface",
    "QuiescenceRegion",
    "QuiescenceReport",
    "ReconfigurationTransaction",
    "RemoveBinding",
    "RemoveComponent",
    "ReplaceComponent",
    "ReplaceImplementation",
    "RewireBinding",
    "StateTranslator",
    "SwapConnector",
    "TrafficMatrix",
    "TransactionReport",
    "TransactionState",
    "check_assembly",
    "reach_quiescence",
    "state_size",
    "transfer_state",
]

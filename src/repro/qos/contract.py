"""QoS contracts.

"Systems should also keep compliant with the contracted quality of
service."  A :class:`QosContract` is a set of obligations over observed
metrics; evaluation yields a compliance report per obligation that the
monitor (and RAML) acts upon.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import QosError
from repro.qos.metrics import MetricRegistry, MetricSeries


class Statistic(enum.Enum):
    """Which windowed statistic an obligation constrains."""

    MEAN = "mean"
    P50 = "p50"
    P95 = "p95"
    P99 = "p99"
    MAX = "max"
    MIN = "min"
    LAST = "last"
    RATE = "rate"

    def evaluate(self, series: MetricSeries, now: float) -> float:
        if self is Statistic.MEAN:
            return series.mean()
        if self is Statistic.P50:
            return series.percentile(50)
        if self is Statistic.P95:
            return series.percentile(95)
        if self is Statistic.P99:
            return series.percentile(99)
        if self is Statistic.MAX:
            return series.maximum()
        if self is Statistic.MIN:
            return series.minimum()
        if self is Statistic.LAST:
            return series.last()
        return series.rate(now)


class Comparator(enum.Enum):
    LE = "<="
    GE = ">="

    def holds(self, observed: float, threshold: float) -> bool:
        if self is Comparator.LE:
            return observed <= threshold
        return observed >= threshold


@dataclass(frozen=True)
class Obligation:
    """One contracted bound: ``statistic(metric) comparator threshold``."""

    metric: str
    statistic: Statistic
    comparator: Comparator
    threshold: float
    #: Obligations on empty series are vacuously compliant unless strict.
    strict: bool = False

    def describe(self) -> str:
        return (f"{self.statistic.value}({self.metric}) "
                f"{self.comparator.value} {self.threshold}")


@dataclass
class ObligationStatus:
    obligation: Obligation
    observed: float
    compliant: bool
    vacuous: bool = False


@dataclass
class ComplianceReport:
    """Outcome of evaluating a contract at one instant."""

    contract: str
    at: float
    statuses: list[ObligationStatus] = field(default_factory=list)

    @property
    def compliant(self) -> bool:
        return all(status.compliant for status in self.statuses)

    @property
    def violations(self) -> list[ObligationStatus]:
        return [s for s in self.statuses if not s.compliant]

    def __bool__(self) -> bool:
        return self.compliant


class QosContract:
    """A named bundle of obligations, evaluable against a registry."""

    def __init__(self, name: str) -> None:
        if not name:
            raise QosError("contract name must be non-empty")
        self.name = name
        self.obligations: list[Obligation] = []

    # -- fluent construction -----------------------------------------------

    def require_max(self, metric: str, threshold: float,
                    statistic: Statistic = Statistic.MEAN,
                    strict: bool = False) -> "QosContract":
        """Contract ``statistic(metric) <= threshold``."""
        self.obligations.append(
            Obligation(metric, statistic, Comparator.LE, threshold, strict)
        )
        return self

    def require_min(self, metric: str, threshold: float,
                    statistic: Statistic = Statistic.MEAN,
                    strict: bool = False) -> "QosContract":
        """Contract ``statistic(metric) >= threshold``."""
        self.obligations.append(
            Obligation(metric, statistic, Comparator.GE, threshold, strict)
        )
        return self

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, registry: MetricRegistry, now: float) -> ComplianceReport:
        report = ComplianceReport(self.name, now)
        for obligation in self.obligations:
            if obligation.metric not in registry:
                report.statuses.append(ObligationStatus(
                    obligation, float("nan"),
                    compliant=not obligation.strict, vacuous=True,
                ))
                continue
            series = registry.series(obligation.metric)
            if series.empty:
                report.statuses.append(ObligationStatus(
                    obligation, float("nan"),
                    compliant=not obligation.strict, vacuous=True,
                ))
                continue
            observed = obligation.statistic.evaluate(series, now)
            report.statuses.append(ObligationStatus(
                obligation, observed,
                compliant=obligation.comparator.holds(
                    observed, obligation.threshold
                ),
            ))
        return report

"""QoS contracts and monitoring (S16).

Sliding-window metric series, contracted obligations over windowed
statistics, and a periodic monitor emitting compliance transitions.
"""

from repro.qos.contract import (
    Comparator,
    ComplianceReport,
    Obligation,
    ObligationStatus,
    QosContract,
    Statistic,
)
from repro.qos.metrics import MetricRegistry, MetricSeries
from repro.qos.monitor import ComplianceListener, MonitorStats, QosMonitor

__all__ = [
    "Comparator",
    "ComplianceListener",
    "ComplianceReport",
    "MetricRegistry",
    "MetricSeries",
    "MonitorStats",
    "Obligation",
    "ObligationStatus",
    "QosContract",
    "QosMonitor",
    "Statistic",
]

"""QoS monitoring.

A :class:`QosMonitor` periodically evaluates contracts over a metric
registry and notifies subscribers of compliance transitions — the
"specified criteria and periodical measurements" that trigger
reconfiguration and adaptation in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.events import PeriodicTimer, Simulator
from repro.qos.contract import ComplianceReport, QosContract
from repro.qos.metrics import MetricRegistry

#: Subscriber signature: fn(event, report) where event is
#: "violation" | "restored" | "checked".
ComplianceListener = Callable[[str, ComplianceReport], None]


@dataclass
class MonitorStats:
    checks: int = 0
    violations: int = 0
    restorations: int = 0
    compliant_checks: int = 0

    @property
    def compliance_ratio(self) -> float:
        return self.compliant_checks / self.checks if self.checks else 1.0


class QosMonitor:
    """Periodic contract evaluation with transition notifications."""

    def __init__(self, sim: Simulator, registry: MetricRegistry,
                 period: float = 1.0) -> None:
        self.sim = sim
        self.registry = registry
        self.period = period
        self.contracts: list[QosContract] = []
        self.listeners: list[ComplianceListener] = []
        self.stats = MonitorStats()
        self.history: list[ComplianceReport] = []
        self._compliant: dict[str, bool] = {}
        self._timer: PeriodicTimer | None = None

    def add_contract(self, contract: QosContract) -> "QosMonitor":
        self.contracts.append(contract)
        self._compliant[contract.name] = True
        return self

    def subscribe(self, listener: ComplianceListener) -> None:
        self.listeners.append(listener)

    # -- operation ----------------------------------------------------------

    def start(self) -> "QosMonitor":
        """Begin periodic evaluation."""
        if self._timer is None or not self._timer.running:
            self._timer = PeriodicTimer(self.sim, self.period, self.check_now)
        return self

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def check_now(self) -> list[ComplianceReport]:
        """Evaluate every contract immediately."""
        reports = []
        for contract in self.contracts:
            report = contract.evaluate(self.registry, self.sim.now)
            reports.append(report)
            self.history.append(report)
            self.stats.checks += 1
            if report.compliant:
                self.stats.compliant_checks += 1
            was_compliant = self._compliant[contract.name]
            if was_compliant and not report.compliant:
                self.stats.violations += 1
                self._annotate("violation", report)
                self._notify("violation", report)
            elif not was_compliant and report.compliant:
                self.stats.restorations += 1
                self._annotate("restored", report)
                self._notify("restored", report)
            else:
                self._notify("checked", report)
            self._compliant[contract.name] = report.compliant
        return reports

    def _annotate(self, transition: str, report: ComplianceReport) -> None:
        """Compliance transitions become trace annotations + audit records."""
        tracer = self.sim.tracer
        if tracer is None or not tracer.enabled:
            return
        violated = [status.obligation.describe()
                    for status in report.violations]
        tracer.instant("qos", f"{transition}:{report.contract}",
                       violations=violated)
        tracer.count(f"qos.{transition}s")
        tracer.record_audit("qos.violation", contract=report.contract,
                            transition=transition, violations=violated)

    def _notify(self, event: str, report: ComplianceReport) -> None:
        for listener in list(self.listeners):
            listener(event, report)

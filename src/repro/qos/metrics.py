"""Metric collection.

Sliding-window time series for the QoS parameters the paper's
quality-aware middleware monitors: latency, throughput, loss, load,
jitter.  Windows are time-based (simulated seconds), so statistics track
"periodical measurements on the evolving infrastructure".
"""

from __future__ import annotations

import bisect
import math
from typing import Iterable

from repro.errors import QosError


class MetricSeries:
    """A sliding window of (timestamp, value) samples."""

    def __init__(self, name: str, window: float = 10.0) -> None:
        if window <= 0:
            raise QosError(f"metric window must be positive, got {window}")
        self.name = name
        self.window = window
        self._times: list[float] = []
        self._values: list[float] = []
        self.total_samples = 0

    def record(self, value: float, now: float) -> None:
        """Add a sample at simulated time ``now`` and expire old ones."""
        if self._times and now < self._times[-1]:
            raise QosError(
                f"metric {self.name!r}: samples must arrive in time order "
                f"({now} < {self._times[-1]})"
            )
        self._times.append(now)
        self._values.append(float(value))
        self.total_samples += 1
        self._expire(now)

    def reset(self) -> None:
        """Drop all samples (e.g. after a repair invalidates the window)."""
        self._times.clear()
        self._values.clear()

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        keep_from = bisect.bisect_right(self._times, cutoff)
        if keep_from:
            del self._times[:keep_from]
            del self._values[:keep_from]

    # -- statistics --------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def empty(self) -> bool:
        return not self._values

    def mean(self) -> float:
        if not self._values:
            return 0.0
        return sum(self._values) / len(self._values)

    def minimum(self) -> float:
        return min(self._values) if self._values else 0.0

    def maximum(self) -> float:
        return max(self._values) if self._values else 0.0

    def last(self) -> float:
        return self._values[-1] if self._values else 0.0

    def stddev(self) -> float:
        if len(self._values) < 2:
            return 0.0
        mu = self.mean()
        return math.sqrt(
            sum((v - mu) ** 2 for v in self._values) / (len(self._values) - 1)
        )

    def percentile(self, q: float) -> float:
        """q-th percentile (q in [0, 100]) by linear interpolation."""
        if not 0 <= q <= 100:
            raise QosError(f"percentile must be in [0, 100], got {q}")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (q / 100) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high or ordered[low] == ordered[high]:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def rate(self, now: float) -> float:
        """Samples per time unit over the live window."""
        if not self._values:
            return 0.0
        span = min(self.window, max(now - self._times[0], 1e-9))
        return len(self._values) / span

    def values(self) -> Iterable[float]:
        return tuple(self._values)


class MetricRegistry:
    """Named metric series plus convenience recording helpers."""

    def __init__(self, window: float = 10.0) -> None:
        self.window = window
        self._series: dict[str, MetricSeries] = {}

    def series(self, name: str) -> MetricSeries:
        if name not in self._series:
            self._series[name] = MetricSeries(name, window=self.window)
        return self._series[name]

    def record(self, name: str, value: float, now: float) -> None:
        self.series(name).record(value, now)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> list[str]:
        return sorted(self._series)

    def snapshot(self, now: float) -> dict[str, dict[str, float]]:
        """Statistics of every series — the observation record RAML reads."""
        return {
            name: {
                "mean": series.mean(),
                "p95": series.percentile(95),
                "max": series.maximum(),
                "last": series.last(),
                "rate": series.rate(now),
                "count": float(series.count),
            }
            for name, series in self._series.items()
        }

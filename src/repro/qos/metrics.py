"""Metric collection.

Sliding-window time series for the QoS parameters the paper's
quality-aware middleware monitors: latency, throughput, loss, load,
jitter.  Windows are time-based (simulated seconds), so statistics track
"periodical measurements on the evolving infrastructure".

The statistics are *incremental*: every monitor tick reads them, so none
of them may rescan the window.

* ``mean`` / ``stddev`` — running sum and sum-of-squares, O(1).
* ``minimum`` / ``maximum`` — monotonic deques (sliding-window extrema),
  O(1) amortised.
* ``percentile`` — a bisect-maintained sorted view of the window, so a
  query is an index lookup instead of re-sorting the whole window.
"""

from __future__ import annotations

import math
from bisect import bisect_left, insort
from collections import deque
from typing import Iterable

from repro.errors import QosError


class MetricSeries:
    """A sliding window of (timestamp, value) samples."""

    __slots__ = (
        "name",
        "window",
        "total_samples",
        "_times",
        "_values",
        "_sorted",
        "_sum",
        "_sumsq",
        "_minq",
        "_maxq",
    )

    def __init__(self, name: str, window: float = 10.0) -> None:
        if window <= 0:
            raise QosError(f"metric window must be positive, got {window}")
        self.name = name
        self.window = window
        self._times: deque[float] = deque()
        self._values: deque[float] = deque()
        self._sorted: list[float] = []  # window values, ascending
        self._sum = 0.0
        self._sumsq = 0.0
        self._minq: deque[tuple[float, float]] = deque()  # values ascending
        self._maxq: deque[tuple[float, float]] = deque()  # values descending
        self.total_samples = 0

    def record(self, value: float, now: float) -> None:
        """Add a sample at simulated time ``now`` and expire old ones."""
        times = self._times
        if times and now < times[-1]:
            raise QosError(
                f"metric {self.name!r}: samples must arrive in time order "
                f"({now} < {times[-1]})"
            )
        value = float(value)
        times.append(now)
        self._values.append(value)
        self.total_samples += 1
        self._sum += value
        self._sumsq += value * value
        insort(self._sorted, value)
        minq = self._minq
        while minq and minq[-1][1] >= value:
            minq.pop()
        minq.append((now, value))
        maxq = self._maxq
        while maxq and maxq[-1][1] <= value:
            maxq.pop()
        maxq.append((now, value))
        self._expire(now)

    def reset(self) -> None:
        """Drop all samples (e.g. after a repair invalidates the window)."""
        self._times.clear()
        self._values.clear()
        self._sorted.clear()
        self._minq.clear()
        self._maxq.clear()
        self._sum = 0.0
        self._sumsq = 0.0

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        times = self._times
        if not times or times[0] > cutoff:
            return
        values = self._values
        ordered = self._sorted
        while times and times[0] <= cutoff:
            times.popleft()
            old = values.popleft()
            self._sum -= old
            self._sumsq -= old * old
            del ordered[bisect_left(ordered, old)]
        if not values:
            # Resynchronise the running sums so float residue from the
            # subtract-on-expire updates cannot outlive the window.
            self._sum = 0.0
            self._sumsq = 0.0
        minq = self._minq
        while minq and minq[0][0] <= cutoff:
            minq.popleft()
        maxq = self._maxq
        while maxq and maxq[0][0] <= cutoff:
            maxq.popleft()

    # -- statistics --------------------------------------------------------

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def empty(self) -> bool:
        return not self._values

    def mean(self) -> float:
        if not self._values:
            return 0.0
        return self._sum / len(self._values)

    def minimum(self) -> float:
        return self._minq[0][1] if self._minq else 0.0

    def maximum(self) -> float:
        return self._maxq[0][1] if self._maxq else 0.0

    def last(self) -> float:
        return self._values[-1] if self._values else 0.0

    def stddev(self) -> float:
        n = len(self._values)
        if n < 2:
            return 0.0
        variance = (self._sumsq - self._sum * self._sum / n) / (n - 1)
        return math.sqrt(variance) if variance > 0.0 else 0.0

    def percentile(self, q: float) -> float:
        """q-th percentile (q in [0, 100]) by linear interpolation."""
        if not 0 <= q <= 100:
            raise QosError(f"percentile must be in [0, 100], got {q}")
        ordered = self._sorted
        n = len(ordered)
        if n == 0:
            return 0.0
        if n == 1:
            return ordered[0]
        rank = (q / 100) * (n - 1)
        low = int(math.floor(rank))
        high = int(math.ceil(rank))
        if low == high or ordered[low] == ordered[high]:
            return ordered[low]
        frac = rank - low
        return ordered[low] * (1 - frac) + ordered[high] * frac

    def rate(self, now: float) -> float:
        """Samples per time unit over the live window."""
        if not self._values:
            return 0.0
        span = min(self.window, max(now - self._times[0], 1e-9))
        return len(self._values) / span

    def values(self) -> Iterable[float]:
        return tuple(self._values)


class MetricRegistry:
    """Named metric series plus convenience recording helpers."""

    def __init__(self, window: float = 10.0) -> None:
        self.window = window
        self._series: dict[str, MetricSeries] = {}

    def series(self, name: str) -> MetricSeries:
        if name not in self._series:
            self._series[name] = MetricSeries(name, window=self.window)
        return self._series[name]

    def record(self, name: str, value: float, now: float) -> None:
        self.series(name).record(value, now)

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def names(self) -> list[str]:
        return sorted(self._series)

    def snapshot(self, now: float) -> dict[str, dict[str, float]]:
        """Statistics of every series — the observation record RAML reads.

        Every statistic here is incremental (O(1) per series), so the
        snapshot costs O(#series) regardless of window population.
        """
        return {
            name: {
                "mean": series.mean(),
                "p95": series.percentile(95),
                "max": series.maximum(),
                "last": series.last(),
                "rate": series.rate(now),
                "count": float(series.count),
            }
            for name, series in self._series.items()
        }

"""Strong bisimulation via partition refinement.

Used to decide behavioural equivalence of connector protocols — e.g. that
a generated connector is equivalent to a hand-written reference, or that
an optimised protocol can replace the original during reconfiguration.
"""

from __future__ import annotations

from repro.lts.lts import Lts


def _partition_refinement(lts_a: Lts, lts_b: Lts) -> dict[tuple[str, str], int]:
    """Compute the coarsest strong-bisimulation partition of the disjoint
    union of ``lts_a`` and ``lts_b``.

    Returns a mapping from (owner, state) to block id.
    """
    states = [("a", s) for s in lts_a.states] + [("b", s) for s in lts_b.states]
    owners = {"a": lts_a, "b": lts_b}

    def moves(tagged: tuple[str, str]) -> list[tuple[str, tuple[str, str]]]:
        owner, state = tagged
        return [
            (action, (owner, target))
            for action, target in owners[owner].transitions_from(state)
        ]

    # Initial partition: split only by "is final" (termination capability).
    block: dict[tuple[str, str], int] = {}
    for tagged in states:
        owner, state = tagged
        block[tagged] = 1 if state in owners[owner].final else 0

    while True:
        # Signature: final-flag plus the set of (action, target-block) pairs.
        signatures: dict[tuple[str, str], tuple] = {}
        for tagged in states:
            sig = frozenset(
                (action, block[target]) for action, target in moves(tagged)
            )
            signatures[tagged] = (block[tagged] >= 0, _is_final(owners, tagged), sig)
        # Re-number blocks from signatures.
        numbering: dict[tuple, int] = {}
        new_block: dict[tuple[str, str], int] = {}
        for tagged in states:
            sig = signatures[tagged]
            if sig not in numbering:
                numbering[sig] = len(numbering)
            new_block[tagged] = numbering[sig]
        if new_block == block:
            return block
        block = new_block


def _is_final(owners: dict[str, Lts], tagged: tuple[str, str]) -> bool:
    owner, state = tagged
    return state in owners[owner].final


def bisimilar(lts_a: Lts, lts_b: Lts) -> bool:
    """True when the two LTSs' initial states are strongly bisimilar."""
    pruned_a, pruned_b = lts_a.pruned(), lts_b.pruned()
    block = _partition_refinement(pruned_a, pruned_b)
    return block[("a", pruned_a.initial)] == block[("b", pruned_b.initial)]


def minimize(lts: Lts) -> Lts:
    """Quotient the LTS by strong bisimilarity.

    The result has one state per bisimulation class; useful before
    composing large generated protocols.
    """
    pruned = lts.pruned()
    empty = Lts("∅", initial="⊥")  # fresh sink so the helper has two inputs
    block = _partition_refinement(pruned, empty)

    def class_name(state: str) -> str:
        return f"c{block[('a', state)]}"

    out = Lts(f"min({lts.name})", initial=class_name(pruned.initial))
    for state in pruned.states:
        out.add_state(class_name(state), final=state in pruned.final)
    seen: set[tuple[str, str, str]] = set()
    for source, action, target in pruned.all_transitions():
        triple = (class_name(source), action, class_name(target))
        if triple not in seen:
            seen.add(triple)
            out.add_transition(*triple)
    return out

"""Analyses over labelled transition systems.

Deadlock detection and trace checks are the core of the Wright-style
"interconnection compatibility" analysis in the paper: a connector's glue
composed with its role protocols must be deadlock-free, and each attached
component must stay within its role's allowed behaviour (simulation
preorder).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.lts.compose import compose
from repro.lts.lts import TAU, Lts


@dataclass
class DeadlockReport:
    """Result of a deadlock analysis."""

    deadlock_free: bool
    deadlock_states: list[str] = field(default_factory=list)
    witness_trace: list[str] = field(default_factory=list)
    explored_states: int = 0

    def __bool__(self) -> bool:
        return self.deadlock_free


def find_deadlocks(lts: Lts) -> DeadlockReport:
    """Find reachable non-final states with no outgoing transitions.

    The witness trace is a shortest action path from the initial state to
    the first deadlock found (BFS order).
    """
    deadlocks: list[str] = []
    parents: dict[str, tuple[str, str] | None] = {lts.initial: None}
    frontier = [lts.initial]
    explored = 0
    first_deadlock: str | None = None
    while frontier:
        next_frontier: list[str] = []
        for state in frontier:
            explored += 1
            edges = lts.transitions_from(state)
            if not edges and state not in lts.final:
                deadlocks.append(state)
                if first_deadlock is None:
                    first_deadlock = state
            for action, target in edges:
                if target not in parents:
                    parents[target] = (state, action)
                    next_frontier.append(target)
        frontier = next_frontier

    witness: list[str] = []
    if first_deadlock is not None:
        cursor: str | None = first_deadlock
        while cursor is not None and parents[cursor] is not None:
            parent, action = parents[cursor]  # type: ignore[misc]
            witness.append(action)
            cursor = parent
        witness.reverse()

    return DeadlockReport(
        deadlock_free=not deadlocks,
        deadlock_states=deadlocks,
        witness_trace=witness,
        explored_states=explored,
    )


def is_deadlock_free(lts: Lts) -> bool:
    """Convenience wrapper around :func:`find_deadlocks`."""
    return find_deadlocks(lts).deadlock_free


def check_compatibility(
    components: Sequence[Lts], name: str = "compat"
) -> DeadlockReport:
    """Wright-style compatibility: compose and check deadlock freedom."""
    return find_deadlocks(compose(components, name=name))


# ---------------------------------------------------------------------------
# Simulation preorder
# ---------------------------------------------------------------------------

def _tau_closure(lts: Lts, state: str) -> set[str]:
    """States reachable from ``state`` via TAU steps (including itself)."""
    closure = {state}
    frontier = [state]
    while frontier:
        current = frontier.pop()
        for action, target in lts.transitions_from(current):
            if action == TAU and target not in closure:
                closure.add(target)
                frontier.append(target)
    return closure


def _weak_successors(lts: Lts, state: str, action: str) -> set[str]:
    """Weak ``action`` successors: tau* . action . tau*."""
    results: set[str] = set()
    for pre in _tau_closure(lts, state):
        for act, target in lts.transitions_from(pre):
            if act == action:
                results.update(_tau_closure(lts, target))
    return results


def simulates(abstract: Lts, concrete: Lts) -> bool:
    """True when ``abstract`` (weakly) simulates ``concrete``.

    Every observable behaviour of ``concrete`` must be allowed by
    ``abstract`` — the check the paper's RAML performs before binding a
    component to a connector role (component behaviour vs role protocol).
    TAU steps on either side are absorbed (weak simulation).
    """
    # Greatest simulation via fixpoint on the full relation.
    relation = {
        (c, a) for c in concrete.states for a in abstract.states
    }
    changed = True
    while changed:
        changed = False
        for (c, a) in list(relation):
            ok = True
            for action, c_target in concrete.transitions_from(c):
                if action == TAU:
                    # Abstract may answer with zero or more TAU steps.
                    if not any(
                        (c_target, a2) in relation
                        for a2 in _tau_closure(abstract, a)
                    ):
                        ok = False
                        break
                    continue
                answers = _weak_successors(abstract, a, action)
                if not any((c_target, a2) in relation for a2 in answers):
                    ok = False
                    break
            if not ok:
                relation.discard((c, a))
                changed = True
    return any(
        (concrete.initial, a) in relation
        for a in _tau_closure(abstract, abstract.initial)
    )


def traces(lts: Lts, max_length: int = 6) -> set[tuple[str, ...]]:
    """All observable traces of length up to ``max_length``.

    Exponential in ``max_length``; intended for small protocol LTSs and
    for cross-checking refinement in tests.
    """
    results: set[tuple[str, ...]] = {()}
    frontier: list[tuple[str, tuple[str, ...]]] = [(lts.initial, ())]
    seen: set[tuple[str, tuple[str, ...]]] = set(frontier)
    while frontier:
        state, trace = frontier.pop()
        if len(trace) >= max_length:
            continue
        for action, target in lts.transitions_from(state):
            extended = trace if action == TAU else trace + (action,)
            results.add(extended)
            key = (target, extended)
            if key not in seen:
                seen.add(key)
                frontier.append(key)
    return results


def trace_refines(abstract: Lts, concrete: Lts, max_length: int = 6) -> bool:
    """Bounded trace refinement: concrete's traces ⊆ abstract's traces."""
    return traces(concrete, max_length) <= traces(abstract, max_length)

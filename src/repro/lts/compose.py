"""Parallel composition of labelled transition systems.

CSP-style synchronisation: components synchronise on the intersection of
their alphabets and interleave on everything else.  TAU never
synchronises.  The composed state space is built on the fly from the
reachable product only, so composing many small protocols stays cheap.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import LtsError
from repro.lts.lts import TAU, Lts


def _state_name(parts: tuple[str, ...]) -> str:
    return "(" + ",".join(parts) + ")"


def compose(components: Sequence[Lts], name: str = "") -> Lts:
    """Compose LTSs in parallel with multi-way synchronisation.

    An observable action fires iff *every* component that has the action
    in its alphabet can take it simultaneously; components without the
    action in their alphabet do not move.  TAU steps interleave freely.

    The composite's final states are products of all-final component
    states.
    """
    if not components:
        raise LtsError("compose() needs at least one LTS")
    if len(components) == 1:
        return components[0].pruned()

    alphabets = [lts.alphabet for lts in components]
    name = name or "||".join(lts.name for lts in components)

    initial = tuple(lts.initial for lts in components)
    out = Lts(name, initial=_state_name(initial))
    if all(lts.initial in lts.final for lts in components):
        out.mark_final(_state_name(initial))

    seen = {initial}
    frontier = [initial]
    while frontier:
        current = frontier.pop()
        current_name = _state_name(current)
        moves: list[tuple[str, tuple[str, ...]]] = []

        # TAU interleavings: one component moves, others stay.
        for index, lts in enumerate(components):
            for action, target in lts.transitions_from(current[index]):
                if action == TAU:
                    nxt = list(current)
                    nxt[index] = target
                    moves.append((TAU, tuple(nxt)))

        # Observable actions: all owners must move together.
        candidate_actions = set()
        for index, lts in enumerate(components):
            candidate_actions.update(
                action
                for action in lts.enabled(current[index])
                if action != TAU
            )
        for action in candidate_actions:
            owners = [i for i, alpha in enumerate(alphabets) if action in alpha]
            # Per-owner possible targets; empty => action blocked.
            options: list[list[tuple[int, str]]] = []
            blocked = False
            for index in owners:
                targets = components[index].successors(current[index], action)
                if not targets:
                    blocked = True
                    break
                options.append([(index, target) for target in sorted(targets)])
            if blocked:
                continue
            # Cartesian product over nondeterministic owner targets.
            combos: list[list[tuple[int, str]]] = [[]]
            for choice in options:
                combos = [prefix + [pick] for prefix in combos for pick in choice]
            for combo in combos:
                nxt = list(current)
                for index, target in combo:
                    nxt[index] = target
                moves.append((action, tuple(nxt)))

        for action, nxt in moves:
            nxt_name = _state_name(nxt)
            is_final = all(
                part in lts.final for part, lts in zip(nxt, components)
            )
            out.add_state(nxt_name, final=is_final)
            out.add_transition(current_name, action, nxt_name)
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)

    return out


def interleave(components: Sequence[Lts], name: str = "") -> Lts:
    """Pure interleaving (no synchronisation), via alphabet disjointing.

    Useful for composing independent components that share action names
    by coincidence.
    """
    if not components:
        raise LtsError("interleave() needs at least one LTS")
    renamed = [
        lts.renamed({action: f"{i}:{action}" for action in lts.alphabet})
        for i, lts in enumerate(components)
    ]
    composite = compose(renamed, name=name or "|||".join(l.name for l in components))
    undo = {
        f"{i}:{action}": action
        for i, lts in enumerate(components)
        for action in lts.alphabet
    }
    return composite.renamed(undo)

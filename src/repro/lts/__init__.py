"""Labelled transition systems (substrate S4).

The behavioural formalism for components, connector roles and glue: the
paper models "each participating component … by a label transition system
(LTS) model" and bases composition-correctness analysis on it.
"""

from repro.lts.bisimulation import bisimilar, minimize
from repro.lts.check import (
    DeadlockReport,
    check_compatibility,
    find_deadlocks,
    is_deadlock_free,
    simulates,
    trace_refines,
    traces,
)
from repro.lts.compose import compose, interleave
from repro.lts.determinize import determinize
from repro.lts.lts import TAU, Lts

__all__ = [
    "TAU",
    "DeadlockReport",
    "Lts",
    "bisimilar",
    "check_compatibility",
    "compose",
    "determinize",
    "find_deadlocks",
    "interleave",
    "is_deadlock_free",
    "minimize",
    "simulates",
    "trace_refines",
    "traces",
]

"""Determinization of labelled transition systems.

Subset construction with TAU-closure: turns a nondeterministic protocol
(with internal steps) into a trace-equivalent deterministic LTS.  Useful
before exporting protocols, comparing generated connectors by language,
and keeping verifier compositions small.
"""

from __future__ import annotations

from repro.lts.check import _tau_closure
from repro.lts.lts import TAU, Lts


def determinize(lts: Lts) -> Lts:
    """Subset construction over TAU-closures.

    The result is deterministic (no TAU, at most one successor per
    action) and accepts exactly the observable traces of the input.  A
    subset state is final when any member state is final.
    """

    def closure(states: frozenset[str]) -> frozenset[str]:
        result: set[str] = set()
        for state in states:
            result |= _tau_closure(lts, state)
        return frozenset(result)

    def name_of(states: frozenset[str]) -> str:
        return "{" + ",".join(sorted(states)) + "}"

    initial = closure(frozenset({lts.initial}))
    out = Lts(f"det({lts.name})", initial=name_of(initial))
    if initial & lts.final:
        out.mark_final(name_of(initial))

    seen = {initial}
    frontier = [initial]
    while frontier:
        current = frontier.pop()
        moves: dict[str, set[str]] = {}
        for state in current:
            for action, target in lts.transitions_from(state):
                if action == TAU:
                    continue
                moves.setdefault(action, set()).add(target)
        for action, targets in sorted(moves.items()):
            nxt = closure(frozenset(targets))
            out.add_state(name_of(nxt), final=bool(nxt & lts.final))
            out.add_transition(name_of(current), action, name_of(nxt))
            if nxt not in seen:
                seen.add(nxt)
                frontier.append(nxt)
    return out

"""Labelled transition systems.

The paper's vision represents "each participating component … by a label
transition system (LTS) model" and bases composition-correctness analysis
on them.  This module provides the LTS data structure; composition and
analysis live in sibling modules.

Actions are plain strings.  The distinguished action :data:`TAU` is an
internal step that never synchronises.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.errors import LtsError

#: The silent / internal action.
TAU = "τ"  # τ


class Lts:
    """A finite labelled transition system.

    States are strings; transitions are ``(state, action, target)``
    triples.  ``final`` states model successful termination: a state with
    no outgoing transitions deadlocks *unless* it is final.
    """

    def __init__(self, name: str, initial: str = "s0") -> None:
        self.name = name
        self.initial = initial
        self.states: set[str] = {initial}
        self.final: set[str] = set()
        self._transitions: dict[str, list[tuple[str, str]]] = {initial: []}

    # -- construction -------------------------------------------------------

    def add_state(self, state: str, final: bool = False) -> "Lts":
        """Add a state; no-op if it already exists (final flag is OR-ed)."""
        if state not in self.states:
            self.states.add(state)
            self._transitions[state] = []
        if final:
            self.final.add(state)
        return self

    def add_transition(self, source: str, action: str, target: str) -> "Lts":
        """Add a transition, creating missing states on the way."""
        if not action:
            raise LtsError("transition action must be a non-empty string")
        self.add_state(source)
        self.add_state(target)
        self._transitions[source].append((action, target))
        return self

    def mark_final(self, *states: str) -> "Lts":
        for state in states:
            if state not in self.states:
                raise LtsError(f"cannot mark unknown state {state!r} final")
            self.final.add(state)
        return self

    @classmethod
    def from_triples(
        cls,
        name: str,
        triples: Iterable[tuple[str, str, str]],
        initial: str = "s0",
        final: Iterable[str] = (),
    ) -> "Lts":
        """Build an LTS from ``(source, action, target)`` triples."""
        lts = cls(name, initial=initial)
        for source, action, target in triples:
            lts.add_transition(source, action, target)
        lts.mark_final(*final)
        return lts

    @classmethod
    def cycle(cls, name: str, actions: list[str]) -> "Lts":
        """A single loop performing ``actions`` forever (no final state)."""
        if not actions:
            raise LtsError("cycle needs at least one action")
        lts = cls(name, initial="s0")
        for i, action in enumerate(actions):
            lts.add_transition(f"s{i}", action, f"s{(i + 1) % len(actions)}")
        return lts

    @classmethod
    def sequence(cls, name: str, actions: list[str]) -> "Lts":
        """A straight line performing ``actions`` once, ending final."""
        lts = cls(name, initial="s0")
        for i, action in enumerate(actions):
            lts.add_transition(f"s{i}", action, f"s{i + 1}")
        lts.add_state(f"s{len(actions)}", final=True)
        return lts

    # -- queries -------------------------------------------------------------

    @property
    def alphabet(self) -> frozenset[str]:
        """All observable actions (TAU excluded)."""
        return frozenset(
            action
            for edges in self._transitions.values()
            for action, _target in edges
            if action != TAU
        )

    def transitions_from(self, state: str) -> list[tuple[str, str]]:
        """Outgoing ``(action, target)`` pairs of ``state``."""
        try:
            return list(self._transitions[state])
        except KeyError:
            raise LtsError(f"unknown state {state!r} in LTS {self.name!r}") from None

    def successors(self, state: str, action: str) -> set[str]:
        """Targets reachable from ``state`` via exactly ``action``."""
        return {
            target for act, target in self.transitions_from(state) if act == action
        }

    def enabled(self, state: str) -> set[str]:
        """Actions enabled in ``state``."""
        return {action for action, _target in self.transitions_from(state)}

    def all_transitions(self) -> Iterator[tuple[str, str, str]]:
        for source, edges in self._transitions.items():
            for action, target in edges:
                yield source, action, target

    @property
    def transition_count(self) -> int:
        return sum(len(edges) for edges in self._transitions.values())

    def is_deterministic(self) -> bool:
        """True when no state has two identical-action transitions to
        different targets and no TAU steps."""
        for source, edges in self._transitions.items():
            seen: dict[str, str] = {}
            for action, target in edges:
                if action == TAU:
                    return False
                if action in seen and seen[action] != target:
                    return False
                seen[action] = target
        return True

    def reachable_states(self) -> set[str]:
        """States reachable from the initial state."""
        seen = {self.initial}
        frontier = [self.initial]
        while frontier:
            state = frontier.pop()
            for _action, target in self._transitions[state]:
                if target not in seen:
                    seen.add(target)
                    frontier.append(target)
        return seen

    def pruned(self) -> "Lts":
        """A copy containing only reachable states."""
        keep = self.reachable_states()
        out = Lts(self.name, initial=self.initial)
        for state in keep:
            out.add_state(state, final=state in self.final)
        for source, action, target in self.all_transitions():
            if source in keep and target in keep:
                out.add_transition(source, action, target)
        return out

    def renamed(self, mapping: dict[str, str]) -> "Lts":
        """A copy with actions renamed via ``mapping`` (TAU kept)."""
        out = Lts(self.name, initial=self.initial)
        for state in self.states:
            out.add_state(state, final=state in self.final)
        for source, action, target in self.all_transitions():
            out.add_transition(source, mapping.get(action, action), target)
        return out

    def hidden(self, actions: Iterable[str]) -> "Lts":
        """A copy with the given actions turned into TAU (CSP hiding)."""
        hide = set(actions)
        out = Lts(self.name, initial=self.initial)
        for state in self.states:
            out.add_state(state, final=state in self.final)
        for source, action, target in self.all_transitions():
            out.add_transition(source, TAU if action in hide else action, target)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Lts({self.name!r}, states={len(self.states)}, "
            f"transitions={self.transition_count})"
        )

"""The aspect weaver.

Two weaving modes, mirroring the paper's compile-time/run-time
distinction:

* **dynamic** (default) — one interceptor per port evaluates pointcuts
  per invocation; aspects can be woven and unwoven freely at run time.
* **static** — advice is resolved per join point at weave time and baked
  into a specialised interceptor (no per-call pointcut matching), the
  AspectJ-style trade-off: faster calls, but changing aspects means
  re-weaving.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import AspectError
from repro.kernel.component import Component, Invocation, ProvidedPort
from repro.aspects.aspect import Advice, AdviceKind, Aspect, JoinPoint, join_points_of


def _execute(pieces: list[tuple[Any, Advice]], invocation: Invocation,
             proceed: Callable[[Invocation], Any],
             check_condition: bool) -> Any:
    """Run the advice stack around ``proceed``."""
    active = [
        (pointcut, advice)
        for pointcut, advice in pieces
        if not check_condition or pointcut.admits(invocation)
    ]

    befores = [a for _p, a in active if a.kind is AdviceKind.BEFORE]
    afters = [a for _p, a in active if a.kind is AdviceKind.AFTER]
    arounds = [a for _p, a in active if a.kind is AdviceKind.AROUND]
    handlers = [a for _p, a in active if a.kind is AdviceKind.ON_ERROR]

    def core(inv: Invocation, _position: int = 0) -> Any:
        if _position < len(arounds):
            return arounds[_position].body(
                inv, lambda inner: core(inner, _position + 1)
            )
        return proceed(inv)

    for advice in befores:
        advice.body(invocation)
    try:
        result = core(invocation)
    except Exception as exc:  # noqa: BLE001 - on_error advice may recover
        for advice in handlers:
            return advice.body(invocation, exc)
        raise
    for advice in afters:
        result = advice.body(invocation, result)
    return result


class Weaver:
    """Weaves aspects into components' provided ports."""

    def __init__(self) -> None:
        # aspect name -> list of (port, interceptor) installed.
        self._woven: dict[str, list[tuple[ProvidedPort, Callable]]] = {}
        # aspect name -> list of (port, original_interface) to restore.
        self._introduced: dict[str, list[tuple[ProvidedPort, Any]]] = {}
        self._aspects: dict[str, Aspect] = {}

    def weave(self, aspect: Aspect, components: list[Component],
              mode: str = "dynamic") -> int:
        """Install ``aspect`` on matching join points; returns the count.

        ``mode`` is "dynamic" or "static" (see module docstring).
        """
        if aspect.name in self._woven:
            raise AspectError(f"aspect {aspect.name!r} is already woven")
        if mode not in ("dynamic", "static"):
            raise AspectError(f"unknown weaving mode {mode!r}")
        installed: list[tuple[ProvidedPort, Callable]] = []
        ports_seen: set[int] = set()
        join_point_count = 0
        for component in components:
            port_points: dict[int, list[JoinPoint]] = {}
            for join_point, port in join_points_of(component):
                if aspect.pieces_for(join_point):
                    join_point_count += 1
                    port_points.setdefault(id(port), []).append(join_point)
            for port_name, port in component.provided.items():
                if id(port) not in port_points or id(port) in ports_seen:
                    continue
                ports_seen.add(id(port))
                interceptor = self._make_interceptor(aspect, component, port, mode)
                port.add_interceptor(interceptor)
                installed.append((port, interceptor))
        introduced = self._apply_introductions(aspect, components, installed)
        if not installed and not introduced:
            raise AspectError(
                f"aspect {aspect.name!r} matched no join point on the given "
                "components"
            )
        self._woven[aspect.name] = installed
        self._introduced[aspect.name] = introduced
        self._aspects[aspect.name] = aspect
        return join_point_count + len(introduced)

    def _apply_introductions(self, aspect: Aspect,
                             components: list[Component],
                             installed: list[tuple[ProvidedPort, Callable]]
                             ) -> list[tuple[ProvidedPort, Any]]:
        """Graft introduced operations onto matching ports.

        Each target port's interface takes a compatible (minor-version)
        evolution adding the new operations; calls to them are served by
        an interceptor that never reaches the original implementation.
        """
        from repro.kernel.interface import Operation

        introduced: list[tuple[ProvidedPort, Any]] = []
        for component in components:
            for port_name, port in component.provided.items():
                introductions = aspect.introductions_for(component.name,
                                                         port_name)
                fresh = [
                    intro for intro in introductions
                    if intro.operation not in port.interface
                ]
                if not fresh:
                    continue
                original_interface = port.interface
                port.interface = port.interface.evolve(add=[
                    Operation(intro.operation, intro.params, intro.optional)
                    for intro in fresh
                ])
                table = {intro.operation: intro for intro in fresh}

                def interceptor(invocation: Invocation, proceed: Callable,
                                _table=table, _component=component) -> Any:
                    introduction = _table.get(invocation.operation)
                    if introduction is not None:
                        return introduction.body(_component, *invocation.args)
                    return proceed(invocation)

                port.add_interceptor(interceptor)
                installed.append((port, interceptor))
                introduced.append((port, original_interface))
        return introduced

    def _make_interceptor(self, aspect: Aspect, component: Component,
                          port: ProvidedPort, mode: str) -> Callable:
        if mode == "dynamic":
            def dynamic_interceptor(invocation: Invocation,
                                    proceed: Callable) -> Any:
                join_point = JoinPoint(
                    component.name, port.name, invocation.operation
                )
                pieces = aspect.pieces_for(join_point)
                if not pieces:
                    return proceed(invocation)
                return _execute(pieces, invocation, proceed, check_condition=True)

            return dynamic_interceptor

        # Static: resolve advice per operation now, skip matching at call time.
        table: dict[str, list] = {}
        for operation_name in port.interface.operations:
            join_point = JoinPoint(component.name, port.name, operation_name)
            pieces = aspect.pieces_for(join_point)
            if pieces:
                table[operation_name] = pieces

        def static_interceptor(invocation: Invocation,
                               proceed: Callable) -> Any:
            pieces = table.get(invocation.operation)
            if pieces is None:
                return proceed(invocation)
            return _execute(pieces, invocation, proceed, check_condition=True)

        return static_interceptor

    def unweave(self, aspect_name: str) -> int:
        """Remove a woven aspect; returns how many ports were cleaned."""
        try:
            installed = self._woven.pop(aspect_name)
        except KeyError:
            raise AspectError(f"aspect {aspect_name!r} is not woven") from None
        self._aspects.pop(aspect_name, None)
        for port, interceptor in installed:
            port.remove_interceptor(interceptor)
        for port, original_interface in self._introduced.pop(aspect_name, []):
            port.interface = original_interface
        return len(installed)

    def swap(self, old_name: str, new_aspect: Aspect,
             components: list[Component], mode: str = "dynamic") -> None:
        """Interchange aspects at run time (unweave old, weave new)."""
        self.unweave(old_name)
        self.weave(new_aspect, components, mode=mode)

    def woven_names(self) -> list[str]:
        return sorted(self._woven)

    def is_woven(self, aspect_name: str) -> bool:
        return aspect_name in self._woven

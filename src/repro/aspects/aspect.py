"""Aspects: pointcuts and advice.

The aspect-oriented mechanism from the paper's survey: crosscutting
behaviour "scattered to multiple components" is expressed once as an
:class:`Aspect` — a set of (pointcut, advice) pairs — and woven into the
invocation pipeline by the :class:`~repro.aspects.weaver.Weaver`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.kernel.component import Component, Invocation, ProvidedPort


@dataclass(frozen=True)
class JoinPoint:
    """Where an advice fires: a (component, port, operation) coordinate."""

    component: str
    port: str
    operation: str


@dataclass(frozen=True)
class Pointcut:
    """Predicate over join points.

    Patterns are exact names or ``"*"``; ``condition`` may further
    inspect the live invocation.
    """

    component: str = "*"
    port: str = "*"
    operation: str = "*"
    condition: Callable[[Invocation], bool] | None = None

    @staticmethod
    def _match(pattern: str, value: str) -> bool:
        if pattern == "*":
            return True
        if pattern.endswith("*"):
            return value.startswith(pattern[:-1])
        return pattern == value

    def selects(self, join_point: JoinPoint) -> bool:
        return (
            self._match(self.component, join_point.component)
            and self._match(self.port, join_point.port)
            and self._match(self.operation, join_point.operation)
        )

    def admits(self, invocation: Invocation) -> bool:
        return self.condition is None or self.condition(invocation)


class AdviceKind(enum.Enum):
    BEFORE = "before"
    AFTER = "after"
    AROUND = "around"
    ON_ERROR = "on_error"


@dataclass
class Advice:
    """One piece of crosscutting behaviour.

    Signatures by kind:

    * BEFORE:   ``fn(invocation) -> None``
    * AFTER:    ``fn(invocation, result) -> result`` (may replace it)
    * AROUND:   ``fn(invocation, proceed) -> result``
    * ON_ERROR: ``fn(invocation, exc) -> result`` (recover) or re-raise
    """

    kind: AdviceKind
    body: Callable[..., Any]
    name: str = ""


@dataclass
class Introduction:
    """An inter-type declaration: a new operation grafted onto components.

    The paper points at "component absorption and metaification"
    [Kast02]: an aspect may not only advise existing operations but add
    new ones.  ``body`` receives the component followed by the call's
    positional arguments.
    """

    operation: str
    params: tuple[str, ...]
    body: Callable[..., Any]
    optional: int = 0


@dataclass
class Aspect:
    """A named bundle of (pointcut, advice) pairs plus introductions."""

    name: str
    pieces: list[tuple[Pointcut, Advice]] = field(default_factory=list)
    introductions: list[tuple[str, Introduction]] = field(default_factory=list)

    def add(self, pointcut: Pointcut, advice: Advice) -> "Aspect":
        self.pieces.append((pointcut, advice))
        return self

    def before(self, body: Callable[[Invocation], None],
               **pointcut_kwargs: Any) -> "Aspect":
        return self.add(Pointcut(**pointcut_kwargs),
                        Advice(AdviceKind.BEFORE, body))

    def after(self, body: Callable[[Invocation, Any], Any],
              **pointcut_kwargs: Any) -> "Aspect":
        return self.add(Pointcut(**pointcut_kwargs),
                        Advice(AdviceKind.AFTER, body))

    def around(self, body: Callable[[Invocation, Callable], Any],
               **pointcut_kwargs: Any) -> "Aspect":
        return self.add(Pointcut(**pointcut_kwargs),
                        Advice(AdviceKind.AROUND, body))

    def on_error(self, body: Callable[[Invocation, BaseException], Any],
                 **pointcut_kwargs: Any) -> "Aspect":
        return self.add(Pointcut(**pointcut_kwargs),
                        Advice(AdviceKind.ON_ERROR, body))

    def introduce(self, port_pattern: str, operation: str,
                  body: Callable[..., Any],
                  params: tuple[str, ...] = (),
                  optional: int = 0) -> "Aspect":
        """Graft a new operation onto every port matching ``port_pattern``
        (``component.port`` with ``*`` wildcards on either side)."""
        self.introductions.append(
            (port_pattern, Introduction(operation, params, body, optional))
        )
        return self

    def pieces_for(self, join_point: JoinPoint) -> list[tuple[Pointcut, Advice]]:
        return [(pc, adv) for pc, adv in self.pieces if pc.selects(join_point)]

    def introductions_for(self, component_name: str,
                          port_name: str) -> list[Introduction]:
        matches = []
        for pattern, introduction in self.introductions:
            comp_pat, _sep, port_pat = pattern.partition(".")
            port_pat = port_pat or "*"
            if (Pointcut._match(comp_pat, component_name)
                    and Pointcut._match(port_pat, port_name)):
                matches.append(introduction)
        return matches


def join_points_of(component: Component) -> list[tuple[JoinPoint, ProvidedPort]]:
    """Enumerate the join points a component exposes."""
    points = []
    for port_name, port in component.provided.items():
        for operation_name in port.interface.operations:
            points.append(
                (JoinPoint(component.name, port_name, operation_name), port)
            )
    return points

"""Dynamic aspect weaving (S8).

Pointcut/advice model with before/after/around/on-error advice, a weaver
supporting dynamic (re-matchable) and static (pre-resolved) modes, and
run-time aspect interchange.
"""

from repro.aspects.aspect import (
    Advice,
    AdviceKind,
    Aspect,
    Introduction,
    JoinPoint,
    Pointcut,
    join_points_of,
)
from repro.aspects.weaver import Weaver

__all__ = [
    "Advice",
    "AdviceKind",
    "Aspect",
    "Introduction",
    "JoinPoint",
    "Pointcut",
    "Weaver",
    "join_points_of",
]

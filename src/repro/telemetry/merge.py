"""Deterministic merge of per-region telemetry streams.

Each region of a partitioned run (:mod:`repro.parallel`) records its own
trace with its own tracer; after the run the coordinator interleaves the
per-region record streams into one merged timeline.  The merge order is
the total order **(sim-time, region-id, seq)** — simulated time first,
region id to break cross-region ties, and the record's position in its
own region's stream to break same-region ties — so the merged trace is a
pure function of the per-region traces.  Two same-seed runs (including
one whose worker died and was deterministically replayed) produce
byte-identical merged serializations, witnessed by
:func:`merged_checksum`.

Records are plain dicts (the :func:`repro.telemetry.export.jsonl_records`
shapes, tagged with ``region`` and ``seq``) so they cross process pipes
as ordinary picklable data.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.telemetry.tracer import Tracer
from repro.telemetry.export import jsonl_records

#: Sort-time for records without a timestamp: meta (provenance) sorts
#: before everything, counters (end-of-run totals) after everything.
_BEFORE_ALL = float("-inf")
_AFTER_ALL = float("inf")


def record_time(record: Mapping[str, Any]) -> float:
    """The merge timestamp of one exported record."""
    kind = record.get("type")
    if kind == "span":
        return record["start"]
    if kind in ("instant", "audit"):
        return record["time"]
    if kind == "meta":
        return _BEFORE_ALL
    return _AFTER_ALL  # counters and anything else without a clock


def region_records(tracer: Tracer, region: int) -> list[dict[str, Any]]:
    """Export one region's trace as pipe-ready dicts.

    Each record is tagged with its ``region`` and its ``seq`` (position
    in this region's own stream) — the tie-breakers of the merge order.
    Wall-clock attribution is excluded, as in every deterministic export.
    """
    records = []
    for seq, record in enumerate(jsonl_records(tracer)):
        record["region"] = region
        record["seq"] = seq
        records.append(record)
    return records


def merge_records(streams: Mapping[int, Iterable[Mapping[str, Any]]]
                  ) -> list[dict[str, Any]]:
    """Interleave per-region streams by (sim-time, region-id, seq)."""
    merged: list[dict[str, Any]] = []
    for region in sorted(streams):
        for record in streams[region]:
            record = dict(record)
            record.setdefault("region", region)
            merged.append(record)
    merged.sort(key=lambda r: (record_time(r), r["region"], r.get("seq", 0)))
    return merged


def merged_trace_json(records: Iterable[Mapping[str, Any]]) -> str:
    """Canonical serialization of a merged stream (one JSON line per
    record, sorted keys) — the byte-stability surface."""
    return "\n".join(json.dumps(record, sort_keys=True)
                     for record in records) + "\n"


def merged_checksum(records: Iterable[Mapping[str, Any]]) -> str:
    """SHA-256 of the canonical merged serialization — the partitioned
    run's determinism witness (compare across backends, restarts and
    repeated same-seed runs)."""
    return hashlib.sha256(merged_trace_json(records).encode()).hexdigest()


def write_merged_jsonl(records: Iterable[Mapping[str, Any]],
                       path: str | Path) -> Path:
    path = Path(path)
    path.write_text(merged_trace_json(records))
    return path

"""Folded-stack (flamegraph) export: where the time goes, stacked.

Produces the classic ``frame;frame;frame weight`` folded format consumed
by Brendan Gregg's ``flamegraph.pl`` and by speedscope
(https://www.speedscope.app — *Import* accepts folded stacks directly),
from the two profiles the platform already collects:

* **Span chains** (:func:`span_folded`) — finished spans from the
  tracer's ring, stacked by their ``parent_id`` chains.  Weights are
  integer microseconds of *self* time: simulated by default (byte-stable
  across same-seed runs), wall-clock on request for host-CPU hunting.
* **Kernel scheduling edges** (:func:`kernel_folded`) — per-site self
  time from :class:`~repro.telemetry.hooks.KernelInstrumentation`,
  stacked along each site's *dominant scheduling chain*: who most often
  scheduled it, who most often scheduled *that*, back to ``<external>``.
  The edge profile is aggregate (it never stored per-event stacks), so
  this is a dominant-path approximation — cycles (a timer rescheduling
  itself) are cut at first repeat.  Weights are wall microseconds by
  default, or deterministic fired-event counts with ``weight="events"``.

Workflow::

    lines = folded_stacks(tracer)            # spans + kernel, one file
    write_folded("run.folded", lines)
    # flamegraph.pl run.folded > run.svg     (or import into speedscope)
"""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.telemetry.hooks import EXTERNAL, KernelInstrumentation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.tracer import Tracer

#: Parent chains and scheduling chains are cut at this depth (defensive:
#: real traces are shallow; a corrupt parent link must not loop forever).
MAX_DEPTH = 64


def _frame(text: str) -> str:
    """Sanitize one frame label for the folded format (no ';' or space)."""
    return text.replace(";", ",").replace(" ", "_")


def _render(folded: dict[tuple[str, ...], int]) -> list[str]:
    """Deterministic output: one line per unique stack, sorted."""
    return [f"{';'.join(stack)} {weight}"
            for stack, weight in sorted(folded.items()) if weight > 0]


# ---------------------------------------------------------------------------
# Span parent chains
# ---------------------------------------------------------------------------


def span_folded(tracer: "Tracer", weight: str = "sim") -> list[str]:
    """Fold the tracer's finished spans into stacks via parent chains.

    Args:
        weight: ``"sim"`` — self simulated time (duration minus child
            durations, clamped at zero), deterministic; ``"wall"`` —
            host CPU attributed to the span, for profiling only.

    Spans whose parent was dropped from the ring (or never sampled)
    become stack roots — the surviving evidence still renders.
    """
    if weight not in ("sim", "wall"):
        raise ValueError(f"unknown span weight {weight!r}")
    spans = tracer.ring.materialize()
    by_id = {span.span_id: span for span in spans}
    child_time: dict[int, float] = {}
    if weight == "sim":
        for span in spans:
            if span.parent_id and span.parent_id in by_id:
                child_time[span.parent_id] = (
                    child_time.get(span.parent_id, 0.0) + span.duration)
    folded: dict[tuple[str, ...], int] = {}
    for span in spans:
        if weight == "wall":
            self_time = span.wall
        else:
            self_time = span.duration - child_time.get(span.span_id, 0.0)
        weight_us = int(round(self_time * 1_000_000))
        if weight_us <= 0:
            continue
        frames = []
        current = span
        for _ in range(MAX_DEPTH):
            frames.append(_frame(f"{current.category}/{current.name}"))
            parent = by_id.get(current.parent_id) if current.parent_id else None
            if parent is None:
                break
            current = parent
        frames.reverse()
        stack = tuple(frames)
        folded[stack] = folded.get(stack, 0) + weight_us
    return _render(folded)


# ---------------------------------------------------------------------------
# Kernel scheduling-edge profile
# ---------------------------------------------------------------------------


def kernel_folded(kernel: KernelInstrumentation,
                  weight: str = "wall") -> list[str]:
    """Fold per-site kernel self time along dominant scheduling chains.

    For each call site, walk the scheduling-edge profile backwards — the
    predecessor with the highest edge count, ties broken lexically —
    until ``<external>`` or a cycle, and emit the site's weight at the
    bottom of that chain.

    Args:
        weight: ``"wall"`` — per-site wall-clock self time in µs (the
            profiling default); ``"events"`` — fired-event counts,
            byte-stable across same-seed runs.
    """
    if weight not in ("wall", "events"):
        raise ValueError(f"unknown kernel weight {weight!r}")
    predecessors: dict[str, list[tuple[str, int]]] = {}
    for (src, dst), count in kernel.edges.items():
        predecessors.setdefault(dst, []).append((src, count))
    folded: dict[tuple[str, ...], int] = {}
    for name, stats in kernel.sites.items():
        if weight == "wall":
            weight_units = int(round(stats.wall * 1_000_000))
        else:
            weight_units = stats.fired
        if weight_units <= 0:
            continue
        chain = [name]
        seen = {name}
        current = name
        for _ in range(MAX_DEPTH):
            candidates = predecessors.get(current)
            if not candidates:
                break
            src = min(candidates, key=lambda item: (-item[1], item[0]))[0]
            if src == EXTERNAL:
                chain.append(EXTERNAL)
                break
            if src in seen:
                break  # scheduling cycle (e.g. a self-rescheduling timer)
            chain.append(src)
            seen.add(src)
            current = src
        chain.reverse()
        stack = tuple(_frame(f"kernel/{frame}") for frame in chain)
        folded[stack] = folded.get(stack, 0) + weight_units
    return _render(folded)


# ---------------------------------------------------------------------------
# Combined export
# ---------------------------------------------------------------------------


def folded_stacks(tracer: "Tracer", span_weight: str = "sim",
                  kernel_weight: str = "wall",
                  include_kernel: bool = True) -> list[str]:
    """Span stacks plus (when kernel hooks are installed) kernel stacks,
    ready for one folded file — the flamegraph shows both worlds side by
    side since their roots differ."""
    lines = span_folded(tracer, weight=span_weight)
    if include_kernel and tracer.kernel is not None:
        lines.extend(kernel_folded(tracer.kernel, weight=kernel_weight))
    return lines


def write_folded(path: str | Path, lines: list[str]) -> Path:
    """Write folded-stack lines to ``path`` (one stack per line)."""
    path = Path(path)
    path.write_text("\n".join(lines) + ("\n" if lines else ""))
    return path

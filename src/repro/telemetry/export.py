"""Trace exporters: JSONL, Chrome ``trace_event`` JSON, checksums.

The Chrome format loads directly in Perfetto (https://ui.perfetto.dev)
or ``chrome://tracing``: simulated seconds map to microseconds, each
span category gets its own named track, audit records and instants render
as point markers.

Determinism contract: exports contain **only** simulated-time data —
wall-clock attribution stays in the in-memory tracer and the terminal
summary — so two same-seed runs export byte-identical traces.  Sampling
preserves this: decisions come from a seeded stream, so the *sampled*
span set (and the export bytes) are identical across same-seed runs.
Pass ``include_wall=True`` to :func:`write_jsonl` to trade that away for
profiling data.

Spans are materialized lazily: the exporters iterate the tracer's
:class:`~repro.telemetry.ring.SpanRing` directly, so span objects exist
only while being serialized.  When the ring wrapped (spans were dropped
oldest-first) or a probabilistic sampling rate is active, exports carry
a ``meta`` record / ``otherData.sampling`` block stating the rate, seed,
drop count and ring capacity — a trace that isn't the whole story says
so in-band.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterator

from repro.telemetry.tracer import Tracer

#: Simulated seconds → trace microseconds.
_US = 1_000_000.0


def _ts(time: float) -> float:
    # Round so float noise from equal sim instants cannot differ between
    # serializations of the same run.
    return round(time * _US, 3)


# ---------------------------------------------------------------------------
# JSONL
# ---------------------------------------------------------------------------


def _sampling_meta(tracer: Tracer) -> dict[str, Any] | None:
    """Sampling/drop provenance, or None when the trace is complete
    (rate 1.0, nothing dropped) — keeping full traces byte-identical
    with their PR 2 serialization."""
    policy = tracer.sampling
    dropped = tracer.ring.dropped
    overrides = getattr(policy, "overrides", None)
    if policy.rate >= 1.0 and not overrides and not dropped:
        return None
    meta = {
        "sampling_rate": policy.rate,
        "sampling_seed": policy.seed,
        "always": sorted(policy.always),
        "dropped_spans": dropped,
        "ring_capacity": tracer.ring.capacity,
    }
    if overrides:
        # Only when present, so override-free traces keep their exact
        # pre-override serialization (checksum compatibility).
        meta["overrides"] = {category: overrides[category]
                             for category in sorted(overrides)}
    return meta


def jsonl_records(tracer: Tracer, include_wall: bool = False
                  ) -> Iterator[dict[str, Any]]:
    """Every recorded datum as one flat dict per line, in record order."""
    meta = _sampling_meta(tracer)
    if meta is not None:
        yield {"type": "meta", **meta}
    for span in tracer.ring:
        record = {
            "type": "span",
            "id": span.span_id,
            "parent": span.parent_id,
            "cat": span.category,
            "name": span.name,
            "start": span.start,
            "end": span.end,
            "args": span.args,
        }
        if include_wall:
            record["wall"] = span.wall
        yield record
    for instant in tracer.instants:
        yield {
            "type": "instant",
            "cat": instant.category,
            "name": instant.name,
            "time": instant.time,
            "args": instant.args,
        }
    for record in tracer.audit:
        yield {"type": "audit", **record.as_dict()}
    for name in sorted(tracer.counters):
        yield {"type": "counter", "name": name, "value": tracer.counters[name]}


def write_jsonl(tracer: Tracer, path: str | Path,
                include_wall: bool = False) -> Path:
    path = Path(path)
    with path.open("w") as sink:
        for record in jsonl_records(tracer, include_wall=include_wall):
            sink.write(json.dumps(record, sort_keys=True) + "\n")
    return path


# ---------------------------------------------------------------------------
# Chrome trace_event
# ---------------------------------------------------------------------------


def chrome_trace(tracer: Tracer) -> dict[str, Any]:
    """Build a Chrome ``trace_event`` document (JSON Object Format).

    Layout: one process ("repro"), one thread per span/instant category
    (named tracks), audit records as instants on a dedicated ``audit``
    track, counter totals as a single counter sample at the end of the
    run.
    """
    events: list[dict[str, Any]] = []
    tids: dict[str, int] = {}

    def tid_for(category: str) -> int:
        tid = tids.get(category)
        if tid is None:
            tid = tids[category] = len(tids) + 1
            events.append({
                "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
                "args": {"name": category},
            })
        return tid

    events.append({
        "ph": "M", "pid": 1, "tid": 0, "name": "process_name",
        "args": {"name": "repro"},
    })

    end_of_run = 0.0
    for span in tracer.ring:
        end_of_run = max(end_of_run, span.end)
        events.append({
            "ph": "X",
            "pid": 1,
            "tid": tid_for(span.category),
            "cat": span.category,
            "name": span.name,
            "ts": _ts(span.start),
            "dur": _ts(span.end) - _ts(span.start),
            "args": {"id": span.span_id, "parent": span.parent_id,
                     **span.args},
        })
    for instant in tracer.instants:
        end_of_run = max(end_of_run, instant.time)
        events.append({
            "ph": "i",
            "s": "t",
            "pid": 1,
            "tid": tid_for(instant.category),
            "cat": instant.category,
            "name": instant.name,
            "ts": _ts(instant.time),
            "args": instant.args,
        })
    for record in tracer.audit:
        end_of_run = max(end_of_run, record.time)
        events.append({
            "ph": "i",
            "s": "p",
            "pid": 1,
            "tid": tid_for("audit"),
            "cat": "audit." + record.kind,
            "name": record.kind,
            "ts": _ts(record.time),
            "args": record.fields,
        })
    if tracer.counters:
        events.append({
            "ph": "C",
            "pid": 1,
            "tid": tid_for("counters"),
            "name": "counters",
            "ts": _ts(end_of_run),
            "args": {name: tracer.counters[name]
                     for name in sorted(tracer.counters)},
        })
    other: dict[str, Any] = {"exporter": "repro.telemetry",
                             "clock": "simulated"}
    meta = _sampling_meta(tracer)
    if meta is not None:
        other["sampling"] = meta
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": other,
    }


def chrome_trace_json(tracer: Tracer) -> str:
    """Canonical serialization (sorted keys) of the Chrome trace."""
    return json.dumps(chrome_trace(tracer), sort_keys=True)


def write_chrome_trace(tracer: Tracer, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(chrome_trace_json(tracer) + "\n")
    return path


def trace_checksum(tracer: Tracer) -> str:
    """SHA-256 of the canonical Chrome trace — the determinism witness."""
    return hashlib.sha256(chrome_trace_json(tracer).encode()).hexdigest()

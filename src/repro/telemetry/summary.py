"""Terminal rendering: run summaries and timeline narration.

:func:`render_summary` turns a tracer into the table a developer reads
after a run — per-category simulated self-time profile, the hottest
kernel call sites by wall-clock, counters and audit totals.

:class:`Narrator` replaces the ad-hoc ``print(f"t={sim.now} ...")``
narration the demo and examples grew: every line is timestamped from the
simulated clock, recorded as a trace instant (so narration shows up in
exported traces), and optionally echoed live.
"""

from __future__ import annotations

from typing import Any, Callable, TYPE_CHECKING

from repro.telemetry.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.simulator import Simulator


def _table(title: str, headers: list[str], rows: list[list[Any]]) -> list[str]:
    cells = [[str(cell) for cell in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    head = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines = [title, head, "-" * len(head)]
    for row in cells:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return lines


def render_summary(tracer: Tracer, top: int = 10, wall: bool = True) -> str:
    """Human-readable profile of one traced run.

    ``wall=False`` drops the host-clock columns and ranks call sites by
    fired count instead of wall time, making the output byte-stable
    across identical seeded runs (the demo relies on this).
    """
    sections: list[str] = []

    policy = tracer.sampling
    if policy.rate < 1.0 or tracer.ring.dropped:
        sections.append(
            f"sampling: rate={policy.rate:g} seed={policy.seed} | "
            f"span buffer: {len(tracer.ring)}/{tracer.ring.capacity} slots, "
            f"{tracer.ring.dropped} dropped oldest-first")
        sections.append("")

    by_category: dict[str, tuple[int, float, float]] = {}
    for span in tracer.ring:
        count, sim_time, wall_s = by_category.get(span.category, (0, 0.0, 0.0))
        by_category[span.category] = (
            count + 1, sim_time + span.duration, wall_s + span.wall
        )
    if by_category:
        rows = [
            [category, count, f"{sim_time:.4f}"]
            + ([f"{wall_s * 1000:.2f}"] if wall else [])
            for category, (count, sim_time, wall_s) in sorted(
                by_category.items(), key=lambda item: (-item[1][1], item[0])
            )
        ]
        headers = ["category", "spans", "sim-s"] + (["wall-ms"] if wall else [])
        sections.extend(_table("span profile (by simulated time)",
                               headers, rows))

    kernel = tracer.kernel
    if kernel is not None and kernel.sites:
        if wall:
            ranked = kernel.hot_sites(top)
            rank_label = "by wall time"
        else:
            ranked = sorted(
                kernel.sites.items(),
                key=lambda item: (-item[1].fired, item[0]))[:top]
            rank_label = "by events fired"
        rows = [
            [name, stats.fired, stats.scheduled, stats.cancelled]
            + ([f"{stats.wall * 1000:.2f}"] if wall else [])
            for name, stats in ranked
        ]
        sections.append("")
        sections.extend(_table(
            f"hottest kernel call sites (top {min(top, len(kernel.sites))} "
            f"of {len(kernel.sites)}, {rank_label})",
            ["site", "fired", "scheduled", "cancelled"]
            + (["wall-ms"] if wall else []), rows))
        if kernel.timer_ticks:
            sections.append("")
            sections.extend(_table(
                "periodic timers",
                ["timer", "ticks"],
                [[name, count] for name, count in
                 sorted(kernel.timer_ticks.items(),
                        key=lambda item: (-item[1], item[0]))[:top]]))

    if tracer.counters:
        sections.append("")
        sections.extend(_table(
            "counters", ["counter", "value"],
            [[name, f"{tracer.counters[name]:g}"]
             for name in sorted(tracer.counters)]))

    audit_kinds = tracer.audit.kinds()
    if audit_kinds:
        sections.append("")
        sections.extend(_table(
            "decision audit", ["kind", "records"],
            [[kind, audit_kinds[kind]] for kind in sorted(audit_kinds)]))

    if not sections:
        return "telemetry summary: nothing recorded"
    return "\n".join(sections)


class Narrator:
    """Simulated-clock narration that also lands in the trace.

    ``fmt`` receives ``t`` (the simulated time) and ``line``; the default
    matches the platform demo's historical output so swapping the ad-hoc
    prints for a narrator keeps byte-stable output.
    """

    def __init__(self, sim: "Simulator",
                 fmt: str = "  t={t:5.2f}  {line}",
                 echo: bool = True,
                 sink: Callable[[str], None] = print) -> None:
        self.sim = sim
        self.fmt = fmt
        self.echo = echo
        self.sink = sink
        self.lines: list[str] = []

    def say(self, line: str) -> str:
        """Timestamp, record and (optionally) echo one narration line."""
        rendered = self.fmt.format(t=self.sim.now, line=line)
        self.lines.append(rendered)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.instant("narration", line)
        if self.echo:
            self.sink(rendered)
        return rendered

    def render(self) -> str:
        """The full narration transcript."""
        return "\n".join(self.lines)

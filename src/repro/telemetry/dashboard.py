"""PR-over-PR observability dashboard: is telemetry getting cheaper?

``BENCH_telemetry.json`` is one run's worth of truth; this module folds
a sequence of such runs — one per PR, commit or nightly — into a
history with regression deltas, so the cost of observing the platform is
itself observed over time (the same discipline ``BENCH_kernel.json``
applies to the kernel).

* :func:`category_stats` — fold one tracer's span ring into per-category
  stats (span count, simulated self time, wall ms, drops) — the shape
  the bench embeds under ``"categories"``.
* :class:`Dashboard` — an append-only JSONL history of run entries with
  :meth:`deltas` (metric-by-metric change between consecutive runs),
  :meth:`regressions` (changes in the *bad* direction beyond a
  threshold) and :meth:`render` (the terminal table).

CLI (CI appends one entry per build and uploads the history)::

    python -m repro.telemetry.dashboard BENCH_telemetry.json \
        --history TELEMETRY_DASHBOARD.jsonl --label PR7
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Any, Iterable, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.tracer import Tracer

#: Columns the rendered table shows: (header, dotted path into an entry).
DEFAULT_COLUMNS = [
    ("off ev/s", "kernel_events_per_sec.off"),
    ("disabled %", "kernel_overhead_pct.disabled"),
    ("sampled 1% %", "kernel_overhead_pct.sampled_1pct"),
    ("net smp %", "netsim.overhead_pct_sampled"),
    ("net full %", "netsim.overhead_pct"),
    ("drops", "drops"),
    ("par ev/s", "parallel.events_per_sec"),
    ("par x", "parallel.speedup"),
    ("stalls", "parallel.sync_stalls"),
    ("peak MB", "memory.peak_rss_mb"),
    ("B/node", "memory.bytes_per_node"),
]

#: A metric whose dotted path contains one of these moves in the *bad*
#: direction when it increases.
_LOWER_IS_BETTER = ("overhead", "drops", "dropped", "sync_stalls",
                    "peak_rss", "bytes_per_node")
#: ... and these when it decreases.
_HIGHER_IS_BETTER = ("per_sec", "speedup")


def category_stats(tracer: "Tracer") -> dict[str, dict[str, float]]:
    """Per-span-category stats for one run, ready for an entry."""
    stats: dict[str, list[float]] = {}
    for span in tracer.ring:
        row = stats.get(span.category)
        if row is None:
            row = stats[span.category] = [0, 0.0, 0.0]
        row[0] += 1
        row[1] += span.duration
        row[2] += span.wall
    return {
        category: {
            "spans": int(count),
            "sim_time": round(sim_time, 9),
            "wall_ms": round(wall * 1000, 3),
        }
        for category, (count, sim_time, wall) in sorted(stats.items())
    }


def _lookup(entry: dict, dotted: str) -> Any:
    value: Any = entry
    for key in dotted.split("."):
        if not isinstance(value, dict) or key not in value:
            return None
        value = value[key]
    return value


def _flatten(entry: dict, prefix: str = "") -> dict[str, float]:
    """Numeric leaves of an entry as dotted paths (labels excluded)."""
    flat: dict[str, float] = {}
    for key, value in entry.items():
        path = f"{prefix}{key}"
        if isinstance(value, dict):
            flat.update(_flatten(value, path + "."))
        elif isinstance(value, (int, float)) and not isinstance(value, bool):
            flat[path] = float(value)
    return flat


class Dashboard:
    """An ordered history of telemetry-bench entries with deltas."""

    def __init__(self, entries: Iterable[dict] | None = None) -> None:
        self.entries: list[dict] = list(entries or [])

    # -- building entries --------------------------------------------------

    @staticmethod
    def entry_from_bench(bench: dict, label: str) -> dict:
        """Fold one bench document (``BENCH_telemetry.json`` or
        ``BENCH_parallel.json``) into an entry."""
        kernel = bench.get("kernel", {})
        netsim = bench.get("netsim", {})
        entry = {
            "label": label,
            "unix_time": bench.get("unix_time"),
            "bench_mode": bench.get("mode"),
            "kernel_events_per_sec": dict(kernel.get("events_per_sec", {})),
            "kernel_overhead_pct": dict(kernel.get("overhead_pct", {})),
            "netsim": {
                key: netsim[key]
                for key in ("overhead_pct", "overhead_pct_sampled",
                            "messages_per_sec_off")
                if key in netsim
            },
            "categories": dict(bench.get("categories", {})),
            "drops": bench.get("drops", 0),
            "span_buffer_bytes": bench.get("span_buffer_bytes", 0),
        }
        parallel = bench.get("parallel")
        if parallel:
            entry["parallel"] = {
                "events_per_sec": parallel.get("events_per_sec"),
                "single_shard_events_per_sec":
                    bench.get("single_shard", {}).get("events_per_sec"),
                "speedup": bench.get("speedup"),
                "cores": bench.get("cores"),
                "restarts": bench.get("restart", {}).get("restarts"),
                "deterministic":
                    all(bench.get("determinism", {}).values()),
            }
            overlapped = bench.get("overlapped")
            if overlapped:
                # The overlapped exchange's stall count is the committed
                # claim; the barrier's rides along as the baseline.
                entry["parallel"]["sync_stalls"] = \
                    overlapped.get("sync_stalls")
                entry["parallel"]["barrier_sync_stalls"] = \
                    parallel.get("sync_stalls")
        memory = bench.get("memory")
        if memory:
            entry["memory"] = {
                key: memory[key]
                for key in ("peak_rss_mb", "bytes_per_node",
                            "bytes_per_node_classic")
                if key in memory
            }
        return entry

    def add(self, entry: dict) -> dict:
        self.entries.append(entry)
        return entry

    # -- persistence (JSONL, one entry per line) ---------------------------

    @classmethod
    def load(cls, path: str | Path) -> "Dashboard":
        path = Path(path)
        if not path.exists():
            return cls()
        entries = [json.loads(line)
                   for line in path.read_text().splitlines() if line.strip()]
        return cls(entries)

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text("".join(json.dumps(entry, sort_keys=True) + "\n"
                                for entry in self.entries))
        return path

    # -- analysis ----------------------------------------------------------

    def deltas(self) -> list[dict[str, float]]:
        """Percent change of every shared numeric metric between each
        consecutive pair of entries (one dict per pair, keyed by path)."""
        out: list[dict[str, float]] = []
        for previous, current in zip(self.entries, self.entries[1:]):
            flat_prev, flat_cur = _flatten(previous), _flatten(current)
            pair: dict[str, float] = {}
            for path, value in flat_cur.items():
                base = flat_prev.get(path)
                if base is None or base == 0:
                    continue
                pair[path] = (value / base - 1.0) * 100.0
            out.append(pair)
        return out

    def regressions(self, threshold_pct: float = 10.0
                    ) -> list[tuple[str, str, float]]:
        """(entry label, metric path, delta %) for every consecutive-run
        change in the *bad* direction larger than ``threshold_pct``."""
        found: list[tuple[str, str, float]] = []
        for entry, pair in zip(self.entries[1:], self.deltas()):
            label = str(entry.get("label", "?"))
            for path, delta in sorted(pair.items()):
                if any(token in path for token in _LOWER_IS_BETTER):
                    bad = delta > threshold_pct
                elif any(token in path for token in _HIGHER_IS_BETTER):
                    bad = delta < -threshold_pct
                else:
                    continue
                if bad:
                    found.append((label, path, round(delta, 3)))
        return found

    # -- rendering ---------------------------------------------------------

    def render(self, columns: list[tuple[str, str]] | None = None,
               threshold_pct: float = 10.0) -> str:
        """The PR-over-PR table plus a regression verdict line."""
        if not self.entries:
            return "telemetry dashboard: no runs recorded"
        columns = columns or DEFAULT_COLUMNS
        headers = ["run"] + [header for header, _ in columns]
        rows: list[list[str]] = []
        previous: dict | None = None
        for entry in self.entries:
            row = [str(entry.get("label", "?"))]
            for _, path in columns:
                value = _lookup(entry, path)
                if value is None:
                    row.append("-")
                    continue
                cell = f"{value:,.1f}" if isinstance(value, float) else str(value)
                base = _lookup(previous, path) if previous else None
                if isinstance(base, (int, float)) and base:
                    delta = (float(value) / float(base) - 1.0) * 100.0
                    cell += f" ({delta:+.1f}%)"
                row.append(cell)
            rows.append(row)
            previous = entry
        widths = [max(len(headers[i]), *(len(row[i]) for row in rows))
                  for i in range(len(headers))]
        lines = ["telemetry dashboard (PR over PR)",
                 "  ".join(h.ljust(w) for h, w in zip(headers, widths))]
        lines.append("-" * len(lines[1]))
        lines.extend("  ".join(cell.ljust(w) for cell, w in zip(row, widths))
                     for row in rows)
        regressions = self.regressions(threshold_pct)
        if regressions:
            lines.append("")
            lines.append(f"REGRESSIONS (> {threshold_pct:g}% worse than "
                         f"previous run):")
            lines.extend(f"  {label}: {path} {delta:+.1f}%"
                         for label, path, delta in regressions)
        else:
            lines.append("")
            lines.append(f"no metric regressed more than {threshold_pct:g}% "
                         f"vs its previous run")
        return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Fold a BENCH_telemetry.json run into the PR-over-PR "
                    "telemetry dashboard and render it.")
    parser.add_argument("bench", nargs="?", type=Path,
                        help="BENCH_telemetry.json to append (omit to just "
                             "render the history)")
    parser.add_argument("--history", type=Path,
                        default=Path("TELEMETRY_DASHBOARD.jsonl"),
                        help="JSONL history file (default: %(default)s)")
    parser.add_argument("--label", default=None,
                        help="entry label (default: bench mode + unix time)")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression threshold in percent")
    parser.add_argument("--fail-on-regression", action="store_true",
                        help="exit 1 when the newest entry regressed")
    cli = parser.parse_args(argv)

    dashboard = Dashboard.load(cli.history)
    if cli.bench is not None:
        bench = json.loads(cli.bench.read_text())
        label = cli.label or (f"{bench.get('mode', 'run')}@"
                              f"{int(bench.get('unix_time', 0))}")
        dashboard.add(Dashboard.entry_from_bench(bench, label))
        dashboard.save(cli.history)
    print(dashboard.render(threshold_pct=cli.threshold))
    if cli.fail_on_regression:
        # Gate only the newest entry: historical regressions are already
        # on the record (and were accepted when committed) — re-failing
        # every subsequent run on them would wedge the gate forever.
        newest = Dashboard(dashboard.entries[-2:])
        if newest.regressions(cli.threshold):
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry
    sys.exit(main())

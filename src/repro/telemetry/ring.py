"""Preallocated fixed-slot span storage with lazy materialization.

PR 2 appended one :class:`~repro.telemetry.tracer.Span` object (plus its
args dict) to an unbounded list per recorded span — fine for bounded
scenario runs, hostile to production: unbounded memory and two
allocations on every hot-path record.  The ring replaces that with
*fixed-slot* storage:

* **Preallocated.**  Eight parallel lists of length ``capacity`` are
  allocated once; recording a span is eight indexed stores into existing
  slots — no container allocation, no resize, no GC pressure.
* **Bounded, oldest-first.**  When the ring is full, the next record
  overwrites the oldest slot and increments :attr:`dropped`.  Recent
  history survives; the drop counter tells you the window was exceeded
  (size the ring up, or sample down).
* **Lazy materialization.**  :class:`Span` objects exist only while a
  span is *open* (on the tracer's stack or riding a message) and again
  at *export* time: iterating the ring rebuilds lightweight spans
  oldest-first.  The steady-state record path never constructs one.

``capacity`` defaults to :data:`DEFAULT_CAPACITY` slots; at eight slots
per span the resident cost is a few MB and — unlike PR 2 — independent
of run length.
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING, Any, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry.tracer import Span

#: Default number of span slots (~64k spans; a few MB resident).
DEFAULT_CAPACITY = 65_536


class SpanRing:
    """Fixed-capacity span store: eight parallel preallocated columns."""

    __slots__ = ("capacity", "dropped", "_next", "_count",
                 "_ids", "_parents", "_cats", "_names",
                 "_starts", "_ends", "_args", "_walls")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"ring capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: Spans overwritten because the ring was full (oldest-first).
        self.dropped = 0
        self._next = 0  # slot the next append writes
        self._count = 0  # live slots (<= capacity)
        self._ids = [0] * capacity
        self._parents = [0] * capacity
        self._cats: list[str | None] = [None] * capacity
        self._names: list[str | None] = [None] * capacity
        self._starts = [0.0] * capacity
        self._ends = [0.0] * capacity
        #: args dicts by reference, or None for arg-less spans — the hot
        #: paths pass None so no empty dict is ever allocated.
        self._args: list[dict[str, Any] | None] = [None] * capacity
        self._walls = [0.0] * capacity

    # -- recording (the hot path) -----------------------------------------

    def append(self, span_id: int, parent_id: int, category: str, name: str,
               start: float, end: float, args: dict[str, Any] | None,
               wall: float) -> None:
        """Write one finished span into the next slot (overwrite-oldest)."""
        i = self._next
        if self._count == self.capacity:
            self.dropped += 1
        else:
            self._count += 1
        self._ids[i] = span_id
        self._parents[i] = parent_id
        self._cats[i] = category
        self._names[i] = name
        self._starts[i] = start
        self._ends[i] = end
        self._args[i] = args
        self._walls[i] = wall
        i += 1
        self._next = i if i < self.capacity else 0

    # -- reading (materialization) ----------------------------------------

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> "Iterator[Span]":
        """Yield surviving spans oldest-first as materialized objects."""
        from repro.telemetry.tracer import Span  # local: avoids cycle

        capacity = self.capacity
        start = (self._next - self._count) % capacity
        for k in range(self._count):
            i = start + k
            if i >= capacity:
                i -= capacity
            args = self._args[i]
            span = Span(self._ids[i], self._parents[i],
                        self._cats[i], self._names[i],
                        self._starts[i], {} if args is None else args)
            span.end = self._ends[i]
            span.wall = self._walls[i]
            yield span

    def materialize(self) -> "list[Span]":
        """All surviving spans, oldest-first, as a fresh list."""
        return list(self)

    # -- maintenance -------------------------------------------------------

    def clear(self) -> None:
        """Forget every span (slots stay allocated; references released)."""
        capacity = self.capacity
        self._cats[:] = [None] * capacity
        self._names[:] = [None] * capacity
        self._args[:] = [None] * capacity
        self._next = 0
        self._count = 0
        self.dropped = 0

    @property
    def nbytes(self) -> int:
        """Resident container bytes of the eight preallocated columns
        (the fixed cost the ring pins regardless of run length)."""
        return sum(sys.getsizeof(column) for column in (
            self._ids, self._parents, self._cats, self._names,
            self._starts, self._ends, self._args, self._walls))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SpanRing({len(self)}/{self.capacity} slots, "
                f"dropped={self.dropped})")

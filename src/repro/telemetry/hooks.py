"""Kernel instrumentation: where do the events (and the time) go?

Implements the hook protocol of :meth:`repro.events.Simulator.set_hooks`:
``event_scheduled`` / ``event_begin`` / ``event_end`` / ``event_cancelled``
plus ``timer_tick`` from :class:`~repro.events.PeriodicTimer`.

Two levels of detail:

* ``"aggregate"`` (default) — per-callsite counters only: fire count,
  wall-clock self time, cancellations, plus a *scheduling edge* profile
  (which site scheduled which site, so every event is attributable to
  its scheduling site without storing per-event records).
* ``"events"`` — additionally records one instant per fired event and
  per timer tick into the tracer (with the scheduling site as an
  argument), which a Chrome trace renders as the full kernel timeline.
  Use for bounded scenario runs, not million-event benches.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.telemetry.tracer import Tracer

#: Attribution label for events scheduled outside any event callback
#: (test drivers, main scripts, setup code).
EXTERNAL = "<external>"


def site_name(callback: Any) -> str:
    """Human-readable attribution label for an event callback.

    Bound methods of an object with a ``name``-carrying telemetry label
    (e.g. :class:`~repro.events.PeriodicTimer`) use that label, so two
    monitors ticking through the same ``_tick`` method stay distinct.
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        label = getattr(owner, "name", None)
        if isinstance(label, str) and type(owner).__name__ == "PeriodicTimer":
            return label
    return getattr(callback, "__qualname__", None) or type(callback).__name__


class SiteStats:
    """Aggregate per-callsite kernel statistics."""

    __slots__ = ("fired", "wall", "scheduled", "cancelled")

    def __init__(self) -> None:
        self.fired = 0
        self.wall = 0.0
        self.scheduled = 0
        self.cancelled = 0


class KernelInstrumentation:
    """The hook object wired into the simulator by ``install``."""

    def __init__(self, tracer: Tracer, detail: str = "aggregate") -> None:
        if detail not in ("aggregate", "events"):
            raise ValueError(f"unknown kernel detail {detail!r}")
        self.tracer = tracer
        self.detail = detail
        self.sites: dict[str, SiteStats] = {}
        #: (scheduling site → callback site) → count.
        self.edges: Counter[tuple[str, str]] = Counter()
        self.timer_ticks: Counter[str] = Counter()
        self.events_seen = 0
        self._current = EXTERNAL
        #: events-mode only: seq → scheduling site, popped on fire/cancel.
        self._scheduled_by: dict[int, str] = {}

    def clear(self) -> None:
        self.sites.clear()
        self.edges.clear()
        self.timer_ticks.clear()
        self.events_seen = 0
        self._current = EXTERNAL
        self._scheduled_by.clear()

    def _site(self, name: str) -> SiteStats:
        stats = self.sites.get(name)
        if stats is None:
            stats = self.sites[name] = SiteStats()
        return stats

    # -- hook protocol ----------------------------------------------------

    def event_scheduled(self, event: Any) -> None:
        target = site_name(event.callback)
        self._site(target).scheduled += 1
        self.edges[(self._current, target)] += 1
        if self.detail == "events":
            self._scheduled_by[event.seq] = self._current

    def event_begin(self, event: Any) -> None:
        self._current = site_name(event.callback)

    def event_end(self, event: Any, wall: float) -> None:
        stats = self._site(self._current)
        stats.fired += 1
        stats.wall += wall
        self.events_seen += 1
        if self.detail == "events":
            self.tracer.instant(
                "kernel", self._current,
                seq=event.seq,
                by=self._scheduled_by.pop(event.seq, EXTERNAL),
            )
        self._current = EXTERNAL

    def event_cancelled(self, event: Any) -> None:
        self._site(site_name(event.callback)).cancelled += 1
        if self.detail == "events":
            self._scheduled_by.pop(event.seq, None)

    def timer_tick(self, timer: Any) -> None:
        self.timer_ticks[timer.name] += 1

    # -- queries ----------------------------------------------------------

    def hot_sites(self, top: int = 10) -> list[tuple[str, SiteStats]]:
        """Call sites ranked by wall-clock self time."""
        ranked = sorted(self.sites.items(),
                        key=lambda item: (-item[1].wall, item[0]))
        return ranked[:top]

    def scheduling_profile(self) -> list[tuple[str, str, int]]:
        """(scheduler site, callback site, count), most frequent first."""
        return [(src, dst, count) for (src, dst), count in
                sorted(self.edges.items(),
                       key=lambda item: (-item[1], item[0]))]

"""Kernel instrumentation: where do the events (and the time) go?

Implements the hook protocol of :meth:`repro.events.Simulator.set_hooks`:
``event_scheduled`` / ``event_begin`` / ``event_end`` / ``event_cancelled``
plus ``timer_tick`` from :class:`~repro.events.PeriodicTimer`, and the
hot-path sampling contract:

* hooks expose an integer :attr:`skip` the event loop counts down
  *inline* — each unsampled schedule pays one decrement, no call;
* when ``skip`` reaches zero the loop marks ``event.traced = True`` and
  calls :meth:`event_scheduled`, which replenishes ``skip`` with the
  next geometric gap from its :class:`~repro.telemetry.sampling.Sampler`;
* ``event_begin`` / ``event_end`` / ``event_cancelled`` then fire only
  for traced events, so at a 1% rate 99% of events ride within a few
  percent of the uninstrumented path.

Without a sampler (rate 1.0), ``skip`` stays 0 and every event is
traced — PR 2 behaviour.  Note that at rates < 1 the *scheduling edge*
profile is a sampled subset: events scheduled from inside an unsampled
callback attribute to ``EXTERNAL``, because their true scheduler was
never observed.

Two levels of detail:

* ``"aggregate"`` (default) — per-callsite counters only: fire count,
  wall-clock self time, cancellations, plus a *scheduling edge* profile
  (which site scheduled which site, so every traced event is
  attributable to its scheduling site without storing per-event records).
* ``"events"`` — additionally records one instant per traced fired event
  and per timer tick into the tracer (with the scheduling site as an
  argument), which a Chrome trace renders as the full kernel timeline.
  Use for bounded scenario runs (or sampled production runs), not
  full-rate million-event benches.
"""

from __future__ import annotations

from collections import Counter
from typing import Any

from repro.telemetry.sampling import Sampler
from repro.telemetry.tracer import Tracer

#: Attribution label for events scheduled outside any traced event
#: callback (test drivers, main scripts, setup code — and, at sampling
#: rates below 1.0, callbacks whose own event went unsampled).
EXTERNAL = "<external>"


def site_name(callback: Any) -> str:
    """Human-readable attribution label for an event callback.

    Bound methods of an object with a ``name``-carrying telemetry label
    (e.g. :class:`~repro.events.PeriodicTimer`) use that label, so two
    monitors ticking through the same ``_tick`` method stay distinct.
    """
    owner = getattr(callback, "__self__", None)
    if owner is not None:
        label = getattr(owner, "name", None)
        if isinstance(label, str) and type(owner).__name__ == "PeriodicTimer":
            return label
    return getattr(callback, "__qualname__", None) or type(callback).__name__


class SiteStats:
    """Aggregate per-callsite kernel statistics."""

    __slots__ = ("fired", "wall", "scheduled", "cancelled")

    def __init__(self) -> None:
        self.fired = 0
        self.wall = 0.0
        self.scheduled = 0
        self.cancelled = 0


class KernelInstrumentation:
    """The hook object wired into the simulator by ``install``.

    ``sampler`` draws the geometric gaps between traced events; ``None``
    traces everything (the rate-1.0 fast path never consults it).
    """

    __slots__ = ("tracer", "detail", "sites", "edges", "timer_ticks",
                 "events_seen", "skip", "_sampler", "_current",
                 "_scheduled_by")

    def __init__(self, tracer: Tracer, detail: str = "aggregate",
                 sampler: Sampler | None = None) -> None:
        if detail not in ("aggregate", "events"):
            raise ValueError(f"unknown kernel detail {detail!r}")
        self.tracer = tracer
        self.detail = detail
        self._sampler = sampler
        self.sites: dict[str, SiteStats] = {}
        #: (scheduling site → callback site) → count, traced events only.
        self.edges: Counter[tuple[str, str]] = Counter()
        self.timer_ticks: Counter[str] = Counter()
        #: Traced (sampled) events fired so far.
        self.events_seen = 0
        #: Scheduled events the loop auto-drops before the next traced
        #: one — read and decremented inline by ``Simulator.at`` /
        #: ``schedule_many`` so unsampled schedules never call in here.
        self.skip = sampler.gap() if sampler is not None else 0
        self._current = EXTERNAL
        #: events-mode only: seq → scheduling site, popped on fire/cancel.
        self._scheduled_by: dict[int, str] = {}

    def clear(self) -> None:
        self.sites.clear()
        self.edges.clear()
        self.timer_ticks.clear()
        self.events_seen = 0
        self._current = EXTERNAL
        self._scheduled_by.clear()
        sampler = self._sampler
        if sampler is not None:
            sampler.reset()
            self.skip = sampler.gap()
        else:
            self.skip = 0

    def _site(self, name: str) -> SiteStats:
        stats = self.sites.get(name)
        if stats is None:
            stats = self.sites[name] = SiteStats()
        return stats

    # -- hook protocol (traced events only) --------------------------------

    def event_scheduled(self, event: Any) -> None:
        sampler = self._sampler
        if sampler is not None:
            self.skip = sampler.gap()
        target = site_name(event.callback)
        self._site(target).scheduled += 1
        self.edges[(self._current, target)] += 1
        if self.detail == "events":
            self._scheduled_by[event.seq] = self._current

    def event_begin(self, event: Any) -> None:
        self._current = site_name(event.callback)

    def event_end(self, event: Any, wall: float) -> None:
        stats = self._site(self._current)
        stats.fired += 1
        stats.wall += wall
        self.events_seen += 1
        if self.detail == "events":
            self.tracer.instant(
                "kernel", self._current,
                seq=event.seq,
                by=self._scheduled_by.pop(event.seq, EXTERNAL),
            )
        self._current = EXTERNAL

    def event_cancelled(self, event: Any) -> None:
        self._site(site_name(event.callback)).cancelled += 1
        if self.detail == "events":
            self._scheduled_by.pop(event.seq, None)

    def timer_tick(self, timer: Any) -> None:
        self.timer_ticks[timer.name] += 1

    # -- queries ----------------------------------------------------------

    def hot_sites(self, top: int = 10) -> list[tuple[str, SiteStats]]:
        """Call sites ranked by wall-clock self time."""
        ranked = sorted(self.sites.items(),
                        key=lambda item: (-item[1].wall, item[0]))
        return ranked[:top]

    def scheduling_profile(self) -> list[tuple[str, str, int]]:
        """(scheduler site, callback site, count), most frequent first."""
        return [(src, dst, count) for (src, dst), count in
                sorted(self.edges.items(),
                       key=lambda item: (-item[1], item[0]))]

"""Head-based trace sampling: keep telemetry on under production load.

PR 2's tracer recorded everything, which cost 60–150% on the kernel hot
path when enabled.  This module makes *enabled* telemetry affordable by
deciding, **once, at the start of each trace root**, whether the whole
trace (the root span plus every child it will ever have) is recorded:

* :class:`SamplingPolicy` — the configuration: a probabilistic ``rate``
  in [0, 1], a set of ``always`` categories that bypass the coin flip
  (decision audit, reconfiguration, RAML spans are too valuable and too
  rare to sample away), and a ``seed`` making the sampled subset a pure
  function of the workload.
* :class:`Sampler` — the decision stream: a 64-bit LCG stepped once per
  decision.  Two same-seed runs over the same workload draw identical
  sequences, so the sampled span set — and therefore the exported trace
  bytes — are identical (the determinism contract extends to sampling).
* :meth:`Sampler.gap` — geometric gap draws for the kernel hot path:
  instead of flipping a coin per scheduled event, the instrumentation
  draws "how many events to *skip* until the next sampled one" and the
  event loop pays a single integer decrement per unsampled event (see
  ``Simulator.at`` and :class:`~repro.telemetry.hooks.KernelInstrumentation`).

Head-based means children inherit the root's fate: a sampled message
flow records all its hop segments; an unsampled one records nothing —
traces stay internally complete, never partially torn.
"""

from __future__ import annotations

from math import log, log1p
from typing import Iterable

#: 64-bit LCG constants (Knuth's MMIX) — full-period, fast to step.
_MULT = 6364136223846793005
_INC = 1442695040888963407
_MASK = (1 << 64) - 1
#: Decisions compare the top 53 bits (a float mantissa's worth).
_TOP = 1 << 53

#: Splitmix-style stream separators so the span sampler and the kernel
#: sampler draw independent deterministic sequences from one seed.
_STREAM_SALT = 0x9E3779B97F4A7C15

#: A gap longer than any realistic run — "never sample" for rate 0.
NEVER = 1 << 62

#: Categories recorded regardless of the probabilistic rate by default:
#: meta-level decisions are rare, causally precious, and the whole point
#: of the platform — sampling them away would blind the audit trail.
ALWAYS_ON_CATEGORIES = frozenset(
    {"raml", "reconfig", "audit", "adaptation", "control"})


class SamplingPolicy:
    """What fraction of trace roots to record, and which never to drop.

    ``rate=1.0`` (the default) reproduces PR 2's record-everything
    behaviour bit-for-bit; production installs pick ``rate=0.01`` and
    keep the ``always`` categories for the decision audit.

    ``overrides`` maps span categories to their own rates, overriding the
    global ``rate`` per category: a chatty lineage category can run at
    0.1% while everything else samples at 1%::

        SamplingPolicy(rate=0.01, overrides={"net.msg": 0.001})

    Overrides are *stream-neutral*: every non-always root draws exactly
    one decision from the sampler whether or not its category is
    overridden, so adding an override never shifts which roots of other
    categories get sampled.  An ``always`` category beats an override.
    """

    __slots__ = ("rate", "always", "seed", "overrides")

    def __init__(self, rate: float = 1.0,
                 always: Iterable[str] = ALWAYS_ON_CATEGORIES,
                 seed: int = 0,
                 overrides: dict[str, float] | None = None) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.always = frozenset(always)
        self.seed = int(seed)
        self.overrides: dict[str, float] = {}
        for category, category_rate in (overrides or {}).items():
            if not 0.0 <= category_rate <= 1.0:
                raise ValueError(
                    f"sampling rate for {category!r} must be in [0, 1], "
                    f"got {category_rate}")
            self.overrides[category] = float(category_rate)

    def rate_for(self, category: str) -> float:
        """Effective head-sampling rate for one span category."""
        if category in self.always:
            return 1.0
        return self.overrides.get(category, self.rate)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"SamplingPolicy(rate={self.rate}, "
                f"always={sorted(self.always)}, seed={self.seed}, "
                f"overrides={self.overrides})")


class Sampler:
    """A deterministic stream of keep/drop decisions.

    One instance per consumer (span roots, kernel events) with distinct
    ``stream`` ids, so enabling one consumer never shifts another's
    decisions.
    """

    __slots__ = ("rate", "seed", "stream", "_state", "_threshold")

    def __init__(self, rate: float, seed: int = 0, stream: int = 0) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ValueError(f"sampling rate must be in [0, 1], got {rate}")
        self.rate = float(rate)
        self.seed = int(seed)
        self.stream = int(stream)
        self._threshold = int(self.rate * _TOP)
        self._state = 0
        self.reset()

    def reset(self) -> None:
        """Rewind to the first decision (used by ``Tracer.clear`` so a
        cleared tracer reproduces the same sampled trace)."""
        self._state = ((self.seed + 1) * _STREAM_SALT
                       + (self.stream + 1) * 0xBF58476D1CE4E5B9) & _MASK

    def sample(self) -> bool:
        """One keep/drop decision; steps the stream exactly once."""
        state = (self._state * _MULT + _INC) & _MASK
        self._state = state
        return (state >> 11) < self._threshold

    def sample_at(self, rate: float) -> bool:
        """One keep/drop decision at a per-call rate (category override).

        Steps the stream exactly once, like :meth:`sample`, so mixing
        overridden and default-rate decisions never shifts the stream —
        the same root always sees the same draw.
        """
        state = (self._state * _MULT + _INC) & _MASK
        self._state = state
        return (state >> 11) < int(rate * _TOP)

    def gap(self) -> int:
        """How many decisions to auto-drop before the next kept one.

        A geometric draw equivalent to repeated :meth:`sample` calls but
        paid once per *kept* event: the event loop counts this integer
        down and only calls back into instrumentation when it hits zero.
        """
        rate = self.rate
        if rate >= 1.0:
            return 0
        if rate <= 0.0:
            return NEVER
        state = (self._state * _MULT + _INC) & _MASK
        self._state = state
        uniform = ((state >> 11) + 1) / _TOP  # in (0, 1]
        return int(log(uniform) / log1p(-rate))

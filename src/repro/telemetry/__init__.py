"""Telemetry — sim-time-aware tracing, metrics and RAML decision audit.

The platform's cross-cutting observability layer: the meta-level can only
adapt what it can observe, and this package makes the platform itself
observable.

* :class:`Tracer` — spans/instants/counters on the **simulated** clock
  with wall-clock attribution on the side; free when disabled.
* :class:`KernelInstrumentation` — schedule/fire/cancel/tick hooks on the
  event kernel, attributing every event to its scheduling site.
* Message lineage — :class:`repro.netsim.Network` emits per-hop link
  segments under an end-to-end flow span for every traced message.
* :class:`AuditLog` — why the RAML did what it did: introspection
  queries, intercession actions, policy firings, reconfiguration
  transaction phases, control-loop actuations.
* Exporters — JSONL, Chrome ``trace_event`` (Perfetto-loadable), and the
  terminal summary/narrator.

Quick start::

    from repro import telemetry

    tracer = telemetry.install(sim)            # before sim.run(...)
    ...
    print(telemetry.render_summary(tracer))
    telemetry.write_chrome_trace(tracer, "run.trace.json")
"""

from repro.telemetry.audit import AuditLog, AuditRecord
from repro.telemetry.export import (
    chrome_trace,
    chrome_trace_json,
    jsonl_records,
    trace_checksum,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.hooks import EXTERNAL, KernelInstrumentation, site_name
from repro.telemetry.instrument import (
    install,
    instrument_assembly,
    instrument_connector,
    uninstall,
)
from repro.telemetry.summary import Narrator, render_summary
from repro.telemetry.tracer import Instant, Span, Tracer

__all__ = [
    "AuditLog",
    "AuditRecord",
    "EXTERNAL",
    "Instant",
    "KernelInstrumentation",
    "Narrator",
    "Span",
    "Tracer",
    "chrome_trace",
    "chrome_trace_json",
    "install",
    "instrument_assembly",
    "instrument_connector",
    "jsonl_records",
    "render_summary",
    "site_name",
    "trace_checksum",
    "uninstall",
    "write_chrome_trace",
    "write_jsonl",
]

"""Telemetry — sim-time-aware tracing, metrics and RAML decision audit.

The platform's cross-cutting observability layer: the meta-level can only
adapt what it can observe, and this package makes the platform itself
observable — at production overhead.

* :class:`Tracer` — spans/instants/counters on the **simulated** clock
  with wall-clock attribution on the side; free when disabled.  Spans
  land in a preallocated :class:`SpanRing` (overwrite-oldest, lazy
  materialization) and head-based :class:`SamplingPolicy` sampling keeps
  the enabled overhead production-grade while always-on categories
  (RAML/reconfiguration decisions) record at any rate.
* :class:`KernelInstrumentation` — schedule/fire/cancel/tick hooks on the
  event kernel, attributing every event to its scheduling site; under a
  sampling policy the kernel pays one integer decrement per unsampled
  event.
* Message lineage — :class:`repro.netsim.Network` emits per-hop link
  segments under an end-to-end flow span for every traced message.
* :class:`AuditLog` — why the RAML did what it did: introspection
  queries, intercession actions, policy firings, reconfiguration
  transaction phases, control-loop actuations.
* Exporters — JSONL, Chrome ``trace_event`` (Perfetto-loadable),
  folded stacks (:func:`folded_stacks` → flamegraph.pl / speedscope),
  the terminal summary/narrator, and the PR-over-PR
  :class:`~repro.telemetry.dashboard.Dashboard`.

Quick start (one-call setup — tracer, sampler and span ring wired)::

    from repro import telemetry

    tracer = telemetry.configure(
        sim, sample_rate=0.01, seed=7,
        categories={"net.msg": 0.001})   # per-category rate override
    ...
    print(telemetry.render_summary(tracer))
    telemetry.write_chrome_trace(tracer, "run.trace.json")
    telemetry.write_folded("run.folded", telemetry.folded_stacks(tracer))
"""

from repro.telemetry.audit import AuditLog, AuditRecord
from repro.telemetry.dashboard import Dashboard, category_stats
from repro.telemetry.export import (
    chrome_trace,
    chrome_trace_json,
    jsonl_records,
    trace_checksum,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.flamegraph import (
    folded_stacks,
    kernel_folded,
    span_folded,
    write_folded,
)
from repro.telemetry.hooks import EXTERNAL, KernelInstrumentation, site_name
from repro.telemetry.merge import (
    merge_records,
    merged_checksum,
    merged_trace_json,
    region_records,
    write_merged_jsonl,
)
from repro.telemetry.instrument import (
    configure,
    install,
    instrument_assembly,
    instrument_connector,
    uninstall,
)
from repro.telemetry.ring import DEFAULT_CAPACITY, SpanRing
from repro.telemetry.sampling import ALWAYS_ON_CATEGORIES, Sampler, SamplingPolicy
from repro.telemetry.summary import Narrator, render_summary
from repro.telemetry.tracer import Instant, Span, Tracer

__all__ = [
    "ALWAYS_ON_CATEGORIES",
    "AuditLog",
    "AuditRecord",
    "DEFAULT_CAPACITY",
    "Dashboard",
    "EXTERNAL",
    "Instant",
    "KernelInstrumentation",
    "Narrator",
    "Sampler",
    "SamplingPolicy",
    "Span",
    "SpanRing",
    "Tracer",
    "category_stats",
    "chrome_trace",
    "chrome_trace_json",
    "configure",
    "folded_stacks",
    "install",
    "instrument_assembly",
    "instrument_connector",
    "jsonl_records",
    "kernel_folded",
    "merge_records",
    "merged_checksum",
    "merged_trace_json",
    "region_records",
    "render_summary",
    "site_name",
    "span_folded",
    "trace_checksum",
    "uninstall",
    "write_chrome_trace",
    "write_folded",
    "write_jsonl",
    "write_merged_jsonl",
]

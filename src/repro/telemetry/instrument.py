"""Installation and assembly instrumentation.

:func:`install` is the one-call entry point: create a tracer, attach it
to the simulator (``sim.tracer``) and wire the kernel hooks.  Every
subsystem that takes a simulator — the network, RAML, the reconfiguration
engine, control loops, QoS monitors — discovers the tracer through that
attribute, so installing telemetry *after* building a system still
captures everything from that point on.

Connectors, ports and bindings do not hold a simulator; they are traced
through their existing observer pipelines via
:func:`instrument_assembly` — zero overhead for untraced assemblies.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, Iterable, TYPE_CHECKING

from repro.telemetry.hooks import KernelInstrumentation
from repro.telemetry.ring import DEFAULT_CAPACITY
from repro.telemetry.sampling import (
    ALWAYS_ON_CATEGORIES,
    Sampler,
    SamplingPolicy,
)
from repro.telemetry.tracer import Tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.simulator import Simulator


def install(sim: "Simulator", enabled: bool = True,
            kernel_detail: str | None = "aggregate",
            sampling: SamplingPolicy | None = None,
            capacity: int = DEFAULT_CAPACITY) -> Tracer:
    """Create and attach a tracer to ``sim``.

    Args:
        enabled: start recording immediately; a disabled tracer costs one
            boolean check per call site and installs no kernel hooks.
        kernel_detail: ``"aggregate"`` (per-site counters),
            ``"events"`` (full kernel timeline in the trace) or ``None``
            (no kernel hooks at all).
        sampling: head-based sampling policy; default records every trace
            root and kernel event.  ``SamplingPolicy(rate=0.01)`` is the
            production-overhead configuration: one trace root (and one
            kernel event) in a hundred, ``always`` categories exempt.
        capacity: span-ring slots (see
            :class:`~repro.telemetry.ring.SpanRing`); the ring drops
            oldest-first once full and counts the drops.
    """
    tracer = Tracer(sim, enabled=enabled, sampling=sampling,
                    capacity=capacity)
    if kernel_detail is not None:
        policy = tracer.sampling
        # The kernel draws from its own stream so enabling/disabling span
        # consumers never shifts which events get sampled (and vice versa).
        sampler = (Sampler(policy.rate, policy.seed, stream=2)
                   if policy.rate < 1.0 else None)
        tracer.kernel = KernelInstrumentation(tracer, detail=kernel_detail,
                                              sampler=sampler)
        if enabled:
            sim.set_hooks(tracer.kernel)
    sim.tracer = tracer
    return tracer


def configure(sim: "Simulator", *,
              enabled: bool = True,
              sample_rate: float = 1.0,
              ring_slots: int = DEFAULT_CAPACITY,
              categories: dict[str, float] | None = None,
              always: Iterable[str] = ALWAYS_ON_CATEGORIES,
              seed: int = 0,
              kernel_detail: str | None = "aggregate") -> Tracer:
    """One-call telemetry setup: tracer + sampler + span ring, wired.

    Replaces the constructor plumbing callers previously did by hand
    (build a :class:`SamplingPolicy`, pick a ring capacity, thread both
    through :func:`install`)::

        tracer = telemetry.configure(
            sim, sample_rate=0.01, ring_slots=1 << 17,
            categories={"net.msg": 0.001, "connector": 0.1})

    Args:
        enabled: start recording immediately (disabled telemetry stays
            on the free path until :meth:`Tracer.enable`).
        sample_rate: global head-sampling rate for trace roots in
            [0, 1]; ``1.0`` records everything.
        ring_slots: span-ring capacity (overwrite-oldest once full).
        categories: per-category sample-rate overrides, e.g. run a
            chatty flow category at 0.1% while the rest samples at 1%.
            ``always`` categories ignore both the global rate and any
            override.
        always: categories recorded unconditionally (defaults to the
            meta-level decision categories).
        seed: sampling-stream seed — same seed, same workload, same
            sampled span set (the determinism contract).
        kernel_detail: kernel-hook level passed to :func:`install`
            (``"aggregate"``, ``"events"`` or ``None``).

    Returns the attached :class:`Tracer` (also reachable as
    ``sim.tracer``).  Calling ``configure`` again replaces the previous
    installation; configure before running, not mid-run.
    """
    policy = SamplingPolicy(rate=sample_rate, always=always, seed=seed,
                            overrides=categories)
    return install(sim, enabled=enabled, kernel_detail=kernel_detail,
                   sampling=policy, capacity=ring_slots)


def uninstall(sim: "Simulator") -> None:
    """Detach telemetry; the simulator returns to the free path."""
    sim.set_hooks(None)
    sim.tracer = None


def instrument_connector(tracer: Tracer, connector: Any) -> None:
    """Emit one span per connector invocation via its observer pipeline.

    Connector calls nest synchronously (the glue may call through other
    connectors), so an explicit stack pairs before/after phases.  The
    head sampling decision is made in the *before* phase — an unsampled
    invocation pushes a ``None`` marker and assembles no span arguments.
    Retries inside the glue surface through ``invocation.meta['attempts']``.
    """
    stack: list[tuple[float, float] | None] = []

    def observer(phase: str, role: str, invocation: Any, payload: Any) -> None:
        if not tracer.enabled:
            stack.clear()
            return
        if phase == "before":
            stack.append((tracer.sim.now, perf_counter())
                         if tracer.sample("connector") else None)
            return
        if not stack:
            return
        entry = stack.pop()
        if entry is None:
            if phase == "error":
                tracer.count(f"connector.{connector.name}.errors")
            return
        start, wall0 = entry
        args: dict[str, Any] = {"role": role, "op": invocation.operation,
                                "outcome": "ok" if phase == "after" else "error"}
        attempts = invocation.meta.get("attempts")
        if attempts:
            args["attempts"] = attempts
        if phase == "error":
            args["error"] = repr(payload)
            tracer.count(f"connector.{connector.name}.errors")
        tracer.emit("connector", f"{connector.name}.{invocation.operation}",
                    start, tracer.sim.now, wall=perf_counter() - wall0, **args)

    connector.observers.append(observer)


def instrument_assembly(tracer: Tracer, assembly: Any) -> Tracer:
    """Trace every connector currently in an assembly (idempotent by
    virtue of re-instrumenting only new connectors is *not* attempted —
    call once after wiring)."""
    for connector in assembly.connectors.values():
        instrument_connector(tracer, connector)
    return tracer

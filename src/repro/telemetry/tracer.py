"""The span/trace core.

A :class:`Tracer` records what the platform does on the **simulated**
clock — spans (intervals of simulated time), instants (point events),
counters and :class:`~repro.telemetry.audit.AuditRecord` entries — with
optional **wall-clock attribution** (how much host CPU each span burned)
kept strictly out of the deterministic export payload.

Design constraints, in order:

1. *Disabled must be free.*  Every recording method early-returns on
   ``self.enabled``; :meth:`Tracer.span` returns one shared no-op context
   manager, so a disabled call allocates nothing.
2. *Enabled must be cheap.*  Head-based sampling
   (:class:`~repro.telemetry.sampling.SamplingPolicy`) decides each trace
   root's fate in a single branch at span start; finished spans land in a
   preallocated :class:`~repro.telemetry.ring.SpanRing` (eight indexed
   stores, no per-span allocation) and are only materialized back into
   :class:`Span` objects at export time.
3. *Deterministic.*  Span ids are a per-tracer counter, timestamps are
   simulated time, sampling decisions come from a seeded
   :class:`~repro.telemetry.sampling.Sampler`, and wall-clock
   measurements never enter the exported trace — two same-seed runs
   serialize byte-identically, sampled or not.
4. *Synchronous spans nest, asynchronous spans flow.*  ``with
   tracer.span(...)`` uses an explicit stack (callbacks within one
   simulator event nest synchronously); message lineage uses
   :meth:`sample` + :meth:`begin_flow` / :meth:`end_flow` because a
   message outlives the event that sent it.
"""

from __future__ import annotations

from time import perf_counter
from typing import Any, TYPE_CHECKING

from repro.telemetry.audit import AuditLog
from repro.telemetry.ring import DEFAULT_CAPACITY, SpanRing
from repro.telemetry.sampling import Sampler, SamplingPolicy

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.events.simulator import Simulator


class Span:
    """One interval of simulated time attributed to a subsystem.

    Span objects exist while a span is *open* (on the tracer stack, or
    riding a message as a flow handle) and when the ring materializes
    finished spans for export — never on the steady-state record path.

    ``wall`` is host seconds spent inside the span (0.0 for flow spans
    whose work happens across many events); it feeds the terminal summary
    but is excluded from deterministic exports.
    """

    __slots__ = ("span_id", "parent_id", "category", "name",
                 "start", "end", "args", "wall")

    def __init__(self, span_id: int, parent_id: int, category: str,
                 name: str, start: float, args: dict[str, Any]) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.category = category
        self.name = name
        self.start = start
        self.end = start
        self.args = args
        self.wall = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Span(#{self.span_id} {self.category}/{self.name} "
                f"[{self.start}, {self.end}])")


class Instant:
    """A point annotation on the simulated timeline."""

    __slots__ = ("time", "category", "name", "args")

    def __init__(self, time: float, category: str, name: str,
                 args: dict[str, Any]) -> None:
        self.time = time
        self.category = category
        self.name = name
        self.args = args


class _NoopSpanContext:
    """Shared do-nothing context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: Any) -> bool:
        return False


NOOP_SPAN = _NoopSpanContext()


class _SuppressContext:
    """Shared per-tracer context for an *unsampled* trace root.

    Head-based sampling must drop the whole tree: while the suppression
    depth is nonzero, ``tracer.span`` hands this same object to every
    nested call, so no descendant of an unsampled root records anything
    — and nothing is allocated while doing so.
    """

    __slots__ = ("_tracer",)

    def __init__(self, tracer: "Tracer") -> None:
        self._tracer = tracer

    def __enter__(self) -> None:
        self._tracer._suppressed += 1
        return None

    def __exit__(self, *exc: Any) -> bool:
        self._tracer._suppressed -= 1
        return False


class _SpanContext:
    """Context manager opening a stacked span with wall attribution."""

    __slots__ = ("_tracer", "_category", "_name", "_args", "_span", "_wall0")

    def __init__(self, tracer: "Tracer", category: str, name: str,
                 args: dict[str, Any]) -> None:
        self._tracer = tracer
        self._category = category
        self._name = name
        self._args = args

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._category, self._name, self._args)
        self._wall0 = perf_counter()
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        span = self._span
        span.wall = perf_counter() - self._wall0
        if exc_type is not None:
            span.args["error"] = repr(exc)
        self._tracer._close(span)
        return False


class Tracer:
    """Collects spans/instants/counters/audit records for one simulator.

    Install via :func:`repro.telemetry.install`, which also attaches the
    tracer to ``sim.tracer`` so every subsystem can find it with one
    attribute read.

    Args:
        sampling: head-based sampling policy; the default records every
            trace root (PR 2 behaviour).  Production installs pass e.g.
            ``SamplingPolicy(rate=0.01)`` — one trace in a hundred, with
            the ``always`` categories exempt.
        capacity: span-ring slots; once full, the oldest span is
            overwritten and :attr:`drops` increments.
    """

    def __init__(self, sim: "Simulator", enabled: bool = True,
                 sampling: SamplingPolicy | None = None,
                 capacity: int = DEFAULT_CAPACITY) -> None:
        self.sim = sim
        self.enabled = enabled
        self.sampling = sampling if sampling is not None else SamplingPolicy()
        self.ring = SpanRing(capacity)
        self.instants: list[Instant] = []
        self.counters: dict[str, float] = {}
        self.audit = AuditLog()
        #: Kernel instrumentation, when installed (set by ``install``).
        self.kernel: Any = None
        self._stack: list[Span] = []
        self._next_id = 1
        self._suppressed = 0
        self._suppress = _SuppressContext(self)
        policy = self.sampling
        self._always = policy.always
        self._overrides = dict(policy.overrides)
        #: True only when roots actually need a coin flip — the rate-1.0
        #: no-override default skips the sampler entirely (one attribute
        #: load).
        self._sample_roots = policy.rate < 1.0 or any(
            rate < 1.0 for rate in self._overrides.values())
        self._sampler = Sampler(policy.rate, policy.seed, stream=1)

    # -- lifecycle ---------------------------------------------------------

    def enable(self) -> None:
        """Resume recording (and re-attach kernel hooks, if any)."""
        self.enabled = True
        if self.kernel is not None:
            self.sim.set_hooks(self.kernel)

    def disable(self) -> None:
        """Stop recording; kernel hooks detach so the hot loop pays only
        the ``is not None`` branch again."""
        self.enabled = False
        if self.sim._hooks is self.kernel and self.kernel is not None:
            self.sim.set_hooks(None)

    def clear(self) -> None:
        """Drop everything recorded so far (ids and the sampling stream
        restart too, so a cleared tracer reproduces the same trace for
        the same workload)."""
        self.ring.clear()
        self.instants.clear()
        self.counters.clear()
        self.audit.clear()
        self._stack.clear()
        self._next_id = 1
        self._suppressed = 0
        self._sampler.reset()
        if self.kernel is not None:
            self.kernel.clear()

    # -- materialized views ------------------------------------------------

    @property
    def spans(self) -> list[Span]:
        """Finished spans, oldest-first, materialized from the ring.

        Each access rebuilds the list — cheap for inspection and export,
        but don't call it per-event; the record path never does.
        """
        return self.ring.materialize()

    @property
    def drops(self) -> int:
        """Spans lost oldest-first to ring wraparound."""
        return self.ring.dropped

    # -- sampling ----------------------------------------------------------

    def sample(self, category: str) -> bool:
        """Head decision for a new trace *root* (single branch).

        Callers that pay to assemble span arguments — netsim flows,
        connector observers, reconfiguration transactions — ask first,
        so an unsampled root costs one branch and zero allocation::

            if tracer.sample("net.msg"):
                span = tracer.begin_flow("net.msg", name, ...)

        Children of a sampled root record unconditionally (via the
        carried span handle / ``parent_id``), which is what makes the
        sampling head-based: traces are kept or dropped whole.
        """
        if not self.enabled:
            return False
        if not self._sample_roots or category in self._always:
            return True
        return self._root_keep(category)

    def _root_keep(self, category: str) -> bool:
        """Draw the head decision for a non-always root (one stream step,
        whether or not the category's rate is overridden)."""
        override = self._overrides.get(category)
        if override is None:
            return self._sampler.sample()
        return self._sampler.sample_at(override)

    # -- synchronous spans -------------------------------------------------

    def span(self, category: str, name: str, **args: Any):
        """Open a nested span: ``with tracer.span("raml", "sweep"): ...``

        The root of each stack makes the head sampling decision; nested
        spans inherit it (a suppressed root suppresses its whole subtree
        via a shared, allocation-free context manager).
        """
        if not self.enabled:
            return NOOP_SPAN
        if self._suppressed or (
                self._sample_roots and not self._stack
                and category not in self._always
                and not self._root_keep(category)):
            return self._suppress
        return _SpanContext(self, category, name, args)

    def _open(self, category: str, name: str, args: dict[str, Any]) -> Span:
        parent = self._stack[-1].span_id if self._stack else 0
        span = Span(self._next_id, parent, category, name, self.sim.now, args)
        self._next_id += 1
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        span.end = self.sim.now
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        self.ring.append(span.span_id, span.parent_id, span.category,
                         span.name, span.start, span.end,
                         span.args or None, span.wall)

    # -- asynchronous (flow) spans ----------------------------------------

    def begin_flow(self, category: str, name: str, **args: Any) -> Span | None:
        """Open a span that outlives the current event (e.g. a message in
        flight).  Returns None when disabled — callers carry the handle.

        ``begin_flow`` is the *recording* primitive: the head sampling
        decision belongs to :meth:`sample`, asked by the caller before
        assembling the name and args (so unsampled flows allocate
        nothing).  Calling it without asking records unconditionally.
        """
        if not self.enabled:
            return None
        span = Span(self._next_id, 0, category, name, self.sim.now, args)
        self._next_id += 1
        return span

    def end_flow(self, span: Span, **args: Any) -> None:
        """Finish a flow span at the current simulated time."""
        if args:
            span.args.update(args)
        span.end = self.sim.now
        self.ring.append(span.span_id, span.parent_id, span.category,
                         span.name, span.start, span.end,
                         span.args or None, span.wall)

    def emit(self, category: str, name: str, start: float, end: float,
             parent_id: int = 0, wall: float = 0.0, **args: Any) -> None:
        """Record a complete span with explicit simulated times (used for
        per-hop link segments whose window is known when scheduled).

        Like :meth:`begin_flow` this records unconditionally: root emits
        are guarded by :meth:`sample` at the call site, child emits
        inherit the parent's head decision.
        """
        if not self.enabled:
            return
        self.ring.append(self._next_id, parent_id, category, name,
                         start, end, args or None, wall)
        self._next_id += 1

    # -- point data --------------------------------------------------------

    def instant(self, category: str, name: str, **args: Any) -> None:
        if not self.enabled:
            return
        self.instants.append(Instant(self.sim.now, category, name, args))

    def count(self, name: str, inc: float = 1.0) -> None:
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0.0) + inc

    def record_audit(self, kind: str, /, **fields: Any):
        # ``kind`` is positional-only so records may carry a field that is
        # itself named "kind" (e.g. introspection count queries).
        """Append a RAML decision-audit record (see
        :class:`~repro.telemetry.audit.AuditLog`)."""
        if not self.enabled:
            return None
        return self.audit.record(self.sim.now, kind, fields)

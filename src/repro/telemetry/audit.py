"""The RAML decision audit log.

The paper's meta-level "observes the system … and undertakes adaptation
or reconfiguration actions"; the audit log is the *why* behind every such
action: introspection queries, intercession calls, adaptation-policy
firings, reconfiguration transaction phases and control-loop actuations,
each with the inputs that drove the decision.

Records are plain data (time, kind, JSON-serializable fields) so they
export losslessly to JSONL and Chrome traces and diff cleanly between
runs.

Well-known kinds (see the wiring sites):

================== ====================================================
``raml.sweep``       one observe→check→decide→act iteration and outcome
``raml.decision``    a single adapt/reconfigure arbitration for one
                     constraint (with streak + escalation threshold)
``raml.introspect``  an introspection query against the hub
``raml.intercession`` an intercession action (heavy or lightweight)
``reconfig.phase``   a transaction phase: quiescence → change →
                     state_transfer → commit / rollback
``adaptation.fire``  an adaptation policy firing with its context
``control.actuate``  a control-loop actuation with its inputs
``qos.violation``    a QoS contract compliance transition
================== ====================================================
"""

from __future__ import annotations

from typing import Any, Iterator


class AuditRecord:
    """One decision record: when, what kind, and the driving inputs."""

    __slots__ = ("time", "kind", "fields")

    def __init__(self, time: float, kind: str, fields: dict[str, Any]) -> None:
        self.time = time
        self.kind = kind
        self.fields = fields

    def as_dict(self) -> dict[str, Any]:
        return {"time": self.time, "kind": self.kind, **self.fields}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AuditRecord(t={self.time}, {self.kind}, {self.fields})"


class AuditLog:
    """Append-only decision log with by-kind queries.

    Sinks registered via :meth:`add_sink` observe every record as it is
    appended — the hook durable persistence (see
    :class:`repro.durability.DurableAuditSink`) attaches through, so the
    decision history survives the process that made the decisions.
    """

    def __init__(self) -> None:
        self.records: list[AuditRecord] = []
        self._sinks: list[Any] = []

    def add_sink(self, sink: Any) -> None:
        """Register a callable invoked with each appended record."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        if sink in self._sinks:
            self._sinks.remove(sink)

    def record(self, time: float, kind: str,
               fields: dict[str, Any]) -> AuditRecord:
        entry = AuditRecord(time, kind, fields)
        self.records.append(entry)
        for sink in self._sinks:
            sink(entry)
        return entry

    def clear(self) -> None:
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[AuditRecord]:
        return iter(self.records)

    def of_kind(self, kind: str) -> list[AuditRecord]:
        return [r for r in self.records if r.kind == kind]

    def kinds(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for record in self.records:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts

"""Fuzzy-logic ("intelligent") control.

The paper points at soft-computing controllers for software quality:
"intelligent controllers have been introduced for controlling complex
systems, which cannot be expressed using mathematical models such as
differential equations".  This is a compact Mamdani controller:
triangular memberships over (error, error-delta), a rule table mapping
linguistic terms to output terms, centroid defuzzification.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.errors import ControlError


@dataclass(frozen=True)
class TriangularSet:
    """A triangular membership function (left, peak, right)."""

    name: str
    left: float
    peak: float
    right: float

    def __post_init__(self) -> None:
        if not self.left <= self.peak <= self.right:
            raise ControlError(
                f"fuzzy set {self.name!r}: need left <= peak <= right, got "
                f"({self.left}, {self.peak}, {self.right})"
            )

    def membership(self, value: float) -> float:
        """Degree of membership of ``value`` in [0, 1]."""
        if value <= self.left or value >= self.right:
            # Shoulder sets extend to infinity at their flat end.
            if value <= self.left and self.left == self.peak:
                return 1.0
            if value >= self.right and self.right == self.peak:
                return 1.0
            return 0.0
        if value == self.peak:
            return 1.0
        if value < self.peak:
            return (value - self.left) / (self.peak - self.left)
        return (self.right - value) / (self.right - self.peak)


def standard_partition(scale: float) -> list[TriangularSet]:
    """The classic five-term partition over [-scale, +scale]:
    NB (negative big), NS, ZE (zero), PS, PB (positive big)."""
    s = scale
    return [
        TriangularSet("NB", -s, -s, -s / 2),
        TriangularSet("NS", -s, -s / 2, 0.0),
        TriangularSet("ZE", -s / 2, 0.0, s / 2),
        TriangularSet("PS", 0.0, s / 2, s),
        TriangularSet("PB", s / 2, s, s),
    ]


#: Default rule table: rows = error term, columns = delta-error term.
#: Entry = output term.  Standard magnitude-dominant PD-like surface.
DEFAULT_RULES: dict[tuple[str, str], str] = {}
_TERMS = ["NB", "NS", "ZE", "PS", "PB"]
_INDEX = {term: i - 2 for i, term in enumerate(_TERMS)}  # NB=-2 .. PB=+2
for _e in _TERMS:
    for _d in _TERMS:
        combined = max(-2, min(2, round(0.7 * _INDEX[_e] + 0.3 * _INDEX[_d])))
        DEFAULT_RULES[(_e, _d)] = _TERMS[combined + 2]


class FuzzyController:
    """A Mamdani fuzzy controller over (error, error delta).

    Args:
        setpoint: target for the controlled variable.
        error_scale: magnitude at which error saturates the partitions.
        delta_scale: same for the error delta per sample.
        output_scale: magnitude of the strongest corrective action.
        rules: optional override of the (error_term, delta_term) → output
            term table.
    """

    def __init__(self, setpoint: float, error_scale: float,
                 delta_scale: float, output_scale: float,
                 rules: Mapping[tuple[str, str], str] | None = None) -> None:
        if min(error_scale, delta_scale, output_scale) <= 0:
            raise ControlError("fuzzy scales must be positive")
        self.setpoint = setpoint
        self.error_sets = standard_partition(error_scale)
        self.delta_sets = standard_partition(delta_scale)
        self.output_sets = {s.name: s for s in standard_partition(output_scale)}
        self.rules = dict(rules or DEFAULT_RULES)
        for (e_term, d_term), out_term in self.rules.items():
            if out_term not in self.output_sets:
                raise ControlError(
                    f"rule ({e_term},{d_term}) -> unknown output term "
                    f"{out_term!r}"
                )
        self._previous_error: float | None = None

    def update(self, measurement: float, now: float = 0.0) -> float:
        """Compute the corrective output for a new measurement."""
        error = self.setpoint - measurement
        delta = 0.0 if self._previous_error is None else error - self._previous_error
        self._previous_error = error

        # Fuzzify.
        error_degrees = {
            s.name: s.membership(error) for s in self.error_sets
        }
        delta_degrees = {
            s.name: s.membership(delta) for s in self.delta_sets
        }

        # Infer: rule strength = min(antecedents); aggregate per output term
        # with max.
        activations: dict[str, float] = {}
        for (e_term, d_term), out_term in self.rules.items():
            strength = min(error_degrees.get(e_term, 0.0),
                           delta_degrees.get(d_term, 0.0))
            if strength > 0:
                activations[out_term] = max(
                    activations.get(out_term, 0.0), strength
                )

        # Defuzzify: weighted centroid of output set peaks.
        if not activations:
            return 0.0
        numerator = sum(
            strength * self.output_sets[term].peak
            for term, strength in activations.items()
        )
        denominator = sum(activations.values())
        return numerator / denominator

    def reset(self) -> None:
        self._previous_error = None

"""Closed control loops.

Binds a *sensor* (reads the controlled variable), a *controller* (PID or
fuzzy — anything with ``update(measurement, now)``) and an *actuator*
(applies the corrective output) on a periodic sampling timer — the
feedback-control architecture the paper proposes for controlling software
quality at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.errors import ControlError
from repro.events import PeriodicTimer, Simulator


class Controller(Protocol):
    """Anything usable inside a control loop."""

    def update(self, measurement: float, now: float) -> float: ...


@dataclass(slots=True)
class LoopSample:
    """One sampling instant of a control loop.

    Slotted: control loops append one of these per sampling event, so the
    per-sample footprint matters at scale.
    """

    time: float
    measurement: float
    output: float


class ControlLoop:
    """Sensor → controller → actuator on a periodic timer."""

    def __init__(self, sim: Simulator, controller: Controller,
                 sensor: Callable[[], float],
                 actuator: Callable[[float], None],
                 period: float = 1.0,
                 name: str = "loop") -> None:
        if period <= 0:
            raise ControlError(f"control period must be positive, got {period}")
        self.sim = sim
        self.controller = controller
        self.sensor = sensor
        self.actuator = actuator
        self.period = period
        self.name = name
        self.trace: list[LoopSample] = []
        self._timer: PeriodicTimer | None = None

    def start(self) -> "ControlLoop":
        if self._timer is None or not self._timer.running:
            self._timer = PeriodicTimer(self.sim, self.period, self.step)
        return self

    def stop(self) -> None:
        if self._timer is not None:
            self._timer.stop()

    def step(self) -> LoopSample:
        """One sampling instant: read, compute, actuate, record."""
        now = self.sim.now
        measurement = self.sensor()
        output = self.controller.update(measurement, now)
        self.actuator(output)
        sample = LoopSample(now, measurement, output)
        self.trace.append(sample)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.record_audit(
                "control.actuate", loop=self.name,
                measurement=measurement, output=output,
                setpoint=getattr(self.controller, "setpoint", None),
            )
        return sample

    # -- analysis helpers (used by benches and tests) -----------------------

    def settling_time(self, tolerance: float, setpoint: float | None = None
                      ) -> float | None:
        """First time after which the measurement stays within
        ``tolerance`` of the setpoint; None if it never settles."""
        target = setpoint
        if target is None:
            target = getattr(self.controller, "setpoint", None)
        if target is None:
            raise ControlError("settling_time needs a setpoint")
        settled_since: float | None = None
        for sample in self.trace:
            if abs(sample.measurement - target) <= tolerance:
                if settled_since is None:
                    settled_since = sample.time
            else:
                settled_since = None
        return settled_since

    def steady_state_error(self, tail: int = 10) -> float:
        """Mean |setpoint - measurement| over the last ``tail`` samples."""
        target = getattr(self.controller, "setpoint", None)
        if target is None:
            raise ControlError("steady_state_error needs a setpoint")
        window = self.trace[-tail:]
        if not window:
            return 0.0
        return sum(abs(target - s.measurement) for s in window) / len(window)

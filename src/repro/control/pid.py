"""PID feedback control.

The classical control-engineering baseline the paper contrasts with
intelligent controllers: proportional–integral–derivative control with
output clamping and integral anti-windup, sampled on the simulated
clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ControlError


@dataclass
class PidController:
    """Discrete PID controller.

    Attributes:
        kp, ki, kd: gains.
        setpoint: target value for the controlled variable.
        output_min / output_max: actuator saturation bounds.
        integral_limit: anti-windup clamp on the integral term.
    """

    kp: float
    ki: float = 0.0
    kd: float = 0.0
    setpoint: float = 0.0
    output_min: float = float("-inf")
    output_max: float = float("inf")
    integral_limit: float = float("inf")
    _integral: float = field(default=0.0, repr=False)
    _previous_error: float | None = field(default=None, repr=False)
    _previous_time: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.output_min > self.output_max:
            raise ControlError(
                f"output_min {self.output_min} exceeds output_max "
                f"{self.output_max}"
            )

    def update(self, measurement: float, now: float) -> float:
        """Compute the control output for a new measurement at time ``now``."""
        error = self.setpoint - measurement
        if self._previous_time is None:
            dt = 0.0
        else:
            dt = now - self._previous_time
            if dt < 0:
                raise ControlError(
                    f"PID time went backwards: {now} < {self._previous_time}"
                )

        proportional = self.kp * error

        if dt > 0:
            self._integral += error * dt
            self._integral = max(-self.integral_limit,
                                 min(self.integral_limit, self._integral))
        integral = self.ki * self._integral

        derivative = 0.0
        if dt > 0 and self._previous_error is not None:
            derivative = self.kd * (error - self._previous_error) / dt

        self._previous_error = error
        self._previous_time = now

        raw = proportional + integral + derivative
        return max(self.output_min, min(self.output_max, raw))

    def reset(self) -> None:
        """Clear accumulated state (e.g. after a setpoint step)."""
        self._integral = 0.0
        self._previous_error = None
        self._previous_time = None

"""Feedback and intelligent control (S17).

PID control with anti-windup, a Mamdani fuzzy controller (the paper's
soft-computing "intelligent controller"), and closed control loops over
the simulated clock.
"""

from repro.control.fuzzy import (
    DEFAULT_RULES,
    FuzzyController,
    TriangularSet,
    standard_partition,
)
from repro.control.loop import ControlLoop, Controller, LoopSample
from repro.control.pid import PidController

__all__ = [
    "DEFAULT_RULES",
    "ControlLoop",
    "Controller",
    "FuzzyController",
    "LoopSample",
    "PidController",
    "TriangularSet",
    "standard_partition",
]

"""Environment fluctuation models.

"The execution context of modern distributed systems is not static but
fluctuates dynamically."  Profiles are deterministic functions of
simulated time; drivers sample a profile periodically and apply it to
node loads or link qualities.
"""

from __future__ import annotations

import math
import random
from typing import Callable

from repro.events import PeriodicTimer, Simulator
from repro.netsim.link import Link
from repro.netsim.node import Node

#: A profile maps simulated time to a value.
Profile = Callable[[float], float]


def constant(value: float) -> Profile:
    return lambda t: value


def sinusoidal(base: float, amplitude: float, period: float,
               phase: float = 0.0) -> Profile:
    """Smooth daily/rush-hour style oscillation."""

    def profile(t: float) -> float:
        return base + amplitude * math.sin(2 * math.pi * (t / period) + phase)

    return profile


def step(before: float, after: float, at: float) -> Profile:
    """A single regime change (e.g. a link downgrade)."""
    return lambda t: before if t < at else after


def square_wave(low: float, high: float, period: float,
                duty: float = 0.5) -> Profile:
    """Bursty on/off load."""

    def profile(t: float) -> float:
        return high if (t % period) < duty * period else low

    return profile


def random_walk(start: float, step_size: float, low: float, high: float,
                seed: int = 0, dt: float = 1.0) -> Profile:
    """Seeded bounded random walk, deterministic per (seed, dt).

    Values are pre-generated lazily per integer step so repeated queries
    at the same time agree.
    """
    rng = random.Random(seed)
    values = [start]

    def profile(t: float) -> float:
        index = max(0, int(t / dt))
        while len(values) <= index:
            nxt = values[-1] + rng.uniform(-step_size, step_size)
            values.append(min(high, max(low, nxt)))
        return values[index]

    return profile


def composite(*profiles: Profile) -> Profile:
    """Sum of profiles (e.g. baseline + bursts)."""
    return lambda t: sum(profile(t) for profile in profiles)


def clamped(profile: Profile, low: float, high: float) -> Profile:
    return lambda t: min(high, max(low, profile(t)))


class NodeLoadDriver:
    """Applies a load profile to a node's background utilisation."""

    def __init__(self, sim: Simulator, node: Node, profile: Profile,
                 period: float = 0.5) -> None:
        self.sim = sim
        self.node = node
        self.profile = profile
        self.samples: list[tuple[float, float]] = []
        self._timer = PeriodicTimer(sim, period, self._apply)
        self._apply()

    def _apply(self) -> None:
        value = self.profile(self.sim.now)
        self.node.set_background_load(value)
        self.samples.append((self.sim.now, self.node.background_load))

    def stop(self) -> None:
        self._timer.stop()


class LinkQualityDriver:
    """Applies bandwidth/latency/loss profiles to a link."""

    def __init__(self, sim: Simulator, link: Link,
                 bandwidth: Profile | None = None,
                 latency: Profile | None = None,
                 loss: Profile | None = None,
                 period: float = 0.5) -> None:
        self.sim = sim
        self.link = link
        self.bandwidth = bandwidth
        self.latency = latency
        self.loss = loss
        self.samples: list[tuple[float, float, float, float]] = []
        self._timer = PeriodicTimer(sim, period, self._apply)
        self._apply()

    def _apply(self) -> None:
        now = self.sim.now
        self.link.set_quality(
            latency=self.latency(now) if self.latency else None,
            bandwidth=max(1e-6, self.bandwidth(now)) if self.bandwidth else None,
            loss=self.loss(now) if self.loss else None,
        )
        self.samples.append(
            (now, self.link.latency, self.link.bandwidth, self.link.loss)
        )

    def stop(self) -> None:
        self._timer.stop()

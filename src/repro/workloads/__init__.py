"""Workload generators (S21).

Environment fluctuation profiles and drivers, open/closed-loop request
traffic, and the paper's motivating multimedia telecom sessions with
user mobility.
"""

from repro.workloads.fluctuation import (
    LinkQualityDriver,
    NodeLoadDriver,
    Profile,
    clamped,
    composite,
    constant,
    random_walk,
    sinusoidal,
    square_wave,
    step,
)
from repro.workloads.telecom import (
    Session,
    TelecomWorkload,
    TelecomWorkloadConfig,
)
from repro.workloads.traffic import (
    AsyncTransport,
    ClosedLoopGenerator,
    OpenLoopGenerator,
    TrafficStats,
    binding_transport,
    proxy_transport,
)

__all__ = [
    "AsyncTransport",
    "ClosedLoopGenerator",
    "LinkQualityDriver",
    "NodeLoadDriver",
    "OpenLoopGenerator",
    "Profile",
    "Session",
    "TelecomWorkload",
    "TelecomWorkloadConfig",
    "TrafficStats",
    "binding_transport",
    "clamped",
    "composite",
    "constant",
    "proxy_transport",
    "random_walk",
    "sinusoidal",
    "square_wave",
    "step",
]

"""Multimedia telecom session workloads.

The paper's motivating domain: "the new multimedia telecom services …
deployed optimally on network equipments, adapted to the available
resources and reconfigured automatically according to user's mobility,
preferences, profiles and equipments."  Sessions arrive (Poisson), run
for a random duration at a frame rate, and may roam between access
nodes mid-session.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable

from repro.events import Simulator


@dataclass
class Session:
    """One multimedia session."""

    session_id: int
    user: str
    access_node: str
    started_at: float
    duration: float
    frame_interval: float
    profile: str = "standard"  # user preference class
    frames_sent: int = 0
    frames_delivered: int = 0
    handovers: int = 0
    ended: bool = False

    @property
    def delivery_ratio(self) -> float:
        return (self.frames_delivered / self.frames_sent
                if self.frames_sent else 1.0)


@dataclass
class TelecomWorkloadConfig:
    """Parameters of the session generator."""

    arrival_rate: float = 1.0          # sessions per time unit
    mean_duration: float = 20.0
    frame_rate: float = 25.0           # frames per time unit
    mobility_rate: float = 0.0         # handovers per session time unit
    profiles: tuple[str, ...] = ("standard", "premium")
    seed: int = 0


class TelecomWorkload:
    """Generates roaming multimedia sessions over access nodes.

    ``send_frame(session, on_delivered)`` is supplied by the scenario —
    typically a call through a pipeline connector or an ORB proxy from
    the session's current access node.
    """

    def __init__(self, sim: Simulator, access_nodes: list[str],
                 send_frame: Callable[[Session, Callable[[], None]], None],
                 config: TelecomWorkloadConfig | None = None) -> None:
        if not access_nodes:
            raise ValueError("telecom workload needs at least one access node")
        self.sim = sim
        self.access_nodes = list(access_nodes)
        self.send_frame = send_frame
        self.config = config or TelecomWorkloadConfig()
        self.rng = random.Random(self.config.seed)
        self.sessions: list[Session] = []
        self._next_id = 1
        self._running = False

    # -- generation ---------------------------------------------------------

    def start(self, duration: float) -> "TelecomWorkload":
        """Generate arrivals over ``duration`` simulated seconds."""
        self._running = True
        self._stop_at = self.sim.now + duration
        self._schedule_arrival()
        return self

    def stop(self) -> None:
        self._running = False

    def _schedule_arrival(self) -> None:
        if not self._running:
            return
        gap = self.rng.expovariate(self.config.arrival_rate)
        if self.sim.now + gap >= self._stop_at:
            self._running = False
            return
        self.sim.schedule(self._arrive, delay=gap)

    def _arrive(self) -> None:
        config = self.config
        session = Session(
            session_id=self._next_id,
            user=f"user{self._next_id}",
            access_node=self.rng.choice(self.access_nodes),
            started_at=self.sim.now,
            duration=self.rng.expovariate(1.0 / config.mean_duration),
            frame_interval=1.0 / config.frame_rate,
            profile=self.rng.choice(list(config.profiles)),
        )
        self._next_id += 1
        self.sessions.append(session)
        self.sim.call_soon(self._frame, session)
        if config.mobility_rate > 0 and len(self.access_nodes) > 1:
            self._schedule_handover(session)
        self._schedule_arrival()

    def _frame(self, session: Session) -> None:
        if session.ended:
            return
        if self.sim.now - session.started_at >= session.duration:
            session.ended = True
            return
        session.frames_sent += 1

        def delivered() -> None:
            session.frames_delivered += 1

        self.send_frame(session, delivered)
        self.sim.schedule(self._frame, session, delay=session.frame_interval)

    def _schedule_handover(self, session: Session) -> None:
        gap = self.rng.expovariate(self.config.mobility_rate)
        if gap >= session.duration:
            return

        def handover() -> None:
            if session.ended:
                return
            others = [n for n in self.access_nodes if n != session.access_node]
            session.access_node = self.rng.choice(others)
            session.handovers += 1
            self._schedule_handover(session)

        self.sim.schedule(handover, delay=gap)

    # -- reporting -----------------------------------------------------------

    @property
    def active_sessions(self) -> list[Session]:
        return [s for s in self.sessions if not s.ended]

    def summary(self) -> dict[str, float]:
        total_sent = sum(s.frames_sent for s in self.sessions)
        total_delivered = sum(s.frames_delivered for s in self.sessions)
        return {
            "sessions": float(len(self.sessions)),
            "frames_sent": float(total_sent),
            "frames_delivered": float(total_delivered),
            "delivery_ratio": (total_delivered / total_sent
                               if total_sent else 1.0),
            "handovers": float(sum(s.handovers for s in self.sessions)),
        }

"""Request traffic generators.

Open-loop (fixed arrival rate) and closed-loop (fixed concurrency)
drivers that issue calls through any callable transport — a binding, a
connector endpoint or an ORB proxy — and account successes, failures and
latencies into a metric registry.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.events import Simulator
from repro.qos.metrics import MetricRegistry

#: Transport: fn(operation, args, on_result, on_error) — must be async
#: (callbacks fire later or immediately).
AsyncTransport = Callable[
    [str, tuple, Callable[[Any], None], Callable[[Exception], None]], None
]


@dataclass
class TrafficStats:
    issued: int = 0
    succeeded: int = 0
    failed: int = 0
    latencies: list[float] = field(default_factory=list)

    @property
    def success_ratio(self) -> float:
        done = self.succeeded + self.failed
        return self.succeeded / done if done else 1.0

    def percentile_latency(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q / 100 * len(ordered)))
        return ordered[index]


class OpenLoopGenerator:
    """Issues requests at a (possibly Poisson) arrival rate."""

    def __init__(self, sim: Simulator, transport: AsyncTransport,
                 operation: str,
                 make_args: Callable[[int], tuple] = lambda i: (),
                 rate: float = 100.0,
                 poisson: bool = False,
                 seed: int = 0,
                 registry: MetricRegistry | None = None,
                 metric: str = "latency") -> None:
        self.sim = sim
        self.transport = transport
        self.operation = operation
        self.make_args = make_args
        self.rate = rate
        self.poisson = poisson
        self.rng = random.Random(seed)
        self.registry = registry
        self.metric = metric
        self.stats = TrafficStats()
        self._running = False
        self._chained = True

    def _interval(self) -> float:
        if self.poisson:
            return self.rng.expovariate(self.rate)
        return 1.0 / self.rate

    def start(self, duration: float | None = None,
              preschedule: bool = False) -> "OpenLoopGenerator":
        """Begin issuing requests.

        With ``preschedule=True`` (requires ``duration``) every arrival
        instant is drawn up front and bulk-inserted with
        ``Simulator.schedule_many`` — one heapify instead of a
        schedule-per-arrival chain.  Arrival times and the RNG draw
        sequence are identical to the chained mode; only the event
        insertion order differs (all arrivals first), so use it for
        throughput drivers, not for interleaving-sensitive replays.
        """
        self._running = True
        stop_at = None if duration is None else self.sim.now + duration
        if preschedule:
            if stop_at is None:
                raise ValueError("preschedule requires a duration")
            self._chained = False
            items = []
            t = self.sim.now
            while True:
                t += self._interval()
                if t > stop_at:
                    break
                items.append((t, self._fire, (stop_at,)))
            self.sim.schedule_many(items, absolute=True)
        else:
            self._chained = True
            self._schedule_next(stop_at)
        return self

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self, stop_at: float | None) -> None:
        if not self._running or not self._chained:
            return
        interval = self._interval()
        if stop_at is not None and self.sim.now + interval > stop_at:
            self._running = False
            return
        self.sim.schedule(self._fire, stop_at, delay=interval)

    def _fire(self, stop_at: float | None) -> None:
        if not self._running:
            return
        index = self.stats.issued
        self.stats.issued += 1
        sent_at = self.sim.now

        def on_result(_result: Any) -> None:
            latency = self.sim.now - sent_at
            self.stats.succeeded += 1
            self.stats.latencies.append(latency)
            if self.registry is not None:
                self.registry.record(self.metric, latency, self.sim.now)

        def on_error(_error: Exception) -> None:
            self.stats.failed += 1
            if self.registry is not None:
                self.registry.record(f"{self.metric}.errors", 1.0, self.sim.now)

        self.transport(self.operation, self.make_args(index),
                       on_result, on_error)
        self._schedule_next(stop_at)


class ClosedLoopGenerator:
    """Keeps ``concurrency`` requests outstanding (think-time optional)."""

    def __init__(self, sim: Simulator, transport: AsyncTransport,
                 operation: str,
                 make_args: Callable[[int], tuple] = lambda i: (),
                 concurrency: int = 4,
                 think_time: float = 0.0,
                 registry: MetricRegistry | None = None,
                 metric: str = "latency") -> None:
        self.sim = sim
        self.transport = transport
        self.operation = operation
        self.make_args = make_args
        self.concurrency = concurrency
        self.think_time = think_time
        self.registry = registry
        self.metric = metric
        self.stats = TrafficStats()
        self._running = False

    def start(self) -> "ClosedLoopGenerator":
        self._running = True
        for _ in range(self.concurrency):
            self.sim.call_soon(self._issue)
        return self

    def stop(self) -> None:
        self._running = False

    def _issue(self) -> None:
        if not self._running:
            return
        index = self.stats.issued
        self.stats.issued += 1
        sent_at = self.sim.now

        def again() -> None:
            if self.think_time > 0:
                self.sim.schedule(self._issue, delay=self.think_time)
            else:
                self.sim.call_soon(self._issue)

        def on_result(_result: Any) -> None:
            latency = self.sim.now - sent_at
            self.stats.succeeded += 1
            self.stats.latencies.append(latency)
            if self.registry is not None:
                self.registry.record(self.metric, latency, self.sim.now)
            again()

        def on_error(_error: Exception) -> None:
            self.stats.failed += 1
            again()

        self.transport(self.operation, self.make_args(index),
                       on_result, on_error)


def binding_transport(required_port: Any) -> AsyncTransport:
    """Adapt a kernel required port to the generator transport API."""

    def transport(operation: str, args: tuple,
                  on_result: Callable[[Any], None],
                  on_error: Callable[[Exception], None]) -> None:
        try:
            required_port.call_async(operation, *args, on_result=on_result)
        except Exception as exc:  # noqa: BLE001 - routed to accounting
            on_error(exc)

    return transport


def proxy_transport(proxy: Any) -> AsyncTransport:
    """Adapt a middleware proxy to the generator transport API."""

    def transport(operation: str, args: tuple,
                  on_result: Callable[[Any], None],
                  on_error: Callable[[Exception], None]) -> None:
        proxy.call(operation, *args, on_result=on_result, on_error=on_error)

    return transport

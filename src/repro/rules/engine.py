"""The interaction-rule engine.

Rules install as interceptors on the components they govern.  Before
accepting a rule set the engine performs FLO/C's semantic check: "to
guarantee that there is no occurrence of a cycle in the calling tree,
rules are parsed and semantically checked".
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import RuleError
from repro.kernel.component import Invocation
from repro.kernel.registry import Registry
from repro.rules.cycle_check import check_acyclic
from repro.rules.operators import CallAction, Rule, RuleOperator


class RuleEngine:
    """Holds the rule set and enforces it over registered components."""

    def __init__(self, registry: Registry) -> None:
        self.registry = registry
        self.rules: list[Rule] = []
        #: Deferred (rule, action, invocation) entries from impliesLater.
        self.deferred: list[tuple[Rule, CallAction, Invocation]] = []
        #: Buffered (rule, invocation, proceed) entries from waitUntil.
        self.waiting: list[tuple[Rule, Invocation, Callable]] = []
        self._installed: dict[str, list] = {}
        self._pump = None

    # -- rule management ------------------------------------------------------

    def add_rule(self, rule: Rule) -> None:
        """Add one rule after checking the combined set stays acyclic."""
        if any(existing.name == rule.name for existing in self.rules):
            raise RuleError(f"rule {rule.name!r} already exists")
        candidate = self.rules + [rule]
        check_acyclic(candidate)
        self.rules.append(rule)
        self._reinstall()

    def add_rules(self, rules: list[Rule]) -> None:
        """Add a batch atomically: all or none."""
        names = {r.name for r in self.rules}
        for rule in rules:
            if rule.name in names:
                raise RuleError(f"rule {rule.name!r} already exists")
            names.add(rule.name)
        check_acyclic(self.rules + rules)
        self.rules.extend(rules)
        self._reinstall()

    def remove_rule(self, name: str) -> Rule:
        for rule in self.rules:
            if rule.name == name:
                self.rules.remove(rule)
                self._reinstall()
                return rule
        raise RuleError(f"no rule named {name!r}")

    # -- installation -----------------------------------------------------------

    def _reinstall(self) -> None:
        """Re-sync interceptors on every registered component."""
        for component_name, entries in self._installed.items():
            for port, interceptor in entries:
                try:
                    port.remove_interceptor(interceptor)
                except Exception:  # noqa: BLE001 - port may be gone
                    pass
        self._installed.clear()
        for component in self.registry:
            entries = []
            for port in component.provided.values():
                interceptor = self._make_interceptor(component.name, port.name)
                port.add_interceptor(interceptor)
                entries.append((port, interceptor))
            self._installed[component.name] = entries

    def govern(self, component_name: str) -> None:
        """Install interceptors on a component registered after the rules."""
        component = self.registry.lookup(component_name)
        if component_name in self._installed:
            return
        entries = []
        for port in component.provided.values():
            interceptor = self._make_interceptor(component.name, port.name)
            port.add_interceptor(interceptor)
            entries.append((port, interceptor))
        self._installed[component_name] = entries

    def _make_interceptor(self, component_name: str, port_name: str) -> Callable:
        def interceptor(invocation: Invocation, proceed: Callable) -> Any:
            return self._apply_rules(component_name, invocation, proceed)

        return interceptor

    # -- semantics -----------------------------------------------------------------

    def _matching(self, component_name: str, operation: str) -> list[Rule]:
        return [
            rule for rule in self.rules
            if rule.trigger.matches(component_name, operation)
        ]

    def _apply_rules(self, component_name: str, invocation: Invocation,
                     proceed: Callable) -> Any:
        matching = self._matching(component_name, invocation.operation)

        for rule in matching:
            if rule.operator is RuleOperator.PERMITTED_IF:
                assert rule.guard is not None
                if not rule.guard(invocation):
                    raise RuleError(
                        f"rule {rule.name!r}: {component_name}."
                        f"{invocation.operation} is not permitted"
                    )
                rule.fire_count += 1

        for rule in matching:
            if rule.operator is RuleOperator.WAIT_UNTIL:
                assert rule.guard is not None
                if not rule.guard(invocation):
                    self.waiting.append((rule, invocation, proceed))
                    return None

        for rule in matching:
            if rule.operator is RuleOperator.IMPLIES_BEFORE:
                self._run_action(rule, invocation)

        result = proceed(invocation)

        for rule in matching:
            if rule.operator is RuleOperator.IMPLIES:
                self._run_action(rule, invocation)
            elif rule.operator is RuleOperator.IMPLIES_LATER:
                assert rule.action is not None
                self.deferred.append((rule, rule.action, invocation))

        return result

    def _run_action(self, rule: Rule, trigger_invocation: Invocation) -> Any:
        assert rule.action is not None
        rule.fire_count += 1
        component = self.registry.lookup(rule.action.component)
        args = rule.action.args_builder(trigger_invocation)
        action_invocation = Invocation(
            rule.action.operation, tuple(args), caller=f"rule:{rule.name}"
        )
        for port in component.provided.values():
            if rule.action.operation in port.interface:
                return port.invoke(action_invocation)
        raise RuleError(
            f"rule {rule.name!r}: component {rule.action.component!r} has no "
            f"operation {rule.action.operation!r}"
        )

    # -- pumps ---------------------------------------------------------------------

    def run_deferred(self) -> int:
        """Execute queued impliesLater actions; returns how many ran."""
        pending, self.deferred = self.deferred, []
        for rule, action, invocation in pending:
            self._run_action(rule, invocation)
        return len(pending)

    def poke_waiting(self) -> int:
        """Re-evaluate waitUntil guards; release and run newly-satisfied
        invocations (in arrival order).  Returns how many were released."""
        released = 0
        still_waiting = []
        for rule, invocation, proceed in self.waiting:
            assert rule.guard is not None
            if rule.guard(invocation):
                rule.fire_count += 1
                proceed(invocation)
                released += 1
            else:
                still_waiting.append((rule, invocation, proceed))
        self.waiting = still_waiting
        return released

    @property
    def waiting_count(self) -> int:
        return len(self.waiting)

    def start(self, sim, period: float = 0.1) -> "RuleEngine":
        """Pump deferred actions and waiting guards on the simulated
        clock — impliesLater becomes genuinely *later* and waitUntil
        releases as soon as a pump tick finds its guard open."""
        from repro.events import PeriodicTimer

        if self._pump is None or not self._pump.running:
            def tick() -> None:
                self.run_deferred()
                self.poke_waiting()

            self._pump = PeriodicTimer(sim, period, tick)
        return self

    def stop(self) -> None:
        if self._pump is not None:
            self._pump.stop()

"""FLO/C-style interaction rules (S13).

Five operators (implies, impliesBefore, impliesLater, permittedIf,
waitUntil), a textual grammar, static calling-tree cycle detection, and
an engine enforcing the rules over registered components.
"""

from repro.rules.cycle_check import calling_graph, check_acyclic, is_acyclic
from repro.rules.engine import RuleEngine
from repro.rules.grammar import parse_rule, parse_rules
from repro.rules.operators import CallAction, CallPattern, Rule, RuleOperator

__all__ = [
    "CallAction",
    "CallPattern",
    "Rule",
    "RuleEngine",
    "RuleOperator",
    "calling_graph",
    "check_acyclic",
    "is_acyclic",
    "parse_rule",
    "parse_rules",
]

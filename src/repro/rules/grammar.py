"""A small textual grammar for interaction rules.

Rule syntax (one rule per line; ``#`` starts a comment)::

    when billing.charge implies audit.log
    when billing.charge impliesBefore auth.check
    when media.frame impliesLater stats.count
    permit admin.shutdown if is_admin
    wait queue.pop until not_empty

Named guards (``is_admin``, ``not_empty``) are resolved against the
``guards`` mapping supplied to :func:`parse_rules`.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Mapping

from repro.errors import RuleError
from repro.rules.operators import CallAction, CallPattern, Rule, RuleOperator

_WHEN_RE = re.compile(
    r"^when\s+(?P<trigger>\S+)\s+"
    r"(?P<operator>implies|impliesBefore|impliesLater)\s+"
    r"(?P<action>\S+)$"
)
_PERMIT_RE = re.compile(
    r"^permit\s+(?P<trigger>\S+)\s+if\s+(?P<guard>\w+)$"
)
_WAIT_RE = re.compile(
    r"^wait\s+(?P<trigger>\S+)\s+until\s+(?P<guard>\w+)$"
)


def parse_rule(line: str, guards: Mapping[str, Callable[[Any], bool]] | None = None,
               name: str = "") -> Rule:
    """Parse a single rule line."""
    guards = guards or {}
    text = line.strip()
    rule_name = name or f"rule:{text}"

    match = _WHEN_RE.match(text)
    if match:
        return Rule(
            name=rule_name,
            trigger=CallPattern.parse(match.group("trigger")),
            operator=RuleOperator.parse(match.group("operator")),
            action=CallAction.parse(match.group("action")),
        )

    match = _PERMIT_RE.match(text)
    if match:
        guard = _lookup_guard(guards, match.group("guard"), text)
        return Rule(
            name=rule_name,
            trigger=CallPattern.parse(match.group("trigger")),
            operator=RuleOperator.PERMITTED_IF,
            guard=guard,
        )

    match = _WAIT_RE.match(text)
    if match:
        guard = _lookup_guard(guards, match.group("guard"), text)
        return Rule(
            name=rule_name,
            trigger=CallPattern.parse(match.group("trigger")),
            operator=RuleOperator.WAIT_UNTIL,
            guard=guard,
        )

    raise RuleError(f"cannot parse rule {line!r}")


def _lookup_guard(guards: Mapping[str, Callable[[Any], bool]],
                  name: str, line: str) -> Callable[[Any], bool]:
    try:
        return guards[name]
    except KeyError:
        raise RuleError(
            f"rule {line!r} references unknown guard {name!r}; provide it "
            "in the guards mapping"
        ) from None


def parse_rules(source: str,
                guards: Mapping[str, Callable[[Any], bool]] | None = None
                ) -> list[Rule]:
    """Parse a multi-line rule script; blank lines and comments ignored."""
    rules = []
    for index, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        rules.append(parse_rule(line, guards, name=f"rule{index}"))
    return rules

"""FLO/C-style interaction rule operators.

"FLO/C allows the operator to specify rules that should govern the
interaction between components or activities, and preserve the integrity
of the system … The system provides the following operators:
impliesLater, implies, impliesBefore, permittedIf, and waitUntil."
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import RuleError


class RuleOperator(enum.Enum):
    """The five FLO/C operators."""

    IMPLIES = "implies"              # trigger succeeds, then action runs
    IMPLIES_BEFORE = "impliesBefore"  # action runs before the trigger
    IMPLIES_LATER = "impliesLater"    # action is queued for later execution
    PERMITTED_IF = "permittedIf"      # trigger allowed only when guard holds
    WAIT_UNTIL = "waitUntil"          # trigger buffered until guard holds

    @classmethod
    def parse(cls, text: str) -> "RuleOperator":
        for operator in cls:
            if operator.value == text:
                return operator
        raise RuleError(
            f"unknown rule operator {text!r}; expected one of "
            f"{', '.join(op.value for op in cls)}"
        )


@dataclass(frozen=True)
class CallPattern:
    """A ``component.operation`` pattern; either side may be ``*``."""

    component: str
    operation: str

    @classmethod
    def parse(cls, text: str) -> "CallPattern":
        parts = text.strip().split(".")
        if len(parts) != 2 or not all(parts):
            raise RuleError(
                f"call pattern must be 'component.operation', got {text!r}"
            )
        return cls(parts[0], parts[1])

    def matches(self, component: str, operation: str) -> bool:
        return (self.component in ("*", component)
                and self.operation in ("*", operation))

    def __str__(self) -> str:
        return f"{self.component}.{self.operation}"


@dataclass(frozen=True)
class CallAction:
    """A concrete ``component.operation`` to invoke, with an argument
    builder receiving the triggering invocation."""

    component: str
    operation: str
    args_builder: Callable[[Any], tuple] = field(default=lambda invocation: ())

    @classmethod
    def parse(cls, text: str,
              args_builder: Callable[[Any], tuple] | None = None) -> "CallAction":
        parts = text.strip().split(".")
        if len(parts) != 2 or not all(parts) or "*" in parts:
            raise RuleError(
                f"rule action must be a concrete 'component.operation', "
                f"got {text!r}"
            )
        return cls(parts[0], parts[1], args_builder or (lambda invocation: ()))

    def __str__(self) -> str:
        return f"{self.component}.{self.operation}"


@dataclass
class Rule:
    """One interaction rule.

    For IMPLIES/IMPLIES_BEFORE/IMPLIES_LATER, ``action`` names the call to
    make.  For PERMITTED_IF/WAIT_UNTIL, ``guard`` is the named predicate
    evaluated against the triggering invocation.
    """

    name: str
    trigger: CallPattern
    operator: RuleOperator
    action: CallAction | None = None
    guard: Callable[[Any], bool] | None = None
    fire_count: int = 0

    def __post_init__(self) -> None:
        needs_action = self.operator in (
            RuleOperator.IMPLIES,
            RuleOperator.IMPLIES_BEFORE,
            RuleOperator.IMPLIES_LATER,
        )
        if needs_action and self.action is None:
            raise RuleError(
                f"rule {self.name!r} ({self.operator.value}) needs an action"
            )
        if not needs_action and self.guard is None:
            raise RuleError(
                f"rule {self.name!r} ({self.operator.value}) needs a guard"
            )

"""Static cycle detection over the rule-induced calling tree.

A rule whose *action* matches another rule's *trigger* chains them; if
the chain ever reaches back to the first trigger the system could loop
forever.  FLO/C rejects such rule sets at parse time; so do we.
"""

from __future__ import annotations

import networkx as nx

from repro.errors import RuleCycleError
from repro.rules.operators import Rule, RuleOperator

_ACTION_OPERATORS = (
    RuleOperator.IMPLIES,
    RuleOperator.IMPLIES_BEFORE,
    RuleOperator.IMPLIES_LATER,
)


def calling_graph(rules: list[Rule]) -> nx.DiGraph:
    """Build the directed trigger→action graph of a rule set.

    Nodes are concrete ``component.operation`` strings; wildcard triggers
    are connected to any action they could match (conservative
    over-approximation: a wildcard trigger node is linked from every
    action that matches it).
    """
    graph = nx.DiGraph()
    action_rules = [r for r in rules if r.operator in _ACTION_OPERATORS]
    for rule in action_rules:
        assert rule.action is not None
        trigger_node = str(rule.trigger)
        action_node = str(rule.action)
        graph.add_edge(trigger_node, action_node, rule=rule.name)
    # Wildcard matching: an action a chains to rule r if r's trigger
    # pattern matches a.  When the pattern is the same string as the
    # action they already share a node; a bridging edge is only needed
    # when a wildcard pattern names a distinct node.
    for rule in action_rules:
        assert rule.action is not None
        action_node = str(rule.action)
        for other in action_rules:
            trigger_node = str(other.trigger)
            if trigger_node == action_node:
                continue
            if other.trigger.matches(rule.action.component,
                                     rule.action.operation):
                graph.add_edge(action_node, trigger_node, rule=other.name)
    return graph


def check_acyclic(rules: list[Rule]) -> None:
    """Raise :class:`RuleCycleError` when the calling tree has a cycle."""
    graph = calling_graph(rules)
    try:
        cycle = nx.find_cycle(graph)
    except nx.NetworkXNoCycle:
        return
    path = " -> ".join(edge[0] for edge in cycle) + f" -> {cycle[0][0]}"
    raise RuleCycleError(
        f"rule set would create a cycle in the calling tree: {path}"
    )


def is_acyclic(rules: list[Rule]) -> bool:
    """Boolean form of :func:`check_acyclic`."""
    try:
        check_acyclic(rules)
    except RuleCycleError:
        return False
    return True

"""Component model (substrate S3).

Components with typed, versioned interfaces; provided/required ports with
an interceptor pipeline; dynamic bindings with blocking and redirect;
containers applying EJB/CCM-style deployment descriptors; a registry for
lookup and introspection.
"""

from repro.kernel.assembly import Assembly
from repro.kernel.binding import Binding, BindingMode, BindingStats, PendingCall, bind
from repro.kernel.component import (
    Component,
    Interceptor,
    Invocable,
    Invocation,
    Observer,
    ProvidedPort,
    RequiredPort,
)
from repro.kernel.container import Container
from repro.kernel.descriptor import DeploymentDescriptor, PlacementConstraint
from repro.kernel.interface import (
    Interface,
    InterfaceAdapter,
    Operation,
    interface_of,
)
from repro.kernel.lifecycle import Lifecycle, LifecycleState
from repro.kernel.registry import Registry
from repro.kernel.versioning import Version

__all__ = [
    "Assembly",
    "Binding",
    "BindingMode",
    "BindingStats",
    "Component",
    "Container",
    "DeploymentDescriptor",
    "Interceptor",
    "Interface",
    "InterfaceAdapter",
    "Invocable",
    "Invocation",
    "Lifecycle",
    "LifecycleState",
    "Observer",
    "Operation",
    "PendingCall",
    "PlacementConstraint",
    "ProvidedPort",
    "Registry",
    "RequiredPort",
    "Version",
    "bind",
    "interface_of",
]

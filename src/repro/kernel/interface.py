"""Typed component interfaces.

An :class:`Interface` is a named, versioned set of operations — the unit
the paper's *interface modification* reconfigurations manipulate.
Structural compatibility is checked operation-by-operation so that a new
interface version can be verified to "keep the compliancy with previous
versions" before it replaces the old one, and adapters can bridge
renamed operations for old callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping

from repro.errors import InterfaceError, VersionError
from repro.kernel.versioning import Version


@dataclass(frozen=True)
class Operation:
    """One operation signature.

    ``params`` are positional parameter names; ``optional`` counts how
    many trailing params have defaults (so calls may omit them).
    """

    name: str
    params: tuple[str, ...] = ()
    optional: int = 0
    returns: str = "any"

    def __post_init__(self) -> None:
        if not self.name:
            raise InterfaceError("operation name must be non-empty")
        if self.optional > len(self.params):
            raise InterfaceError(
                f"operation {self.name!r}: optional={self.optional} exceeds "
                f"{len(self.params)} parameters"
            )

    @property
    def min_arity(self) -> int:
        return len(self.params) - self.optional

    @property
    def max_arity(self) -> int:
        return len(self.params)

    def accepts_arity(self, n: int) -> bool:
        return self.min_arity <= n <= self.max_arity

    def extends(self, older: "Operation") -> bool:
        """True when this signature can serve calls written against
        ``older``: old required params are a prefix, and any new
        parameters are optional."""
        if self.name != older.name:
            return False
        if self.params[: len(older.params)] != older.params:
            return False
        extra = len(self.params) - len(older.params)
        if extra > self.optional:
            return False
        return self.min_arity <= older.min_arity


class Interface:
    """A named, versioned collection of operations."""

    def __init__(
        self,
        name: str,
        version: Version | str = Version(1, 0),
        operations: Iterable[Operation] = (),
    ) -> None:
        if not name:
            raise InterfaceError("interface name must be non-empty")
        self.name = name
        self.version = Version.parse(version) if isinstance(version, str) else version
        self.operations: dict[str, Operation] = {}
        for operation in operations:
            self.add_operation(operation)

    def add_operation(self, operation: Operation) -> "Interface":
        if operation.name in self.operations:
            raise InterfaceError(
                f"interface {self.name!r} already has operation {operation.name!r}"
            )
        self.operations[operation.name] = operation
        return self

    def operation(self, name: str) -> Operation:
        try:
            return self.operations[name]
        except KeyError:
            raise InterfaceError(
                f"interface {self.name!r} has no operation {name!r}"
            ) from None

    def __contains__(self, operation_name: str) -> bool:
        return operation_name in self.operations

    # -- compatibility -------------------------------------------------------

    def satisfies(self, required: "Interface") -> bool:
        """Structural + version compatibility with a requirement.

        This interface can be plugged where ``required`` is expected iff
        the names match, the version is compatible, and every required
        operation is extended by one of ours.
        """
        if self.name != required.name:
            return False
        if not self.version.compatible_with(required.version):
            return False
        return all(
            name in self.operations and self.operations[name].extends(operation)
            for name, operation in required.operations.items()
        )

    def evolve(
        self,
        add: Iterable[Operation] = (),
        extend: Mapping[str, Operation] | None = None,
        breaking: bool = False,
    ) -> "Interface":
        """Produce the next interface version.

        ``add`` introduces new operations; ``extend`` replaces existing
        signatures (must remain compatible unless ``breaking``).  A
        non-breaking evolution bumps the minor version and is verified to
        satisfy the old interface; a breaking one bumps the major.
        """
        version = self.version.bump_major() if breaking else self.version.bump_minor()
        operations = dict(self.operations)
        for name, operation in (extend or {}).items():
            if name not in operations:
                raise InterfaceError(
                    f"cannot extend unknown operation {name!r} of {self.name!r}"
                )
            if not breaking and not operation.extends(operations[name]):
                raise VersionError(
                    f"extension of {name!r} breaks compatibility; "
                    "pass breaking=True for a major bump"
                )
            operations[name] = operation
        new = Interface(self.name, version, operations.values())
        for operation in add:
            new.add_operation(operation)
        if not breaking and not new.satisfies(self):
            raise VersionError(
                f"evolved interface {self.name!r} v{version} does not satisfy "
                f"v{self.version}"
            )
        return new

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Interface({self.name!r} v{self.version}, {len(self.operations)} ops)"


@dataclass
class InterfaceAdapter:
    """Bridges calls written against an old interface to a new provider.

    ``renames`` maps old operation names to new ones; ``fill_optional``
    supplies values for the old operation's *optional* parameters when a
    caller omitted them (aligned with the optional parameter positions);
    ``defaults`` supplies values for parameters that are *new* in the new
    signature.  Used by the interface-modification reconfiguration to
    keep old callers working across breaking evolutions.
    """

    old: Interface
    new: Interface
    renames: dict[str, str] = field(default_factory=dict)
    defaults: dict[str, tuple[Any, ...]] = field(default_factory=dict)
    fill_optional: dict[str, tuple[Any, ...]] = field(default_factory=dict)

    def translate(
        self, operation: str, args: tuple[Any, ...]
    ) -> tuple[str, tuple[Any, ...]]:
        """Map an old-style call to a new-style (operation, args) pair."""
        if operation not in self.old:
            raise InterfaceError(
                f"adapter: {operation!r} is not part of {self.old.name!r} "
                f"v{self.old.version}"
            )
        legacy = self.old.operation(operation)
        fill = self.fill_optional.get(operation, ())
        padded = args
        if fill and len(padded) < legacy.max_arity:
            # Optional legacy params occupy positions min_arity..max_arity-1;
            # take the fills for the positions the caller left out.
            start = len(padded) - legacy.min_arity
            padded = padded + tuple(fill[start:])
        new_name = self.renames.get(operation, operation)
        new_operation = self.new.operation(new_name)
        padded = padded + self.defaults.get(operation, ())
        if not new_operation.accepts_arity(len(padded)):
            raise InterfaceError(
                f"adapter: cannot map {operation}/{len(args)} onto "
                f"{new_name}/{new_operation.min_arity}..{new_operation.max_arity}"
            )
        return new_name, padded

    def verify(self) -> None:
        """Check every old call shape maps onto the new interface."""
        for name, operation in self.old.operations.items():
            for arity in range(operation.min_arity, operation.max_arity + 1):
                probe = tuple(object() for _ in range(arity))
                self.translate(name, probe)


def interface_of(obj: Any, name: str, version: Version | str = Version(1, 0)) -> Interface:
    """Derive an :class:`Interface` from a plain Python object's public
    methods — convenient for quick component implementations."""
    import inspect

    operations = []
    for attr_name in dir(obj):
        if attr_name.startswith("_"):
            continue
        attr = getattr(obj, attr_name)
        if not callable(attr):
            continue
        try:
            signature = inspect.signature(attr)
        except (TypeError, ValueError):  # pragma: no cover - builtins
            continue
        params = [
            p for p in signature.parameters.values()
            if p.kind in (p.POSITIONAL_ONLY, p.POSITIONAL_OR_KEYWORD)
        ]
        optional = sum(1 for p in params if p.default is not p.empty)
        operations.append(
            Operation(attr_name, tuple(p.name for p in params), optional)
        )
    return Interface(name, version, operations)

"""Deployment descriptors.

Modelled on the EJB deployment descriptor / CCM component package the
paper surveys: a declarative record of what a component needs from its
runtime environment — placement constraints, resource reservations,
non-functional services (transactions, persistence, security) and QoS
properties.  The container reads the descriptor and generates the
"adequate interposition code" (here: interceptors) at deployment time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import DeploymentError


@dataclass(frozen=True)
class PlacementConstraint:
    """Where a component may be deployed.

    Attributes:
        regions: allowed node regions (empty = anywhere).
        forbidden_nodes: nodes that must not host the component.
        colocate_with: component names that must share its node.
        separate_from: component names that must not share its node.
    """

    regions: frozenset[str] = frozenset()
    forbidden_nodes: frozenset[str] = frozenset()
    colocate_with: frozenset[str] = frozenset()
    separate_from: frozenset[str] = frozenset()

    def allows_node(self, node_name: str, node_region: str) -> bool:
        if node_name in self.forbidden_nodes:
            return False
        if self.regions and node_region not in self.regions:
            return False
        return True


@dataclass
class DeploymentDescriptor:
    """Prerequisites and policies for one component deployment.

    ``services`` mirror the CCM/EJB container services ("transaction,
    persistency, security, database support"): each named service causes
    the container to install a corresponding interceptor.
    """

    component_name: str
    cpu_reservation: float = 0.0
    placement: PlacementConstraint = field(default_factory=PlacementConstraint)
    services: tuple[str, ...] = ()
    qos_properties: dict[str, float] = field(default_factory=dict)
    config: dict[str, Any] = field(default_factory=dict)

    #: Services a container knows how to provide.
    KNOWN_SERVICES = frozenset(
        {"transactions", "persistence", "security", "logging", "metering"}
    )

    def validate(self) -> None:
        """Raise :class:`DeploymentError` on an ill-formed descriptor."""
        if not self.component_name:
            raise DeploymentError("descriptor needs a component name")
        if self.cpu_reservation < 0:
            raise DeploymentError(
                f"cpu_reservation must be >= 0, got {self.cpu_reservation}"
            )
        unknown = set(self.services) - self.KNOWN_SERVICES
        if unknown:
            raise DeploymentError(
                f"descriptor for {self.component_name!r} requests unknown "
                f"services: {sorted(unknown)}"
            )
        overlap = self.placement.colocate_with & self.placement.separate_from
        if overlap:
            raise DeploymentError(
                f"descriptor for {self.component_name!r} both colocates with "
                f"and separates from: {sorted(overlap)}"
            )
        for key, value in self.qos_properties.items():
            if value < 0:
                raise DeploymentError(
                    f"QoS property {key!r} must be >= 0, got {value}"
                )

"""Component lifecycle.

The lifecycle gives the reconfiguration engine its safe points: a
component must be driven to ``PASSIVE`` (quiescent — no call in progress,
no new calls accepted) before it may be replaced or migrated, which is the
paper's "waiting to reach a reconfiguration point".
"""

from __future__ import annotations

import enum
from typing import Callable

from repro.errors import LifecycleError


class LifecycleState(enum.Enum):
    """States a component moves through."""

    CREATED = "created"          # constructed, not yet initialised
    INITIALIZED = "initialized"  # state variables set up, not serving
    ACTIVE = "active"            # serving calls
    PASSIVE = "passive"          # quiescent: frozen for reconfiguration
    STOPPED = "stopped"          # permanently removed

    def __str__(self) -> str:  # pragma: no cover - debug aid
        return self.value


#: Legal transitions; anything else raises LifecycleError.
_TRANSITIONS: dict[LifecycleState, frozenset[LifecycleState]] = {
    LifecycleState.CREATED: frozenset({LifecycleState.INITIALIZED,
                                       LifecycleState.STOPPED}),
    LifecycleState.INITIALIZED: frozenset({LifecycleState.ACTIVE,
                                           LifecycleState.STOPPED}),
    LifecycleState.ACTIVE: frozenset({LifecycleState.PASSIVE,
                                      LifecycleState.STOPPED}),
    LifecycleState.PASSIVE: frozenset({LifecycleState.ACTIVE,
                                       LifecycleState.STOPPED}),
    LifecycleState.STOPPED: frozenset(),
}


class Lifecycle:
    """A guarded lifecycle state machine with transition observers."""

    def __init__(self) -> None:
        self._state = LifecycleState.CREATED
        self.observers: list[Callable[[LifecycleState, LifecycleState], None]] = []
        self.history: list[LifecycleState] = [LifecycleState.CREATED]

    @property
    def state(self) -> LifecycleState:
        return self._state

    def transition(self, target: LifecycleState) -> None:
        """Move to ``target`` or raise :class:`LifecycleError`."""
        if target == self._state:
            return
        if target not in _TRANSITIONS[self._state]:
            raise LifecycleError(
                f"illegal lifecycle transition {self._state} -> {target}"
            )
        previous, self._state = self._state, target
        self.history.append(target)
        for observer in list(self.observers):
            observer(previous, target)

    # -- convenience guards --------------------------------------------------

    @property
    def can_serve(self) -> bool:
        return self._state is LifecycleState.ACTIVE

    @property
    def is_quiescent(self) -> bool:
        return self._state is LifecycleState.PASSIVE

    @property
    def is_stopped(self) -> bool:
        return self._state is LifecycleState.STOPPED

    def require(self, *states: LifecycleState) -> None:
        """Raise unless the current state is one of ``states``."""
        if self._state not in states:
            expected = ", ".join(str(s) for s in states)
            raise LifecycleError(
                f"operation requires lifecycle state in {{{expected}}}, "
                f"component is {self._state}"
            )

"""Assemblies: complete running configurations.

An :class:`Assembly` is "the global structure of the application" — the
object dynamic reconfiguration manipulates.  It owns the registry, one
container per simulated node, all tracked bindings and all connectors,
and can render itself as an architecture graph for consistency analysis
and RAML introspection.
"""

from __future__ import annotations

from typing import Any

import networkx as nx

from repro.errors import BindingError, ComponentError, DeploymentError
from repro.kernel.binding import Binding, bind
from repro.kernel.component import Component, Invocable
from repro.kernel.container import Container
from repro.kernel.descriptor import DeploymentDescriptor
from repro.kernel.registry import Registry
from repro.netsim.network import Network


class Assembly:
    """A deployed component configuration over a simulated network."""

    def __init__(self, network: Network, name: str = "app") -> None:
        self.name = name
        self.network = network
        self.registry = Registry()
        self.containers: dict[str, Container] = {}
        self.bindings: list[Binding] = []
        self.connectors: dict[str, Any] = {}  # repro.connectors.Connector

    @property
    def sim(self):
        return self.network.sim

    # -- deployment ------------------------------------------------------------

    def container_on(self, node_name: str) -> Container:
        """The container of a node, created on first use."""
        if node_name not in self.containers:
            node = self.network.node(node_name)
            self.containers[node_name] = Container(node, self.registry)
        return self.containers[node_name]

    def deploy(self, component: Component, node_name: str,
               descriptor: DeploymentDescriptor | None = None) -> Component:
        """Deploy a component onto a node through its container."""
        return self.container_on(node_name).deploy(component, descriptor)

    def undeploy(self, component_name: str, stop: bool = True) -> Component:
        container = self._container_hosting(component_name)
        return container.undeploy(component_name, stop=stop)

    def _container_hosting(self, component_name: str) -> Container:
        component = self.registry.lookup(component_name)
        node_name = component.node_name
        if node_name is None or node_name not in self.containers:
            raise DeploymentError(
                f"component {component_name!r} is not hosted by any container"
            )
        return self.containers[node_name]

    def component(self, name: str) -> Component:
        return self.registry.lookup(name)

    # -- wiring ----------------------------------------------------------------

    def connect(self, source_component: str, required_port: str,
                target: Invocable | None = None,
                target_component: str | None = None,
                target_port: str = "svc") -> Binding:
        """Bind a required port to a provided port or connector endpoint.

        Either pass ``target`` (any invocable) or name a component's
        provided port.
        """
        source = self.registry.lookup(source_component).required_port(required_port)
        if target is None:
            if target_component is None:
                raise BindingError(
                    "connect() needs either target or target_component"
                )
            target = self.registry.lookup(target_component).provided_port(target_port)
        binding = bind(source, target)
        self.bindings.append(binding)
        return binding

    def disconnect(self, binding: Binding) -> None:
        binding.unbind()
        if binding in self.bindings:
            self.bindings.remove(binding)

    def add_connector(self, connector: Any) -> Any:
        if connector.name in self.connectors:
            raise ComponentError(
                f"assembly already has a connector named {connector.name!r}"
            )
        self.connectors[connector.name] = connector
        return connector

    def remove_connector(self, name: str) -> Any:
        try:
            return self.connectors.pop(name)
        except KeyError:
            raise ComponentError(f"no connector named {name!r}") from None

    # -- queries ---------------------------------------------------------------

    def bindings_from(self, component_name: str) -> list[Binding]:
        """Bindings whose source is a port of ``component_name``."""
        return [
            binding for binding in self.bindings
            if binding.source.component.name == component_name
        ]

    def bindings_to(self, component_name: str) -> list[Binding]:
        """Bindings whose current target belongs to ``component_name``."""
        matches = []
        for binding in self.bindings:
            owner = getattr(binding.target, "component", None)
            if owner is not None and owner.name == component_name:
                matches.append(binding)
        return matches

    def bindings_touching(self, component_name: str) -> list[Binding]:
        seen: list[Binding] = []
        for binding in self.bindings_from(component_name):
            seen.append(binding)
        for binding in self.bindings_to(component_name):
            if binding not in seen:
                seen.append(binding)
        return seen

    # -- introspection -----------------------------------------------------------

    def architecture_graph(self) -> nx.DiGraph:
        """Directed graph: component/connector nodes, binding/attachment
        edges — the structural view consistency checks run on."""
        graph = nx.DiGraph()
        for component in self.registry:
            graph.add_node(component.name, kind="component",
                           node=component.node_name,
                           lifecycle=str(component.lifecycle.state))
        for connector in self.connectors.values():
            graph.add_node(connector.name, kind="connector",
                           connector_kind=connector.kind)
            for role_name, attachments in connector.attachments.items():
                for attachment in attachments:
                    owner = getattr(attachment.target, "component", None)
                    if owner is not None:
                        graph.add_edge(connector.name, owner.name,
                                       kind="attachment", role=role_name)
        for binding in self.bindings:
            source_name = binding.source.component.name
            target = binding.target
            owner = getattr(target, "component", None)
            if owner is not None:
                graph.add_edge(source_name, owner.name, kind="binding",
                               port=binding.source.name)
            else:
                connector = getattr(target, "connector", None)
                if connector is not None:
                    graph.add_edge(source_name, connector.name, kind="binding",
                                   port=binding.source.name)
        return graph

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "components": self.registry.describe(),
            "connectors": {
                name: connector.describe()
                for name, connector in self.connectors.items()
            },
            "bindings": [binding.describe() for binding in self.bindings],
            "nodes": self.network.utilisation_map(),
        }

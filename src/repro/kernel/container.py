"""Containers: the execution model of the component platform.

Mirrors the CCM/EJB execution model the paper describes: "the container
intercepts the incoming requests and plays a similar role as the Portable
Object Adaptor".  A container lives on one simulated node, enforces the
deployment descriptor (placement, CPU reservation), and installs
*interposition* interceptors for the declared non-functional services.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import DeploymentError, LifecycleError
from repro.kernel.component import Component, Invocation
from repro.kernel.lifecycle import LifecycleState
from repro.kernel.descriptor import DeploymentDescriptor
from repro.kernel.registry import Registry
from repro.netsim.node import Node


class Container:
    """Hosts components on a node and applies their descriptors."""

    def __init__(self, node: Node, registry: Registry | None = None) -> None:
        self.node = node
        self.registry = registry
        self.components: dict[str, Component] = {}
        self.descriptors: dict[str, DeploymentDescriptor] = {}
        self.audit_log: list[tuple[float, str, str]] = []
        self._installed: dict[str, list[tuple[Any, Callable]]] = {}
        # A node crash takes its components out of service; recovery
        # restores exactly those the crash passivated.
        self._crash_passivated: set[str] = set()
        node.on_crash.append(self._on_node_crash)
        node.on_recover.append(self._on_node_recover)

    def _on_node_crash(self, _node: Node) -> None:
        for name, component in self.components.items():
            if component.lifecycle.can_serve:
                component.passivate()
                self._crash_passivated.add(name)
        self._audit("node-crash", self.node.name)

    def _on_node_recover(self, _node: Node) -> None:
        for name in sorted(self._crash_passivated):
            component = self.components.get(name)
            if component is not None and component.lifecycle.is_quiescent:
                component.lifecycle.transition(LifecycleState.ACTIVE)
        self._crash_passivated.clear()
        self._audit("node-recover", self.node.name)

    # -- deployment -------------------------------------------------------------

    def deploy(
        self, component: Component, descriptor: DeploymentDescriptor | None = None
    ) -> Component:
        """Deploy, wire container services and activate a component."""
        descriptor = descriptor or DeploymentDescriptor(component.name)
        descriptor.validate()
        if descriptor.component_name != component.name:
            raise DeploymentError(
                f"descriptor is for {descriptor.component_name!r}, "
                f"component is {component.name!r}"
            )
        if component.name in self.components:
            raise DeploymentError(
                f"container on {self.node.name!r} already hosts "
                f"{component.name!r}"
            )
        if not descriptor.placement.allows_node(self.node.name, self.node.region):
            raise DeploymentError(
                f"placement constraints of {component.name!r} forbid node "
                f"{self.node.name!r} (region {self.node.region!r})"
            )
        if self.registry is not None:
            for peer in descriptor.placement.colocate_with:
                if peer not in self.components and peer in self.registry:
                    raise DeploymentError(
                        f"{component.name!r} must colocate with {peer!r}, "
                        f"which is on {self.registry.lookup(peer).node_name!r}"
                    )
            for peer in descriptor.placement.separate_from:
                if peer in self.components:
                    raise DeploymentError(
                        f"{component.name!r} must not share a node with {peer!r}"
                    )
            # Symmetric check: a resident may have declared separation
            # from the newcomer.
            for name, existing in self.descriptors.items():
                if component.name in existing.placement.separate_from:
                    raise DeploymentError(
                        f"{name!r} must not share a node with "
                        f"{component.name!r}"
                    )
        if descriptor.cpu_reservation:
            self.node.reserve(descriptor.cpu_reservation)

        component.node_name = self.node.name
        self.components[component.name] = component
        self.descriptors[component.name] = descriptor
        self._install_services(component, descriptor)
        if self.registry is not None and component.name not in self.registry:
            self.registry.register(component)
        if not component.lifecycle.can_serve:
            component.activate()
        self._audit("deploy", component.name)
        return component

    def undeploy(self, name: str, stop: bool = True) -> Component:
        """Remove a component from this container (releasing resources)."""
        try:
            component = self.components.pop(name)
        except KeyError:
            raise DeploymentError(
                f"container on {self.node.name!r} does not host {name!r}"
            ) from None
        descriptor = self.descriptors.pop(name)
        self._crash_passivated.discard(name)
        if descriptor.cpu_reservation:
            self.node.release(descriptor.cpu_reservation)
        for port, interceptor in self._installed.pop(name, []):
            try:
                port.remove_interceptor(interceptor)
            except Exception:  # noqa: BLE001 - best effort on teardown
                pass
        component.node_name = None
        if stop:
            try:
                component.stop()
            except LifecycleError:
                pass
        if self.registry is not None and name in self.registry:
            self.registry.unregister(name)
        self._audit("undeploy", name)
        return component

    def detach(self, name: str) -> tuple[Component, DeploymentDescriptor]:
        """Remove a component *without* stopping it — the first half of a
        migration.  The component keeps its lifecycle state."""
        if name not in self.components:
            raise DeploymentError(
                f"container on {self.node.name!r} does not host {name!r}"
            )
        descriptor = self.descriptors[name]
        component = self.components.pop(name)
        self.descriptors.pop(name)
        self._crash_passivated.discard(name)
        if descriptor.cpu_reservation:
            self.node.release(descriptor.cpu_reservation)
        for port, interceptor in self._installed.pop(name, []):
            try:
                port.remove_interceptor(interceptor)
            except Exception:  # noqa: BLE001
                pass
        component.node_name = None
        if self.registry is not None and name in self.registry:
            self.registry.unregister(name)
        self._audit("detach", name)
        return component, descriptor

    def hosts(self, name: str) -> bool:
        return name in self.components

    # -- container services ("interposition code") --------------------------------

    def _install_services(
        self, component: Component, descriptor: DeploymentDescriptor
    ) -> None:
        factories: dict[str, Callable[[Component], Any]] = {
            "logging": self._logging_interceptor,
            "security": self._security_interceptor,
            "transactions": self._transaction_interceptor,
            "persistence": self._persistence_interceptor,
            "metering": self._metering_interceptor,
        }
        installed: list[tuple[Any, Callable]] = []
        for service in descriptor.services:
            factory = factories[service]
            interceptor = factory(component)
            for port in component.provided.values():
                port.add_interceptor(interceptor)
                installed.append((port, interceptor))
        self._installed[component.name] = installed

    def _audit(self, event: str, target: str) -> None:
        self.audit_log.append((self.node.sim.now, event, target))

    def _logging_interceptor(self, component: Component) -> Any:
        def interceptor(invocation: Invocation, proceed: Callable) -> Any:
            self._audit(f"call:{invocation.operation}", component.name)
            return proceed(invocation)

        return interceptor

    def _security_interceptor(self, component: Component) -> Any:
        allowed = set(
            self.descriptors[component.name].config.get("allowed_callers", [])
        ) if component.name in self.descriptors else set()

        def interceptor(invocation: Invocation, proceed: Callable) -> Any:
            required = self.descriptors[component.name].config.get("allowed_callers")
            if required is not None and invocation.caller not in required:
                raise PermissionError(
                    f"caller {invocation.caller!r} is not permitted to invoke "
                    f"{component.name}.{invocation.operation}"
                )
            return proceed(invocation)

        del allowed  # captured via descriptor lookup for live updates
        return interceptor

    def _transaction_interceptor(self, component: Component) -> Any:
        def interceptor(invocation: Invocation, proceed: Callable) -> Any:
            snapshot = component.capture_state()
            invocation.meta["txn"] = "active"
            try:
                result = proceed(invocation)
            except Exception:
                component.restore_state(snapshot)  # rollback
                invocation.meta["txn"] = "rolled-back"
                raise
            invocation.meta["txn"] = "committed"
            return result

        return interceptor

    def _persistence_interceptor(self, component: Component) -> Any:
        store: dict[str, Any] = {}
        component.state.setdefault("_persistent", True)

        def interceptor(invocation: Invocation, proceed: Callable) -> Any:
            result = proceed(invocation)
            store["last_snapshot"] = component.capture_state()
            store["at"] = self.node.sim.now
            invocation.meta["persisted_at"] = store["at"]
            return result

        interceptor.store = store  # type: ignore[attr-defined]
        return interceptor

    def _metering_interceptor(self, component: Component) -> Any:
        def interceptor(invocation: Invocation, proceed: Callable) -> Any:
            work = float(invocation.meta.get("work", 1.0))
            invocation.meta["execution_time"] = self.node.execution_time(work)
            return proceed(invocation)

        return interceptor

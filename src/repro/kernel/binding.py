"""Bindings: the dynamic links between required and provided ports.

A binding supports the three guarantees the paper demands of
reconfiguration:

* **dynamic binding** — :meth:`Binding.redirect` atomically retargets the
  link to a new provider (after an interface-compatibility check);
* **channel preservation** — while *blocked*, asynchronous calls are
  buffered FIFO and flushed on unblock, so no message is lost, duplicated
  or reordered;
* **observability** — counters and an optional tap expose traffic to the
  RAML introspection stream.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import BindingError, InterfaceError
from repro.kernel.component import Invocable, Invocation, RequiredPort


class BindingMode(enum.Enum):
    ACTIVE = "active"
    BLOCKED = "blocked"


@dataclass
class PendingCall:
    """A buffered asynchronous call awaiting unblock."""

    invocation: Invocation
    on_result: Callable[[Any], None] | None = None


@dataclass
class BindingStats:
    calls: int = 0
    buffered: int = 0
    flushed: int = 0
    redirects: int = 0
    errors: int = 0


class Binding:
    """A point-to-point link from a required port to an invocable target."""

    def __init__(
        self,
        source: RequiredPort,
        target: Invocable,
        check_compatibility: bool = True,
    ) -> None:
        if check_compatibility and not target.interface.satisfies(source.interface):
            raise InterfaceError(
                f"provider {target.interface.name!r} v{target.interface.version} "
                f"does not satisfy requirement {source.interface.name!r} "
                f"v{source.interface.version}"
            )
        self.source = source
        self.target = target
        self.mode = BindingMode.ACTIVE
        self.buffer: list[PendingCall] = []
        self.stats = BindingStats()
        #: Optional tap observing (invocation, result_or_exc, ok) triples.
        self.taps: list[Callable[[Invocation, Any, bool], None]] = []
        source.binding = self

    # -- invocation -------------------------------------------------------------

    def call(self, operation: str, *args: Any, caller: str = "", **kwargs: Any) -> Any:
        """Synchronous call; raises :class:`BindingError` while blocked."""
        if self.mode is BindingMode.BLOCKED:
            raise BindingError(
                f"binding {self.describe()} is blocked (reconfiguration in "
                "progress); use call_async for transparent buffering"
            )
        invocation = Invocation(operation, args, kwargs, caller=caller)
        return self._deliver(invocation)

    def call_async(
        self,
        operation: str,
        *args: Any,
        on_result: Callable[[Any], None] | None = None,
        caller: str = "",
        **kwargs: Any,
    ) -> None:
        """Asynchronous call; buffered while the binding is blocked."""
        invocation = Invocation(operation, args, kwargs, caller=caller)
        if self.mode is BindingMode.BLOCKED:
            self.buffer.append(PendingCall(invocation, on_result))
            self.stats.buffered += 1
            return
        result = self._deliver(invocation)
        if on_result is not None:
            on_result(result)

    def _deliver(self, invocation: Invocation) -> Any:
        self.stats.calls += 1
        try:
            result = self.target.invoke(invocation)
        except Exception as exc:
            self.stats.errors += 1
            for tap in self.taps:
                tap(invocation, exc, False)
            raise
        for tap in self.taps:
            tap(invocation, result, True)
        return result

    # -- reconfiguration support --------------------------------------------------

    def block(self) -> None:
        """Enter the quiescent mode: new async calls buffer, sync calls fail."""
        self.mode = BindingMode.BLOCKED

    def unblock(self) -> None:
        """Leave quiescent mode and flush buffered calls in FIFO order."""
        self.mode = BindingMode.ACTIVE
        pending, self.buffer = self.buffer, []
        for call in pending:
            self.stats.flushed += 1
            result = self._deliver(call.invocation)
            if call.on_result is not None:
                call.on_result(result)

    @property
    def is_blocked(self) -> bool:
        return self.mode is BindingMode.BLOCKED

    @property
    def pending_count(self) -> int:
        return len(self.buffer)

    def redirect(self, new_target: Invocable, check_compatibility: bool = True) -> None:
        """Atomically retarget the binding — the paper's dynamic binding.

        Safe to call while blocked; buffered calls will flush to the new
        target on unblock ("redirecting the calls to new components").
        """
        if check_compatibility and not new_target.interface.satisfies(
            self.source.interface
        ):
            raise InterfaceError(
                f"redirect rejected: {new_target.interface.name!r} "
                f"v{new_target.interface.version} does not satisfy "
                f"{self.source.interface.name!r} v{self.source.interface.version}"
            )
        self.target = new_target
        self.stats.redirects += 1

    def unbind(self) -> None:
        """Detach from the source port; pending calls are abandoned
        (callers must re-establish)."""
        if self.source.binding is self:
            self.source.binding = None
        self.buffer.clear()

    def describe(self) -> str:
        target_name = getattr(self.target, "qualified_name", None) or getattr(
            self.target, "name", repr(self.target)
        )
        return f"{self.source.qualified_name} -> {target_name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Binding({self.describe()}, {self.mode.value})"


def bind(source: RequiredPort, target: Invocable, check: bool = True) -> Binding:
    """Create a binding (convenience wrapper)."""
    if source.binding is not None:
        raise BindingError(
            f"required port {source.qualified_name} is already bound; "
            "redirect or unbind first"
        )
    return Binding(source, target, check_compatibility=check)

"""Interface versioning.

Supports the paper's *interface modification* change class: "signatures of
the provided services are modified and extended while keeping the
compliancy with previous versions".  Versions form a partial order;
``major`` bumps break compatibility, ``minor`` bumps must stay
backward-compatible (checked structurally in
:mod:`repro.kernel.interface`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import total_ordering

from repro.errors import VersionError

_VERSION_RE = re.compile(r"^(\d+)\.(\d+)$")


@total_ordering
@dataclass(frozen=True)
class Version:
    """A ``major.minor`` interface version."""

    major: int
    minor: int

    def __post_init__(self) -> None:
        if self.major < 0 or self.minor < 0:
            raise VersionError(f"version numbers must be non-negative: {self}")

    @classmethod
    def parse(cls, text: str) -> "Version":
        match = _VERSION_RE.match(text.strip())
        if not match:
            raise VersionError(f"cannot parse version {text!r} (expected N.M)")
        return cls(int(match.group(1)), int(match.group(2)))

    def compatible_with(self, required: "Version") -> bool:
        """True when a provider at this version satisfies a requirement
        for ``required``: same major, and at least the required minor."""
        return self.major == required.major and self.minor >= required.minor

    def bump_minor(self) -> "Version":
        return Version(self.major, self.minor + 1)

    def bump_major(self) -> "Version":
        return Version(self.major + 1, 0)

    def __lt__(self, other: "Version") -> bool:
        return (self.major, self.minor) < (other.major, other.minor)

    def __str__(self) -> str:
        return f"{self.major}.{self.minor}"

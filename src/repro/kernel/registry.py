"""Component registry.

The naming service of the platform: components register under their names
and can be looked up by name, by provided interface, or by hosting node.
Registration events feed the RAML observation stream ("information about
running applications").
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.errors import RegistryError
from repro.kernel.component import Component, ProvidedPort


class Registry:
    """Name → component map with lookup by interface and node."""

    def __init__(self) -> None:
        self._components: dict[str, Component] = {}
        #: Observers called with ("register" | "unregister", component).
        self.observers: list[Callable[[str, Component], None]] = []

    def register(self, component: Component) -> Component:
        if component.name in self._components:
            raise RegistryError(
                f"component {component.name!r} is already registered"
            )
        self._components[component.name] = component
        self._notify("register", component)
        return component

    def unregister(self, name: str) -> Component:
        try:
            component = self._components.pop(name)
        except KeyError:
            raise RegistryError(f"component {name!r} is not registered") from None
        self._notify("unregister", component)
        return component

    def _notify(self, event: str, component: Component) -> None:
        for observer in list(self.observers):
            observer(event, component)

    # -- lookup ------------------------------------------------------------

    def lookup(self, name: str) -> Component:
        try:
            return self._components[name]
        except KeyError:
            raise RegistryError(f"component {name!r} is not registered") from None

    def __contains__(self, name: str) -> bool:
        return name in self._components

    def __iter__(self) -> Iterator[Component]:
        return iter(list(self._components.values()))

    def __len__(self) -> int:
        return len(self._components)

    def names(self) -> list[str]:
        return sorted(self._components)

    def providers_of(
        self, interface_name: str, version: str | None = None
    ) -> list[ProvidedPort]:
        """All provided ports exposing ``interface_name``.

        When ``version`` is given, only providers whose version satisfies
        it (same major, >= minor) are returned.
        """
        from repro.kernel.versioning import Version

        required = Version.parse(version) if version else None
        matches: list[ProvidedPort] = []
        for component in self._components.values():
            for port in component.provided.values():
                if port.interface.name != interface_name:
                    continue
                if required and not port.interface.version.compatible_with(required):
                    continue
                matches.append(port)
        return sorted(matches, key=lambda port: port.qualified_name)

    def on_node(self, node_name: str) -> list[Component]:
        """Components currently deployed on ``node_name``."""
        return sorted(
            (c for c in self._components.values() if c.node_name == node_name),
            key=lambda component: component.name,
        )

    def describe(self) -> dict[str, dict]:
        """Introspection snapshot of every registered component."""
        return {name: c.describe() for name, c in self._components.items()}

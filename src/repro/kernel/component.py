"""Components, ports and the invocation pipeline.

A :class:`Component` exposes *provided ports* (typed by
:class:`~repro.kernel.interface.Interface`) and declares *required ports*
that are wired to other components through
:class:`~repro.kernel.binding.Binding` objects or connectors.

Every call flows through an invocation pipeline on the provided port:

    caller → RequiredPort.call → Binding → ProvidedPort.invoke
           → [interceptor chain] → implementation method

The interceptor chain is the single extension point the adaptation
mechanisms share: composition filters, aspects, injectors and container
policies all attach here.  Observers on the port provide the
*introspection* stream the paper's RAML consumes.
"""

from __future__ import annotations

import copy
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Protocol

from repro.errors import ComponentError, InterfaceError
from repro.kernel.interface import Interface
from repro.kernel.lifecycle import Lifecycle, LifecycleState

_invocation_ids = itertools.count(1)


@dataclass
class Invocation:
    """One call travelling through the platform.

    ``meta`` is a free-form header dictionary that filters, aspects and
    connectors may read and write (message-manipulation in the
    composition-filters sense).
    """

    operation: str
    args: tuple[Any, ...] = ()
    kwargs: dict[str, Any] = field(default_factory=dict)
    meta: dict[str, Any] = field(default_factory=dict)
    invocation_id: int = field(default_factory=lambda: next(_invocation_ids))
    caller: str = ""

    def copy(self) -> "Invocation":
        clone = Invocation(
            operation=self.operation,
            args=self.args,
            kwargs=dict(self.kwargs),
            meta=dict(self.meta),
            caller=self.caller,
        )
        return clone


#: An interceptor wraps the rest of the pipeline: fn(invocation, proceed).
Interceptor = Callable[[Invocation, Callable[[Invocation], Any]], Any]

#: Observers see (phase, invocation, payload) where phase is
#: "before" (payload None), "after" (payload result) or "error" (payload exc).
Observer = Callable[[str, Invocation, Any], None]


class Invocable(Protocol):
    """Anything a binding can target: provided ports, connector roles…"""

    interface: Interface

    def invoke(self, invocation: Invocation) -> Any: ...


class ProvidedPort:
    """A typed entry point of a component."""

    def __init__(self, name: str, interface: Interface, component: "Component") -> None:
        self.name = name
        self.interface = interface
        self.component = component
        self.interceptors: list[Interceptor] = []
        self.observers: list[Observer] = []
        #: Interface adapters installed by breaking interface evolutions;
        #: consistency checking treats callers of ``adapter.old`` as served.
        self.adapters: list[Any] = []
        self.call_count = 0
        self.error_count = 0

    def add_interceptor(self, interceptor: Interceptor, index: int | None = None) -> None:
        """Attach an interceptor; ``index`` controls chain position."""
        if index is None:
            self.interceptors.append(interceptor)
        else:
            self.interceptors.insert(index, interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        try:
            self.interceptors.remove(interceptor)
        except ValueError:
            raise ComponentError(
                f"interceptor not attached to port {self.qualified_name}"
            ) from None

    @property
    def qualified_name(self) -> str:
        return f"{self.component.name}.{self.name}"

    def _notify(self, phase: str, invocation: Invocation, payload: Any) -> None:
        for observer in list(self.observers):
            observer(phase, invocation, payload)

    def invoke(self, invocation: Invocation) -> Any:
        """Run the invocation through interceptors and the implementation."""
        if invocation.operation in self.interface:
            operation = self.interface.operation(invocation.operation)
        else:
            operation = None
        if operation is None or not operation.accepts_arity(len(invocation.args)):
            # Legacy callers after a breaking interface evolution — the
            # operation was renamed, or its signature changed shape.  If
            # an installed adapter still speaks the caller's dialect, its
            # interceptor will translate the call.
            for adapter in self.adapters:
                if invocation.operation in adapter.old:
                    legacy = adapter.old.operation(invocation.operation)
                    if legacy.accepts_arity(len(invocation.args)):
                        operation = legacy
                        break
            if operation is None:
                raise InterfaceError(
                    f"interface {self.interface.name!r} has no operation "
                    f"{invocation.operation!r}"
                )
        if not operation.accepts_arity(len(invocation.args)):
            raise InterfaceError(
                f"{self.qualified_name}.{invocation.operation} expects "
                f"{operation.min_arity}..{operation.max_arity} args, "
                f"got {len(invocation.args)}"
            )
        self.component.lifecycle.require(LifecycleState.ACTIVE)
        self.call_count += 1
        self._notify("before", invocation, None)

        chain = list(self.interceptors)

        def proceed(inv: Invocation, _position: int = 0) -> Any:
            if _position < len(chain):
                return chain[_position](
                    inv, lambda inner: proceed(inner, _position + 1)
                )
            return self.component.dispatch(self.name, inv)

        self.component._active_calls += 1
        try:
            result = proceed(invocation)
        except Exception as exc:
            self.error_count += 1
            self._notify("error", invocation, exc)
            raise
        finally:
            self.component._active_calls -= 1
        self._notify("after", invocation, result)
        return result


class RequiredPort:
    """A typed dependency of a component, satisfied by a binding."""

    def __init__(self, name: str, interface: Interface, component: "Component") -> None:
        self.name = name
        self.interface = interface
        self.component = component
        self.binding: Any = None  # repro.kernel.binding.Binding, set on bind
        #: Output interceptors, applied before the invocation leaves the
        #: component (output composition filters attach here).
        self.interceptors: list[Interceptor] = []

    @property
    def qualified_name(self) -> str:
        return f"{self.component.name}.{self.name}"

    @property
    def is_bound(self) -> bool:
        return self.binding is not None

    def _through_interceptors(self, invocation: Invocation) -> Any:
        chain = list(self.interceptors)

        def proceed(inv: Invocation, _position: int = 0) -> Any:
            if _position < len(chain):
                return chain[_position](
                    inv, lambda inner: proceed(inner, _position + 1)
                )
            return self.binding.call(
                inv.operation, *inv.args, caller=self.component.name, **inv.kwargs
            )

        return proceed(invocation)

    def call(self, operation: str, *args: Any, **kwargs: Any) -> Any:
        """Synchronous call through output interceptors and the binding."""
        if self.binding is None:
            raise ComponentError(
                f"required port {self.qualified_name} is not bound"
            )
        if not self.interceptors:
            return self.binding.call(
                operation, *args, caller=self.component.name, **kwargs
            )
        return self._through_interceptors(Invocation(operation, args, kwargs,
                                                     caller=self.component.name))

    def call_async(
        self,
        operation: str,
        *args: Any,
        on_result: Callable[[Any], None] | None = None,
        **kwargs: Any,
    ) -> None:
        """Asynchronous call; buffers transparently during quiescence."""
        if self.binding is None:
            raise ComponentError(
                f"required port {self.qualified_name} is not bound"
            )
        self.binding.call_async(
            operation, *args,
            on_result=on_result, caller=self.component.name, **kwargs,
        )


class Component:
    """Base class for every component in the platform.

    Subclasses implement operations as ordinary methods and register them
    by calling :meth:`provide`; alternatively an *implementation object*
    whose methods match the interface's operations may be supplied.

    All externally relevant state must live in ``self.state`` (a dict) or
    be exposed through ``capture_state``/``restore_state`` overrides so
    that *strong dynamic reconfiguration* can move it to a replacement.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise ComponentError("component name must be non-empty")
        self.name = name
        self.lifecycle = Lifecycle()
        self.provided: dict[str, ProvidedPort] = {}
        self.required: dict[str, RequiredPort] = {}
        self.state: dict[str, Any] = {}
        self._implementations: dict[str, Any] = {}
        self._active_calls = 0
        self.node_name: str | None = None  # set when deployed
        self.behaviour: Any = None  # optional repro.lts.Lts protocol model

    # -- port declaration ------------------------------------------------------

    def provide(
        self, port_name: str, interface: Interface, implementation: Any = None
    ) -> ProvidedPort:
        """Declare a provided port; implementation defaults to ``self``."""
        if port_name in self.provided:
            raise ComponentError(
                f"component {self.name!r} already provides port {port_name!r}"
            )
        port = ProvidedPort(port_name, interface, self)
        self.provided[port_name] = port
        self._implementations[port_name] = implementation if implementation is not None else self
        return port

    def require(self, port_name: str, interface: Interface) -> RequiredPort:
        """Declare a required port."""
        if port_name in self.required:
            raise ComponentError(
                f"component {self.name!r} already requires port {port_name!r}"
            )
        port = RequiredPort(port_name, interface, self)
        self.required[port_name] = port
        return port

    def provided_port(self, name: str) -> ProvidedPort:
        try:
            return self.provided[name]
        except KeyError:
            raise ComponentError(
                f"component {self.name!r} has no provided port {name!r}"
            ) from None

    def required_port(self, name: str) -> RequiredPort:
        try:
            return self.required[name]
        except KeyError:
            raise ComponentError(
                f"component {self.name!r} has no required port {name!r}"
            ) from None

    # -- dispatch ---------------------------------------------------------------

    def dispatch(self, port_name: str, invocation: Invocation) -> Any:
        """Invoke the implementation method for an operation."""
        implementation = self._implementations[port_name]
        method = getattr(implementation, invocation.operation, None)
        if method is None or not callable(method):
            raise ComponentError(
                f"{self.name!r} implementation lacks operation "
                f"{invocation.operation!r} on port {port_name!r}"
            )
        return method(*invocation.args, **invocation.kwargs)

    def replace_implementation(self, port_name: str, implementation: Any) -> None:
        """Implementation-modification change: swap the internals of a
        port while interfaces and bindings stay untouched."""
        if port_name not in self.provided:
            raise ComponentError(
                f"component {self.name!r} has no provided port {port_name!r}"
            )
        self._implementations[port_name] = implementation

    # -- lifecycle shortcuts -----------------------------------------------------

    def initialize(self) -> "Component":
        self.lifecycle.transition(LifecycleState.INITIALIZED)
        self.on_initialize()
        return self

    def activate(self) -> "Component":
        if self.lifecycle.state is LifecycleState.CREATED:
            self.initialize()
        self.lifecycle.transition(LifecycleState.ACTIVE)
        return self

    def passivate(self) -> "Component":
        self.lifecycle.transition(LifecycleState.PASSIVE)
        return self

    def stop(self) -> "Component":
        self.lifecycle.transition(LifecycleState.STOPPED)
        return self

    def on_initialize(self) -> None:
        """Hook for subclasses to set up ``self.state``."""

    @property
    def is_idle(self) -> bool:
        """True when no invocation is currently executing."""
        return self._active_calls == 0

    # -- state transfer (strong reconfiguration) ----------------------------------

    def capture_state(self) -> dict[str, Any]:
        """Snapshot the externally relevant state (deep copy)."""
        return copy.deepcopy(self.state)

    def restore_state(self, snapshot: dict[str, Any]) -> None:
        """Install a snapshot captured from a predecessor component."""
        self.state = copy.deepcopy(snapshot)

    # -- introspection --------------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        """Introspection record consumed by RAML and the registry."""
        return {
            "name": self.name,
            "lifecycle": str(self.lifecycle.state),
            "node": self.node_name,
            "provided": {
                name: {
                    "interface": port.interface.name,
                    "version": str(port.interface.version),
                    "operations": sorted(port.interface.operations),
                    "calls": port.call_count,
                    "errors": port.error_count,
                    "interceptors": len(port.interceptors),
                }
                for name, port in self.provided.items()
            },
            "required": {
                name: {
                    "interface": port.interface.name,
                    "version": str(port.interface.version),
                    "bound": port.is_bound,
                }
                for name, port in self.required.items()
            },
            "active_calls": self._active_calls,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Component({self.name!r}, {self.lifecycle.state})"

"""The object request broker.

The paper's adaptive-middleware substrate: a CORBA-like ORB per node with
object adapters (the POA role), client/server request interceptors (the
pluggable-protocols hook), deadlines, retries, and reflective QoS
observation — every request's latency and outcome can be fed to RAML.

Requests travel as :class:`~repro.netsim.message.Message` objects through
the simulated network, so they experience real latency, bandwidth,
loss and node failures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import MiddlewareError, RequestError
from repro.errors import TimeoutError as OrbTimeoutError
from repro.events import Timer
from repro.kernel.component import Invocation, ProvidedPort
from repro.netsim.message import Message
from repro.netsim.network import Network
from repro.netsim.node import Node

_request_ids = itertools.count(1)


@dataclass
class RequestContext:
    """One remote invocation as interceptors see it."""

    request_id: int
    object_key: str
    operation: str
    args: tuple
    source_node: str
    target_node: str
    deadline: float | None = None
    meta: dict[str, Any] = field(default_factory=dict)


#: Interceptor: fn(context, proceed) — may rewrite, short-circuit, observe.
RequestInterceptor = Callable[[RequestContext, Callable[[RequestContext], None]], None]


@dataclass
class _Pending:
    context: RequestContext
    on_result: Callable[[Any], None] | None
    on_error: Callable[[Exception], None] | None
    timer: Timer | None
    sent_at: float
    retries_left: int = 0


@dataclass
class _Servant:
    port: ProvidedPort
    work_units: float


@dataclass
class OrbStats:
    requests_sent: int = 0
    requests_served: int = 0
    responses_received: int = 0
    timeouts: int = 0
    remote_errors: int = 0
    retries: int = 0
    total_latency: float = 0.0

    @property
    def mean_latency(self) -> float:
        if not self.responses_received:
            return 0.0
        return self.total_latency / self.responses_received


class Orb:
    """One node's request broker."""

    ENDPOINT = "orb"

    def __init__(self, network: Network, node_name: str,
                 default_timeout: float = 1.0) -> None:
        self.network = network
        self.node_name = node_name
        self.node: Node = network.node(node_name)
        self.default_timeout = default_timeout
        self.servants: dict[str, _Servant] = {}
        self.pending: dict[int, _Pending] = {}
        self.client_interceptors: list[RequestInterceptor] = []
        self.server_interceptors: list[RequestInterceptor] = []
        self.stats = OrbStats()
        #: Reflective QoS observers: fn(kind, context, latency_or_none).
        self.qos_observers: list[Callable[[str, RequestContext, float | None],
                                          None]] = []
        self.node.bind_endpoint(self.ENDPOINT, self._on_message)

    @property
    def sim(self):
        return self.network.sim

    # -- server side -----------------------------------------------------------

    def register(self, object_key: str, port: ProvidedPort,
                 work_units: float = 1.0) -> None:
        """Expose a provided port under an object key (object adapter)."""
        if object_key in self.servants:
            raise MiddlewareError(
                f"orb on {self.node_name!r} already exports {object_key!r}"
            )
        self.servants[object_key] = _Servant(port, work_units)

    def unregister(self, object_key: str) -> None:
        if self.servants.pop(object_key, None) is None:
            raise MiddlewareError(
                f"orb on {self.node_name!r} does not export {object_key!r}"
            )

    def rebind(self, object_key: str, port: ProvidedPort,
               work_units: float = 1.0) -> None:
        """Atomically repoint an object key — middleware-level dynamic
        binding (in-flight requests complete against the old servant)."""
        if object_key not in self.servants:
            raise MiddlewareError(
                f"orb on {self.node_name!r} does not export {object_key!r}"
            )
        self.servants[object_key] = _Servant(port, work_units)

    # -- client side ------------------------------------------------------------

    def call(self, target_node: str, object_key: str, operation: str,
             *args: Any,
             on_result: Callable[[Any], None] | None = None,
             on_error: Callable[[Exception], None] | None = None,
             timeout: float | None = None,
             retries: int = 0,
             payload_size: int = 256) -> int:
        """Issue an asynchronous remote invocation; returns the request id."""
        context = RequestContext(
            request_id=next(_request_ids),
            object_key=object_key,
            operation=operation,
            args=args,
            source_node=self.node_name,
            target_node=target_node,
        )
        effective_timeout = timeout if timeout is not None else self.default_timeout
        context.deadline = self.sim.now + effective_timeout
        context.meta["payload_size"] = payload_size

        def transmit(ctx: RequestContext) -> None:
            self._transmit(ctx, on_result, on_error, effective_timeout, retries)

        self._run_chain(self.client_interceptors, context, transmit)
        return context.request_id

    def _run_chain(self, chain: list[RequestInterceptor],
                   context: RequestContext,
                   terminal: Callable[[RequestContext], None]) -> None:
        def step(ctx: RequestContext, position: int = 0) -> None:
            if position < len(chain):
                chain[position](ctx, lambda inner: step(inner, position + 1))
            else:
                terminal(ctx)

        step(context)

    def _transmit(self, context: RequestContext,
                  on_result: Callable[[Any], None] | None,
                  on_error: Callable[[Exception], None] | None,
                  timeout: float, retries: int) -> None:
        self.stats.requests_sent += 1
        self._notify_qos("sent", context, None)
        timer = Timer(self.sim, timeout, self._on_timeout, context.request_id)
        self.pending[context.request_id] = _Pending(
            context, on_result, on_error, timer, self.sim.now,
            retries_left=retries,
        )
        message = Message(
            source=self.node_name,
            destination=context.target_node,
            endpoint=self.ENDPOINT,
            payload=("request", context.object_key, context.operation,
                     context.args, dict(context.meta)),
            size=int(context.meta.get("payload_size", 256)),
        )
        message.headers["request_id"] = context.request_id
        message.headers["reply_endpoint"] = self.ENDPOINT
        self.network.send(message)

    def _on_timeout(self, request_id: int) -> None:
        pending = self.pending.pop(request_id, None)
        if pending is None:
            return
        if pending.retries_left > 0:
            self.stats.retries += 1
            context = pending.context
            timeout = (context.deadline or 0) - pending.sent_at
            context.deadline = self.sim.now + timeout
            self._transmit(context, pending.on_result, pending.on_error,
                           timeout, pending.retries_left - 1)
            return
        self.stats.timeouts += 1
        self._notify_qos("timeout", pending.context, None)
        if pending.on_error is not None:
            pending.on_error(OrbTimeoutError(
                f"request {request_id} ({pending.context.operation}) to "
                f"{pending.context.target_node!r} timed out"
            ))

    # -- message handling ----------------------------------------------------------

    def _on_message(self, node: Node, message: Message) -> None:
        kind = message.payload[0] if isinstance(message.payload, tuple) else None
        if kind == "request":
            self._serve(message)
        elif kind in ("response", "error"):
            self._resolve(message)

    def _serve(self, message: Message) -> None:
        _kind, object_key, operation, args, meta = message.payload
        context = RequestContext(
            request_id=message.headers.get("request_id", 0),
            object_key=object_key,
            operation=operation,
            args=args,
            source_node=message.source,
            target_node=self.node_name,
            meta=dict(meta),
        )

        def dispatch(ctx: RequestContext) -> None:
            servant = self.servants.get(ctx.object_key)
            if servant is None:
                self._reply(message, "error",
                            f"no object {ctx.object_key!r} on "
                            f"{self.node_name!r}")
                return
            # Charge CPU time on the hosting node before replying.
            delay = self.node.execution_time(servant.work_units)

            def finish() -> None:
                current = self.servants.get(ctx.object_key, servant)
                try:
                    invocation = Invocation(ctx.operation, tuple(ctx.args),
                                            caller=ctx.source_node)
                    invocation.meta.update(ctx.meta)
                    result = current.port.invoke(invocation)
                except Exception as exc:  # noqa: BLE001 - shipped to caller
                    self._reply(message, "error", repr(exc))
                    return
                self.stats.requests_served += 1
                self._reply(message, "response", result)

            self.sim.schedule(finish, delay=delay)

        self._run_chain(self.server_interceptors, context, dispatch)

    def _reply(self, request: Message, kind: str, body: Any) -> None:
        reply = request.reply_to(payload=(kind, body),
                                 size=int(request.headers.get("reply_size", 256)))
        self.network.send(reply)

    def _resolve(self, message: Message) -> None:
        request_id = message.headers.get("request_id")
        pending = self.pending.pop(request_id, None)
        if pending is None:
            return  # late reply after timeout: drop
        if pending.timer is not None:
            pending.timer.cancel()
        kind, body = message.payload
        latency = self.sim.now - pending.sent_at
        if kind == "response":
            self.stats.responses_received += 1
            self.stats.total_latency += latency
            self._notify_qos("response", pending.context, latency)
            if pending.on_result is not None:
                pending.on_result(body)
        else:
            self.stats.remote_errors += 1
            self._notify_qos("error", pending.context, latency)
            if pending.on_error is not None:
                pending.on_error(RequestError(str(body)))

    def _notify_qos(self, kind: str, context: RequestContext,
                    latency: float | None) -> None:
        for observer in list(self.qos_observers):
            observer(kind, context, latency)

"""Adaptive middleware / ORB (S19).

A CORBA-like broker per simulated node: object adapters, typed proxies,
client/server request interceptors, deadlines, retries and reflective
QoS observation feeding RAML.
"""

from repro.middleware.naming import (
    NamedProxy,
    NamingClient,
    NamingService,
    deploy_naming_service,
    naming_interface,
)
from repro.middleware.orb import (
    Orb,
    OrbStats,
    RequestContext,
    RequestInterceptor,
)
from repro.middleware.proxy import (
    RemoteProxy,
    deadline_propagation,
    metrics_recorder,
)

__all__ = [
    "NamedProxy",
    "NamingClient",
    "NamingService",
    "Orb",
    "OrbStats",
    "RemoteProxy",
    "RequestContext",
    "RequestInterceptor",
    "deadline_propagation",
    "deploy_naming_service",
    "metrics_recorder",
    "naming_interface",
]

"""Client-side proxies.

A :class:`RemoteProxy` gives callers a typed, location-transparent handle
on a remote object; rebinding the proxy to another node/key is the
middleware face of dynamic reconfiguration (geographic changes move the
servant, the proxy follows).
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import MiddlewareError
from repro.kernel.interface import Interface
from repro.middleware.orb import Orb


class RemoteProxy:
    """A typed handle to a remote object exported through an ORB."""

    def __init__(self, orb: Orb, target_node: str, object_key: str,
                 interface: Interface,
                 timeout: float | None = None,
                 retries: int = 0) -> None:
        self.orb = orb
        self.target_node = target_node
        self.object_key = object_key
        self.interface = interface
        self.timeout = timeout
        self.retries = retries

    def call(self, operation: str, *args: Any,
             on_result: Callable[[Any], None] | None = None,
             on_error: Callable[[Exception], None] | None = None) -> int:
        """Asynchronous typed invocation (arity checked locally)."""
        op = self.interface.operation(operation)
        if not op.accepts_arity(len(args)):
            raise MiddlewareError(
                f"proxy {self.object_key!r}: {operation} expects "
                f"{op.min_arity}..{op.max_arity} args, got {len(args)}"
            )
        return self.orb.call(
            self.target_node, self.object_key, operation, *args,
            on_result=on_result, on_error=on_error,
            timeout=self.timeout, retries=self.retries,
        )

    def rebind(self, target_node: str, object_key: str | None = None) -> None:
        """Re-point the proxy (location transparency under migration)."""
        self.target_node = target_node
        if object_key is not None:
            self.object_key = object_key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"RemoteProxy({self.object_key!r} @ {self.target_node!r} "
                f"via {self.orb.node_name!r})")


def deadline_propagation() -> Any:
    """Client interceptor stamping the remaining deadline into metadata."""

    def interceptor(context, proceed):
        if context.deadline is not None:
            context.meta["deadline"] = context.deadline
        proceed(context)

    return interceptor


def metrics_recorder(registry: Any, sim: Any,
                     metric_prefix: str = "rpc") -> Callable:
    """QoS observer recording per-request latency/outcome metrics.

    Attach with ``orb.qos_observers.append(...)``; feeds the same metric
    registry RAML sweeps.
    """

    def observer(kind: str, context, latency: float | None) -> None:
        if kind == "response" and latency is not None:
            registry.record(f"{metric_prefix}.latency", latency, sim.now)
        elif kind == "timeout":
            registry.record(f"{metric_prefix}.timeouts", 1.0, sim.now)
        elif kind == "error":
            registry.record(f"{metric_prefix}.errors", 1.0, sim.now)

    return observer

"""Naming service: location transparency over the ORB.

A CORBA-Naming-style directory so callers address objects by *name*
rather than by node: the registry lives on one node and is queried over
the simulated network; :class:`NamedProxy` resolves lazily, caches, and
re-resolves on failure — which is what makes geographical
reconfiguration (migration) invisible to clients.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import MiddlewareError
from repro.kernel.component import Component
from repro.kernel.interface import Interface, Operation
from repro.middleware.orb import Orb


def naming_interface() -> Interface:
    return Interface("Naming", "1.0", [
        Operation("register", ("name", "node", "key")),
        Operation("unregister", ("name",)),
        Operation("resolve", ("name",)),
        Operation("entries", ()),
    ])


class NamingService(Component):
    """The directory component; export it through an ORB."""

    OBJECT_KEY = "naming"

    def on_initialize(self):
        self.state.setdefault("entries", {})

    def register(self, name, node, key):
        self.state["entries"][name] = (node, key)
        return True

    def unregister(self, name):
        return self.state["entries"].pop(name, None) is not None

    def resolve(self, name):
        entry = self.state["entries"].get(name)
        if entry is None:
            raise KeyError(f"no object named {name!r}")
        return entry

    def entries(self):
        return dict(self.state["entries"])


def deploy_naming_service(orb: Orb, name: str = "naming-service"
                          ) -> NamingService:
    """Create, activate and export a naming service on an ORB's node."""
    service = NamingService(name)
    service.provide("svc", naming_interface())
    service.activate()
    service.node_name = orb.node_name
    orb.register(NamingService.OBJECT_KEY, service.provided_port("svc"))
    return service


class NamingClient:
    """Client-side stub for the naming service (asynchronous)."""

    def __init__(self, orb: Orb, naming_node: str) -> None:
        self.orb = orb
        self.naming_node = naming_node

    def register(self, name: str, node: str, key: str,
                 on_done: Callable[[], None] | None = None) -> None:
        self.orb.call(self.naming_node, NamingService.OBJECT_KEY,
                      "register", name, node, key,
                      on_result=lambda _r: on_done() if on_done else None)

    def unregister(self, name: str,
                   on_done: Callable[[], None] | None = None) -> None:
        self.orb.call(self.naming_node, NamingService.OBJECT_KEY,
                      "unregister", name,
                      on_result=lambda _r: on_done() if on_done else None)

    def resolve(self, name: str,
                on_result: Callable[[tuple[str, str]], None],
                on_error: Callable[[Exception], None] | None = None) -> None:
        self.orb.call(self.naming_node, NamingService.OBJECT_KEY,
                      "resolve", name,
                      on_result=lambda entry: on_result(tuple(entry)),
                      on_error=on_error)


class NamedProxy:
    """A proxy addressing its target by directory name.

    Resolution is lazy and cached; any request error or timeout drops
    the cache so the next call re-resolves — a migration followed by a
    directory update is therefore self-healing from the caller's side.
    """

    def __init__(self, orb: Orb, naming_node: str, name: str,
                 interface: Interface,
                 timeout: float | None = None) -> None:
        self.orb = orb
        self.naming = NamingClient(orb, naming_node)
        self.name = name
        self.interface = interface
        self.timeout = timeout
        self._cached: tuple[str, str] | None = None
        self.resolution_count = 0

    def invalidate(self) -> None:
        self._cached = None

    def call(self, operation: str, *args: Any,
             on_result: Callable[[Any], None] | None = None,
             on_error: Callable[[Exception], None] | None = None) -> None:
        op = self.interface.operation(operation)
        if not op.accepts_arity(len(args)):
            raise MiddlewareError(
                f"named proxy {self.name!r}: {operation} expects "
                f"{op.min_arity}..{op.max_arity} args, got {len(args)}"
            )

        def fail(error: Exception) -> None:
            self.invalidate()
            if on_error is not None:
                on_error(error)

        def issue(entry: tuple[str, str]) -> None:
            node, key = entry

            def relay_error(error: Exception) -> None:
                # Stale location: re-resolve once and retry before
                # surfacing the failure.
                self.invalidate()

                def second_try(fresh: tuple[str, str]) -> None:
                    if fresh == entry:
                        fail(error)
                        return
                    self.orb.call(fresh[0], fresh[1], operation, *args,
                                  on_result=on_result, on_error=fail,
                                  timeout=self.timeout)

                self._resolve(second_try, fail)

            self.orb.call(node, key, operation, *args,
                          on_result=on_result, on_error=relay_error,
                          timeout=self.timeout)

        self._resolve(issue, fail)

    def _resolve(self, on_ready: Callable[[tuple[str, str]], None],
                 on_error: Callable[[Exception], None]) -> None:
        if self._cached is not None:
            on_ready(self._cached)
            return

        def store(entry: tuple[str, str]) -> None:
            self._cached = entry
            self.resolution_count += 1
            on_ready(entry)

        self.naming.resolve(self.name, store, on_error)

"""Exception hierarchy for the repro platform.

Every package raises subclasses of :class:`ReproError` so that callers can
catch platform errors without swallowing programming errors such as
``TypeError``.  The hierarchy mirrors the package layout: one branch per
subsystem, with fine-grained leaves where callers are expected to
discriminate (for example, reconfiguration failures that are retryable
versus those that indicate an inconsistent target architecture).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro platform."""


# ---------------------------------------------------------------------------
# Simulation substrate
# ---------------------------------------------------------------------------

class SimulationError(ReproError):
    """Errors raised by the discrete-event kernel."""


class ClockError(SimulationError):
    """An event was scheduled in the past or the clock was misused."""


class ProcessError(SimulationError):
    """A simulated process misbehaved (e.g. yielded an unknown command)."""


class NetworkError(ReproError):
    """Errors raised by the network simulator."""


class NodeDownError(NetworkError):
    """The target node has crashed or is unreachable."""


class LinkDownError(NetworkError):
    """The link between two nodes is down or does not exist."""


class CapacityError(NetworkError):
    """A node or link has exhausted its configured capacity."""


class ParallelError(SimulationError):
    """Errors raised by the sharded parallel-simulation coordinator."""


class WorkerError(ParallelError):
    """A region worker raised; carries the remote traceback text."""

    def __init__(self, region: int, remote_traceback: str) -> None:
        super().__init__(
            f"region {region} worker failed:\n{remote_traceback}")
        self.region = region
        self.remote_traceback = remote_traceback


class WorkerTimeoutError(ParallelError):
    """A live worker did not reply within the supervision reply timeout."""

    def __init__(self, region: int, timeout: float) -> None:
        super().__init__(
            f"region {region} worker sent no reply within {timeout} s")
        self.region = region
        self.timeout = timeout


# ---------------------------------------------------------------------------
# Component model
# ---------------------------------------------------------------------------

class ComponentError(ReproError):
    """Errors raised by the component kernel."""


class LifecycleError(ComponentError):
    """An operation was attempted in an illegal lifecycle state."""


class InterfaceError(ComponentError):
    """Interface lookup or type-compatibility failure."""


class BindingError(ComponentError):
    """A binding could not be created, resolved or redirected."""


class RegistryError(ComponentError):
    """Component registry lookup or registration failure."""


class DeploymentError(ComponentError):
    """A deployment descriptor is invalid or cannot be satisfied."""


class VersionError(InterfaceError):
    """Interface versions are incompatible."""


# ---------------------------------------------------------------------------
# Behaviour and architecture description
# ---------------------------------------------------------------------------

class LtsError(ReproError):
    """Errors raised by the labelled-transition-system library."""


class AdlError(ReproError):
    """Errors raised by the architecture description language."""


class AdlSyntaxError(AdlError):
    """The ADL source text could not be parsed."""

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        location = f" at line {line}, column {column}" if line else ""
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class AdlValidationError(AdlError):
    """The ADL document parsed but violates a semantic rule."""


# ---------------------------------------------------------------------------
# Mechanisms
# ---------------------------------------------------------------------------

class ConnectorError(ReproError):
    """Errors raised by connectors and the connector factory."""


class RoleError(ConnectorError):
    """A component does not satisfy the protocol of a connector role."""


class IncompatibleProtocolError(ConnectorError):
    """Connector glue and role protocols can deadlock or mismatch."""


class FilterError(ReproError):
    """Errors raised by composition filters."""


class AspectError(ReproError):
    """Errors raised by the aspect weaver."""


class MetaObjectError(ReproError):
    """Errors raised by meta-object chains."""


class ChainOrderError(MetaObjectError):
    """A meta-object chain violates its partial-order constraints."""


class InjectorError(ReproError):
    """Errors raised by injectors."""


class StrategyError(ReproError):
    """Errors raised by the strategy infrastructure."""


class PathError(ReproError):
    """Errors raised by composition paths."""


class RuleError(ReproError):
    """Errors raised by the FLO/C-style rule engine."""


class RuleCycleError(RuleError):
    """The rule set would create a cycle in the calling tree."""


# ---------------------------------------------------------------------------
# Engines
# ---------------------------------------------------------------------------

class ReconfigurationError(ReproError):
    """Errors raised by the dynamic reconfiguration engine."""


class QuiescenceError(ReconfigurationError):
    """Quiescence could not be reached within the allotted time."""


class ConsistencyError(ReconfigurationError):
    """The target configuration is globally inconsistent."""


class StateTransferError(ReconfigurationError):
    """Component state could not be captured or restored."""


class MigrationError(ReconfigurationError):
    """A component could not be migrated to the target node."""


class RollbackError(ReconfigurationError):
    """A failed reconfiguration could not be rolled back cleanly."""


class DurabilityError(ReproError):
    """Errors raised by the durable-persistence subsystem."""


class StoreError(DurabilityError):
    """A persistence backend could not complete a read or write."""


class WalError(DurabilityError):
    """The write-ahead change log is malformed or was misused."""


class RecoveryError(DurabilityError):
    """Crash recovery could not drive the assembly to a consistent state."""


class AdaptationError(ReproError):
    """Errors raised by the dynamic adaptation engine."""


class QosError(ReproError):
    """Errors raised by QoS contracts and monitors."""


class ContractViolation(QosError):
    """A QoS contract obligation was violated."""


class ControlError(ReproError):
    """Errors raised by feedback controllers."""


class RamlError(ReproError):
    """Errors raised by the Reconfiguration and Adaptation Meta-Level."""


class ConstraintViolation(RamlError):
    """A behavioural constraint registered with RAML was violated."""


class MiddlewareError(ReproError):
    """Errors raised by the adaptive middleware (ORB)."""


class RequestError(MiddlewareError):
    """A remote invocation failed."""


class TimeoutError(MiddlewareError):  # noqa: A001 - deliberate, scoped name
    """A remote invocation did not complete in time."""

"""Pluggable persistence backends for durable reconfiguration state.

A :class:`Store` is the one protocol every durable consumer speaks: an
append-only collection of named *logs*, each a sequence of
JSON-serializable records numbered from 1.  The write-ahead change log,
migration snapshots and the durable audit sink all sit on top of it, so
swapping the backend (in-memory for tests, sqlite for crash safety,
pooled Postgres later) never touches the callers.

Backends:

* :class:`MemoryStore` — plain dicts; survives *simulated* crashes
  (an abandoned transaction object) because the store outlives it, but
  not a real process death.
* :class:`SqliteStore` — one stdlib ``sqlite3`` file, every append its
  own committed transaction, so a SIGKILL between appends never loses or
  tears a record.

:func:`open_store` maps a URL (``memory://``, ``sqlite:///path``) to a
backend, the seam a pooled ``postgres://`` backend will slot into.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from typing import Any, Iterable, Protocol, runtime_checkable

from repro.errors import StoreError


def canonical_json(record: dict[str, Any]) -> str:
    """Serialize a record deterministically (sorted keys, no whitespace
    drift) — the byte form checksums and audit diffs rely on."""
    try:
        return json.dumps(record, sort_keys=True, separators=(",", ":"),
                          default=_fallback)
    except (TypeError, ValueError) as exc:
        raise StoreError(f"record is not serializable: {exc}") from exc


def _fallback(value: Any) -> Any:
    if isinstance(value, (set, frozenset)):
        return sorted(str(v) for v in value)
    if isinstance(value, tuple):
        return list(value)
    return str(value)


@runtime_checkable
class Store(Protocol):
    """Append-only record store with named logs.

    ``append`` returns the record's 1-based sequence number within its
    log; ``read`` yields ``(seq, record)`` pairs in sequence order.
    Implementations raise :class:`~repro.errors.StoreError` on backend
    failure — never a bare backend exception.
    """

    def append(self, log: str, record: dict[str, Any]) -> int: ...

    def read(self, log: str, start: int = 1) -> list[tuple[int, dict]]: ...

    def logs(self) -> list[str]: ...

    def truncate(self, log: str) -> int: ...

    def close(self) -> None: ...


class MemoryStore:
    """Dict-backed store: zero I/O, survives abandoned transactions."""

    def __init__(self) -> None:
        self._logs: dict[str, list[str]] = {}
        self._closed = False

    def append(self, log: str, record: dict[str, Any]) -> int:
        self._check_open()
        payload = canonical_json(record)
        entries = self._logs.setdefault(log, [])
        entries.append(payload)
        return len(entries)

    def read(self, log: str, start: int = 1) -> list[tuple[int, dict]]:
        self._check_open()
        entries = self._logs.get(log, [])
        return [(seq, json.loads(payload))
                for seq, payload in enumerate(entries, start=1)
                if seq >= start]

    def logs(self) -> list[str]:
        self._check_open()
        return sorted(name for name, entries in self._logs.items() if entries)

    def truncate(self, log: str) -> int:
        self._check_open()
        removed = len(self._logs.get(log, []))
        self._logs.pop(log, None)
        return removed

    def close(self) -> None:
        self._closed = True

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError("store is closed")


class SqliteStore:
    """Sqlite-backed store: one file, one row per record.

    Every append runs in its own committed transaction with
    ``synchronous=FULL`` semantics left at sqlite's journaled default,
    so a process killed between appends reopens to a prefix of the log —
    exactly the property write-ahead recovery needs.
    """

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS records (
            log     TEXT    NOT NULL,
            seq     INTEGER NOT NULL,
            payload TEXT    NOT NULL,
            PRIMARY KEY (log, seq)
        )
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
            self._conn.execute(self._SCHEMA)
            self._conn.commit()
        except sqlite3.Error as exc:
            raise StoreError(
                f"could not open sqlite store at {self.path!r}: {exc}"
            ) from exc
        self._closed = False

    def append(self, log: str, record: dict[str, Any]) -> int:
        payload = canonical_json(record)
        with self._lock:
            self._check_open()
            try:
                cursor = self._conn.execute(
                    "SELECT COALESCE(MAX(seq), 0) FROM records WHERE log = ?",
                    (log,))
                seq = cursor.fetchone()[0] + 1
                self._conn.execute(
                    "INSERT INTO records (log, seq, payload) VALUES (?, ?, ?)",
                    (log, seq, payload))
                self._conn.commit()
            except sqlite3.Error as exc:
                raise StoreError(
                    f"sqlite append to log {log!r} failed: {exc}") from exc
        return seq

    def read(self, log: str, start: int = 1) -> list[tuple[int, dict]]:
        with self._lock:
            self._check_open()
            try:
                rows = self._conn.execute(
                    "SELECT seq, payload FROM records "
                    "WHERE log = ? AND seq >= ? ORDER BY seq",
                    (log, start)).fetchall()
            except sqlite3.Error as exc:
                raise StoreError(
                    f"sqlite read of log {log!r} failed: {exc}") from exc
        return [(seq, json.loads(payload)) for seq, payload in rows]

    def logs(self) -> list[str]:
        with self._lock:
            self._check_open()
            try:
                rows = self._conn.execute(
                    "SELECT DISTINCT log FROM records ORDER BY log").fetchall()
            except sqlite3.Error as exc:
                raise StoreError(f"sqlite log listing failed: {exc}") from exc
        return [row[0] for row in rows]

    def truncate(self, log: str) -> int:
        with self._lock:
            self._check_open()
            try:
                cursor = self._conn.execute(
                    "DELETE FROM records WHERE log = ?", (log,))
                self._conn.commit()
            except sqlite3.Error as exc:
                raise StoreError(
                    f"sqlite truncate of log {log!r} failed: {exc}") from exc
        return cursor.rowcount

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._conn.close()

    def _check_open(self) -> None:
        if self._closed:
            raise StoreError("store is closed")


def open_store(url: str) -> Store:
    """Open a backend by URL: ``memory://`` or ``sqlite:///path/to.db``
    (a bare filesystem path also means sqlite)."""
    if url == "memory://":
        return MemoryStore()
    if url.startswith("sqlite:///"):
        return SqliteStore(url[len("sqlite:///"):])
    if url.startswith("sqlite://"):
        return SqliteStore(url[len("sqlite://"):])
    if "://" in url:
        scheme = url.split("://", 1)[0]
        raise StoreError(
            f"unknown store backend {scheme!r}; "
            "available: memory://, sqlite:///")
    return SqliteStore(url)


def copy_log(source: Store, target: Store, log: str) -> int:
    """Stream one log between backends (migration/backup helper);
    returns the number of records copied."""
    copied = 0
    for _seq, record in source.read(log):
        target.append(log, record)
        copied += 1
    return copied


def iter_records(store: Store, logs: Iterable[str]
                 ) -> Iterable[tuple[str, int, dict]]:
    """Flatten several logs as ``(log, seq, record)`` triples."""
    for log in logs:
        for seq, record in store.read(log):
            yield log, seq, record

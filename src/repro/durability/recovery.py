"""Crash recovery: replay the write-ahead log to a consistent state.

The model: configurations are produced by a *deterministic builder* (the
same code that built the pre-crash system — an ADL document, a scenario
script, a test fixture).  After a crash the process restarts, rebuilds
the pre-reconfiguration assembly, and hands it to :func:`recover`
together with fresh change objects.  Recovery then makes the half-done
transaction's outcome match its durable decision:

* the log contains a ``commit`` marker → **roll forward**: the
  transaction had durably decided to commit, so the changes are
  re-executed, driving the fresh assembly to the post-reconfiguration
  configuration;
* the log stops before ``commit`` → **roll back**: the transaction never
  durably committed, so the pre-reconfiguration assembly *is* the
  recovered state (the half-applied in-memory mutations died with the
  crashed process).

Either way the recovered assembly must pass
:func:`~repro.reconfig.consistency.check_assembly` and hash to exactly
the pre- or post-reconfiguration checksum — never a hybrid.  Recovery
appends a ``recovered`` record so a second restart is idempotent and the
log itself narrates what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.durability.checksum import assembly_checksum
from repro.durability.store import Store, canonical_json
from repro.durability.wal import WAL_LOG, WalPhase, WriteAheadLog
from repro.errors import RecoveryError
from repro.kernel.assembly import Assembly
from repro.reconfig.changes import Change
from repro.reconfig.consistency import check_assembly
from repro.reconfig.transaction import ReconfigurationTransaction

#: Recovery outcomes.
ROLL_FORWARD = "roll-forward"
ROLL_BACK = "roll-back"
CLEAN = "clean"


@dataclass
class RecoveryReport:
    """What recovery decided and verified — deterministic by design, so
    repeated same-seed recoveries serialize byte-identically."""

    txn: str | None
    mode: str
    checksum: str
    phases_seen: list[str] = field(default_factory=list)
    applied: list[str] = field(default_factory=list)
    consistent: bool = True

    def to_json(self) -> str:
        return canonical_json({
            "txn": self.txn,
            "mode": self.mode,
            "checksum": self.checksum,
            "phases_seen": self.phases_seen,
            "applied": self.applied,
            "consistent": self.consistent,
        })


def decide(phases: Iterable[str]) -> str:
    """The roll-forward/roll-back decision rule, isolated for reuse:
    roll forward past the commit marker, roll back before it."""
    return ROLL_FORWARD if WalPhase.COMMIT in phases else ROLL_BACK


def recover(store: Store, assembly: Assembly,
            changes: Iterable[Change], *, log: str = WAL_LOG,
            txn: str | None = None,
            verify_checksums: bool = True) -> RecoveryReport:
    """Drive a freshly rebuilt pre-state assembly to the durable outcome.

    Args:
        store: the backend the crashed run journaled into.
        assembly: the pre-reconfiguration assembly, rebuilt by the same
            deterministic builder the crashed process used.
        changes: *fresh* change objects matching the crashed
            transaction's change list (same builder, same order; change
            objects hold live references and are single-use, so the
            crashed run's instances cannot be reused).
        log: store log the WAL lives in.
        txn: transaction to recover; defaults to the last one started.
        verify_checksums: check the rebuilt assembly against the
            journaled ``pre_checksum`` (and, on roll-forward past a
            complete log, the ``post_checksum``); a mismatch means the
            builder is not deterministic and recovery cannot be trusted.

    Returns a :class:`RecoveryReport`; raises
    :class:`~repro.errors.RecoveryError` when the log and the rebuilt
    world disagree or the recovered state fails consistency.
    """
    wal = WriteAheadLog(store, log)
    changes = list(changes)
    target_txn = txn if txn is not None else wal.last_txn()
    if target_txn is None:
        checksum = assembly_checksum(assembly)
        report = RecoveryReport(None, CLEAN, checksum)
        report.consistent = bool(check_assembly(assembly))
        return report

    records = wal.records(target_txn)
    if not records:
        raise RecoveryError(f"no WAL records for transaction {target_txn!r}")
    phases = [record["phase"] for record in records]
    intent = next((r for r in records if r["phase"] == WalPhase.INTENT), None)
    if intent is None:
        raise RecoveryError(
            f"transaction {target_txn!r} has no intent record; "
            "the log is torn below the journaling contract")

    pre_checksum = assembly_checksum(assembly)
    if verify_checksums and intent.get("pre_checksum") not in (
            None, pre_checksum):
        raise RecoveryError(
            f"rebuilt assembly does not match the journaled "
            f"pre-reconfiguration state of {target_txn!r} "
            f"(expected {intent['pre_checksum'][:12]}…, "
            f"got {pre_checksum[:12]}…); the builder is not deterministic")

    journaled = intent.get("changes", [])
    descriptions = [change.description for change in changes]
    if journaled and descriptions != journaled:
        raise RecoveryError(
            f"fresh change list does not match the journaled intent of "
            f"{target_txn!r}: journaled {journaled!r}, got {descriptions!r}")

    mode = decide(phases)
    report = RecoveryReport(target_txn, mode, pre_checksum,
                            phases_seen=phases)

    if mode == ROLL_FORWARD:
        replay = ReconfigurationTransaction(
            assembly, name=f"{target_txn}.recovery")
        for change in changes:
            replay.add(change)
        try:
            replay.execute()
        except Exception as exc:
            raise RecoveryError(
                f"roll-forward of {target_txn!r} failed to re-execute: "
                f"{exc}") from exc
        report.applied = list(replay.report.applied_changes)
        report.checksum = assembly_checksum(assembly)
        post = next((r for r in records
                     if r["phase"] == WalPhase.POST_COMMIT), None)
        if verify_checksums and post is not None and (
                post.get("post_checksum") != report.checksum):
            raise RecoveryError(
                f"roll-forward of {target_txn!r} reached a state that "
                f"differs from the journaled post-commit checksum")

    consistency = check_assembly(assembly)
    report.consistent = bool(consistency)
    if not consistency:
        raise RecoveryError(
            f"recovered assembly for {target_txn!r} is inconsistent: "
            + "; ".join(consistency.violations))

    wal.recovered(target_txn, mode, report.checksum)
    return report

"""Deterministic configuration checksums.

Crash recovery's acceptance rule is *no hybrids*: a recovered assembly
must equal the pre-reconfiguration configuration or the
post-reconfiguration configuration, bit for bit.  The witness is a
sha256 over a canonical document covering everything a reconfiguration
can touch — components (placement, lifecycle, state, ports), bindings,
and connector attachments.  Two assemblies built by the same
deterministic builder hash identically; any applied-but-uncommitted
change shows up as a different digest.
"""

from __future__ import annotations

import hashlib
from typing import Any

from repro.durability.store import canonical_json
from repro.kernel.assembly import Assembly


def _canon(value: Any) -> Any:
    """Reduce arbitrary component state to a deterministic JSON shape."""
    if isinstance(value, dict):
        return {str(key): _canon(val) for key, val in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(str(item) for item in value)
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    # Arbitrary objects hash by type, not repr: reprs embed addresses.
    return f"<{type(value).__name__}>"


def _target_name(target: Any) -> str:
    qualified = getattr(target, "qualified_name", None)
    return qualified if qualified else f"<{type(target).__name__}>"


def assembly_document(assembly: Assembly) -> dict[str, Any]:
    """The canonical structure :func:`assembly_checksum` hashes."""
    components = []
    for component in sorted(assembly.registry, key=lambda c: c.name):
        components.append({
            "name": component.name,
            "node": component.node_name,
            "lifecycle": component.lifecycle.state.value,
            "state": _canon(component.state),
            "provided": sorted(component.provided),
            "required": {
                name: (_target_name(port.binding.target)
                       if port.is_bound else None)
                for name, port in sorted(component.required.items())
            },
        })
    connectors = {}
    for name, connector in sorted(assembly.connectors.items()):
        connectors[name] = {
            "kind": connector.kind,
            "attachments": {
                role: sorted(_target_name(a.target) for a in attachments)
                for role, attachments in sorted(
                    connector.attachments.items())
            },
        }
    return {
        "name": assembly.name,
        "components": components,
        "bindings": sorted(binding.describe() for binding in assembly.bindings),
        "connectors": connectors,
    }


def assembly_checksum(assembly: Assembly) -> str:
    """Hex sha256 of the assembly's canonical configuration document."""
    payload = canonical_json(assembly_document(assembly))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()

"""Durable state & multi-backend persistence for reconfiguration.

The repository abstraction (:class:`Store` with in-memory and sqlite
backends), the write-ahead change log reconfiguration transactions
journal into, deterministic configuration checksums, crash recovery by
log replay, and the durable RAML audit sink.  See docs/DESIGN.md for
the WAL format and the roll-forward/roll-back decision rule.
"""

from repro.durability.audit_sink import AUDIT_LOG, DurableAuditSink
from repro.durability.checksum import assembly_checksum, assembly_document
from repro.durability.recovery import (
    CLEAN,
    ROLL_BACK,
    ROLL_FORWARD,
    RecoveryReport,
    decide,
    recover,
)
from repro.durability.store import (
    MemoryStore,
    SqliteStore,
    Store,
    canonical_json,
    copy_log,
    iter_records,
    open_store,
)
from repro.durability.wal import (
    SNAPSHOT_LOG,
    WAL_LOG,
    WalPhase,
    WriteAheadLog,
)

__all__ = [
    "AUDIT_LOG",
    "CLEAN",
    "DurableAuditSink",
    "MemoryStore",
    "ROLL_BACK",
    "ROLL_FORWARD",
    "RecoveryReport",
    "SNAPSHOT_LOG",
    "SqliteStore",
    "Store",
    "WAL_LOG",
    "WalPhase",
    "WriteAheadLog",
    "assembly_checksum",
    "assembly_document",
    "canonical_json",
    "copy_log",
    "decide",
    "iter_records",
    "open_store",
    "recover",
]

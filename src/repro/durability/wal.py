"""The write-ahead change log.

Every phase transition of a journaled
:class:`~repro.reconfig.transaction.ReconfigurationTransaction` is
appended here *before* the corresponding in-memory mutation, so a crash
at any instant leaves a log prefix from which
:func:`repro.durability.recovery.recover` can reconstruct the system's
durable decision:

========================= ==================================================
record (``phase``)        meaning
========================= ==================================================
``intent``                the transaction exists: name, change list and the
                          pre-reconfiguration checksum
``quiesce``               the affected region reached quiescence
``apply``                 change *i* is about to mutate the assembly
                          (one record per change, written ahead)
``commit``                **the decision marker**: every change applied and
                          the consistency check passed — from here recovery
                          rolls *forward*
``post-commit``           finalisation + release done; carries the
                          post-reconfiguration checksum
``rollback-begin``        a failure was caught; undo is starting
``rollback``              undo completed cleanly
``abort``                 the transaction failed before mutating anything
``recovered``             appended by recovery itself: the mode it chose
                          and the checksum it verified
========================= ==================================================

The decision rule is the classical one: a transaction whose log contains
``commit`` is rolled forward on restart; one whose log stops anywhere
before it is rolled back.  ``post-commit`` only tells recovery the
finalisation also completed — it never changes the decision.

Crash points for the fault-injection matrix hook in through
:attr:`WriteAheadLog.crash_injector` (see
:class:`repro.injectors.crash.CrashInjector`): each append announces its
*point key* (``intent``, ``quiesce``, ``apply:0`` … ``apply:N-1``,
``commit``, ``post-commit``, ``rollback-begin``, ``rollback``) before
and after the record is made durable.
"""

from __future__ import annotations

from typing import Any

from repro.errors import WalError
from repro.durability.store import Store

#: Default store log the WAL appends to.
WAL_LOG = "reconfig-wal"

#: Store log state-transfer snapshots append to (kept separate from the
#: phase records: snapshots can be large and recovery's decision scan
#: should stay cheap).
SNAPSHOT_LOG = "state-snapshots"


class WalPhase:
    """Phase names, in journal order."""

    INTENT = "intent"
    QUIESCE = "quiesce"
    APPLY = "apply"
    COMMIT = "commit"
    POST_COMMIT = "post-commit"
    ROLLBACK_BEGIN = "rollback-begin"
    ROLLBACK = "rollback"
    ABORT = "abort"
    RECOVERED = "recovered"

    ALL = (INTENT, QUIESCE, APPLY, COMMIT, POST_COMMIT,
           ROLLBACK_BEGIN, ROLLBACK, ABORT, RECOVERED)


class WriteAheadLog:
    """Journal of reconfiguration phase transitions over a :class:`Store`.

    One ``WriteAheadLog`` may serve many transactions; records carry the
    transaction id (``txn``) so recovery can isolate the last one.
    """

    def __init__(self, store: Store, log: str = WAL_LOG) -> None:
        self.store = store
        self.log = log
        #: Optional chaos hook; see :mod:`repro.injectors.crash`.  The
        #: injector's ``fire(point, when)`` runs immediately before and
        #: after each append.
        self.crash_injector: Any = None

    # -- journaling --------------------------------------------------------

    def journal(self, txn: str, phase: str, *, point: str | None = None,
                **fields: Any) -> int:
        """Append one phase record; returns its sequence number.

        ``point`` is the crash-matrix key (defaults to the phase name;
        apply records pass ``apply:<index>``).
        """
        if phase not in WalPhase.ALL:
            raise WalError(f"unknown WAL phase {phase!r}")
        key = point if point is not None else phase
        record = {"txn": txn, "phase": phase, **fields}
        if self.crash_injector is not None:
            self.crash_injector.fire(key, "before")
        seq = self.store.append(self.log, record)
        if self.crash_injector is not None:
            self.crash_injector.fire(key, "after")
        return seq

    def intent(self, txn: str, name: str, changes: list[str],
               pre_checksum: str) -> int:
        return self.journal(txn, WalPhase.INTENT, name=name,
                            changes=changes, pre_checksum=pre_checksum)

    def quiesce(self, txn: str, components: list[str]) -> int:
        return self.journal(txn, WalPhase.QUIESCE, components=components)

    def apply(self, txn: str, index: int, change: str,
              payload: dict[str, Any] | None = None) -> int:
        return self.journal(txn, WalPhase.APPLY, point=f"apply:{index}",
                            index=index, change=change,
                            payload=payload or {})

    def commit(self, txn: str) -> int:
        return self.journal(txn, WalPhase.COMMIT)

    def post_commit(self, txn: str, post_checksum: str) -> int:
        return self.journal(txn, WalPhase.POST_COMMIT,
                            post_checksum=post_checksum)

    def rollback_begin(self, txn: str, error: str) -> int:
        return self.journal(txn, WalPhase.ROLLBACK_BEGIN, error=error)

    def rollback(self, txn: str, reverted: list[str]) -> int:
        return self.journal(txn, WalPhase.ROLLBACK, reverted=reverted)

    def abort(self, txn: str, error: str) -> int:
        return self.journal(txn, WalPhase.ABORT, error=error)

    def recovered(self, txn: str, mode: str, checksum: str) -> int:
        return self.journal(txn, WalPhase.RECOVERED, mode=mode,
                            checksum=checksum)

    def snapshot(self, txn: str, change: str,
                 snapshot: dict[str, Any]) -> int:
        """Persist a state-transfer snapshot (see :data:`SNAPSHOT_LOG`)."""
        return self.store.append(
            SNAPSHOT_LOG,
            {"txn": txn, "change": change, "snapshot": snapshot})

    def snapshots(self, txn: str | None = None) -> list[dict[str, Any]]:
        entries = [record for _seq, record in self.store.read(SNAPSHOT_LOG)]
        if txn is None:
            return entries
        return [record for record in entries if record.get("txn") == txn]

    # -- reading back ------------------------------------------------------

    def records(self, txn: str | None = None) -> list[dict[str, Any]]:
        """All records in append order, optionally for one transaction."""
        entries = [record for _seq, record in self.store.read(self.log)]
        if txn is None:
            return entries
        return [record for record in entries if record.get("txn") == txn]

    def transactions(self) -> list[str]:
        """Transaction ids in order of first appearance."""
        seen: list[str] = []
        for record in self.records():
            txn = record.get("txn")
            if txn is not None and txn not in seen:
                seen.append(txn)
        return seen

    def last_txn(self) -> str | None:
        """The most recently started transaction (by ``intent`` record)."""
        last = None
        for record in self.records():
            if record.get("phase") == WalPhase.INTENT:
                last = record.get("txn")
        return last

    def phases(self, txn: str) -> list[str]:
        return [record["phase"] for record in self.records(txn)]

    def has_phase(self, txn: str, phase: str) -> bool:
        return phase in self.phases(txn)

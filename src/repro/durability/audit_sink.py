"""Durable sink for the RAML decision audit.

The audit log is the *why* behind every meta-level action; until now it
lived (and died) with the process.  :class:`DurableAuditSink` subscribes
to a tracer's :class:`~repro.telemetry.audit.AuditLog` and streams each
record into a :class:`~repro.durability.store.Store` log, so the
decision history of a crashed run is replayable evidence, not a memory.

Records persist in the audit's canonical shape (``time``, ``kind``, the
driving fields) via the store's deterministic serialization — repeated
same-seed runs produce byte-identical durable audit streams, which is
what lets the crash matrix diff them.
"""

from __future__ import annotations

from typing import Any

from repro.durability.store import Store
from repro.errors import DurabilityError, StoreError

#: Default store log audit records append to.
AUDIT_LOG = "raml-audit"


class DurableAuditSink:
    """Persists audit records as they are appended.

    Args:
        store: backend to append into.
        log: store log name.
        on_error: ``"raise"`` propagates a backend failure to the
            decision site (durability is part of the contract);
            ``"collect"`` counts the loss in :attr:`dropped` and keeps
            the simulation running — degraded, but surfaced, never
            silent.
    """

    def __init__(self, store: Store, log: str = AUDIT_LOG,
                 on_error: str = "raise") -> None:
        if on_error not in ("raise", "collect"):
            raise DurabilityError(
                f"on_error must be 'raise' or 'collect', got {on_error!r}")
        self.store = store
        self.log = log
        self.on_error = on_error
        self.persisted = 0
        self.dropped = 0
        self.errors: list[str] = []
        self._attached_to: Any = None

    def __call__(self, record: Any) -> None:
        """Sink hook: persist one :class:`AuditRecord`."""
        try:
            self.store.append(self.log, record.as_dict())
        except StoreError as exc:
            self.dropped += 1
            self.errors.append(str(exc))
            if self.on_error == "raise":
                raise
            return
        self.persisted += 1

    # -- wiring ------------------------------------------------------------

    def attach(self, tracer: Any) -> "DurableAuditSink":
        """Subscribe to a tracer's audit log."""
        tracer.audit.add_sink(self)
        self._attached_to = tracer
        return self

    def detach(self) -> None:
        if self._attached_to is not None:
            self._attached_to.audit.remove_sink(self)
            self._attached_to = None

    # -- reading back ------------------------------------------------------

    def load(self) -> list[dict[str, Any]]:
        """The persisted audit stream, in append order."""
        return [record for _seq, record in self.store.read(self.log)]

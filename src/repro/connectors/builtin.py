"""Builtin connector kinds.

The interaction schemas the paper's surveyed systems provide: plain RPC,
broadcast, topic-based event bus, staged pipelines, load balancing and
failover.  All are "light-weight components which function as glue".
"""

from __future__ import annotations

import random
import time
from typing import Any

from repro.errors import ConnectorError
from repro.kernel.component import Invocation
from repro.kernel.interface import Interface, Operation
from repro.connectors.connector import Attachment, Connector
from repro.connectors.roles import Role, callee, caller


class RpcConnector(Connector):
    """One-to-one request/reply glue with optional retry-on-error.

    Retries back off exponentially with **deterministic** seeded jitter:
    the delay before retry *k* of call *n* is drawn from a stream seeded
    by ``(seed, n, k)``, so two runs with the same seed produce
    byte-identical retry schedules (recorded in
    ``invocation.meta["backoff"]``) — determinism survives the
    robustness knob.  The default ``backoff_base=0.0`` retries
    immediately, matching the original behaviour.
    """

    kind = "rpc"

    def __init__(self, name: str, interface: Interface, retries: int = 0,
                 *, backoff_base: float = 0.0, backoff_factor: float = 2.0,
                 backoff_max: float = 1.0, backoff_jitter: float = 0.1,
                 seed: int = 0) -> None:
        super().__init__(
            name,
            [
                caller("client", interface, many=True),
                callee("server", interface),
            ],
        )
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.backoff_jitter = backoff_jitter
        self.seed = seed
        self._calls = 0

    def backoff(self, call: int, attempt: int) -> float:
        """Delay before retry ``attempt`` (0-based) of call ``call``."""
        if self.backoff_base <= 0.0:
            return 0.0
        delay = min(self.backoff_base * self.backoff_factor ** attempt,
                    self.backoff_max)
        if self.backoff_jitter > 0.0:
            stream = random.Random((self.seed << 24) ^ (call << 8) ^ attempt)
            delay *= 1.0 + self.backoff_jitter * stream.random()
        return delay

    def route(self, source_role: Role, invocation: Invocation) -> Any:
        attachments = self.attachments["server"]
        if not attachments:
            raise ConnectorError(f"rpc connector {self.name!r} has no server")
        server = attachments[0].target
        call = self._calls
        self._calls += 1
        attempts = self.retries + 1
        last_error: Exception | None = None
        for attempt in range(attempts):
            if attempt > 0:
                delay = self.backoff(call, attempt - 1)
                invocation.meta.setdefault("backoff", []).append(delay)
                if delay > 0.0:
                    time.sleep(delay)
            try:
                return server.invoke(invocation)
            except Exception as exc:  # noqa: BLE001 - retried, then re-raised
                last_error = exc
                invocation.meta["attempts"] = attempt + 1
        assert last_error is not None
        raise last_error


class BroadcastConnector(Connector):
    """One-to-many: every subscriber receives every invocation.

    Returns the list of subscriber results in attachment order.
    """

    kind = "broadcast"

    def __init__(self, name: str, interface: Interface) -> None:
        super().__init__(
            name,
            [
                caller("publisher", interface, many=True),
                callee("subscriber", interface, many=True),
            ],
        )
        #: What to do when one subscriber raises: "raise" or "collect".
        self.error_policy = "raise"

    def route(self, source_role: Role, invocation: Invocation) -> list[Any]:
        results: list[Any] = []
        for attachment in list(self.attachments["subscriber"]):
            try:
                results.append(attachment.target.invoke(invocation.copy()))
            except Exception as exc:  # noqa: BLE001 - policy-controlled
                if self.error_policy == "raise":
                    raise
                results.append(exc)
        return results


class EventBusConnector(Connector):
    """Topic-based publish/subscribe.

    Subscribers attach with a topic pattern (exact topic or ``*``);
    publishers set ``invocation.meta["topic"]``.  Delivery is fan-out to
    matching subscribers; the result is the number of deliveries.
    """

    kind = "event-bus"

    def __init__(self, name: str, interface: Interface) -> None:
        super().__init__(
            name,
            [
                caller("publisher", interface, many=True),
                callee("subscriber", interface, many=True, required=False),
            ],
        )
        self._topics: dict[int, str] = {}

    def subscribe(self, target: Any, topic: str = "*") -> Attachment:
        """Attach a subscriber interested in ``topic``."""
        attachment = self.attach("subscriber", target)
        self._topics[id(attachment)] = topic
        return attachment

    def route(self, source_role: Role, invocation: Invocation) -> int:
        topic = str(invocation.meta.get("topic", ""))
        delivered = 0
        for attachment in list(self.attachments["subscriber"]):
            pattern = self._topics.get(id(attachment), "*")
            if pattern == "*" or pattern == topic or (
                pattern.endswith("*") and topic.startswith(pattern[:-1])
            ):
                attachment.target.invoke(invocation.copy())
                delivered += 1
        return delivered


class PipelineConnector(Connector):
    """Staged processing: the paper's *composition path* substrate.

    Each stage must provide a single-parameter ``process`` operation; the
    pipeline threads the value through the stages in attachment order.
    """

    kind = "pipeline"

    #: The interface every stage must provide.
    STAGE_INTERFACE = Interface("Stage", "1.0", [Operation("process", ("value",))])

    def __init__(self, name: str, source_interface: Interface | None = None) -> None:
        super().__init__(
            name,
            [
                caller("source", source_interface or self.STAGE_INTERFACE, many=True),
                callee("stage", self.STAGE_INTERFACE, many=True),
            ],
        )

    def route(self, source_role: Role, invocation: Invocation) -> Any:
        stages = self.attachments["stage"]
        if not stages:
            raise ConnectorError(f"pipeline {self.name!r} has no stages")
        value = invocation.args[0] if invocation.args else invocation.meta.get("payload")
        for attachment in stages:
            step = Invocation("process", (value,), meta=dict(invocation.meta))
            value = attachment.target.invoke(step)
        return value


class LoadBalancerConnector(Connector):
    """One-to-one-of-many with a pluggable balancing policy.

    Policies: ``round_robin``, ``random`` (seeded), ``least_busy`` (fewest
    active calls on the owning component) and ``weighted`` (static
    weights).  The policy is swappable at run time — the strategy-pattern
    mechanism applied to a connector.
    """

    kind = "load-balancer"

    def __init__(
        self,
        name: str,
        interface: Interface,
        policy: str = "round_robin",
        seed: int = 0,
    ) -> None:
        super().__init__(
            name,
            [
                caller("client", interface, many=True),
                callee("worker", interface, many=True),
            ],
        )
        self._rr_index = 0
        self.rng = random.Random(seed)
        self.set_policy(policy)

    POLICIES = ("round_robin", "random", "least_busy", "weighted")

    def set_policy(self, policy: str) -> None:
        if policy not in self.POLICIES:
            raise ConnectorError(
                f"unknown balancing policy {policy!r}; choose from "
                f"{', '.join(self.POLICIES)}"
            )
        self.policy = policy

    def _pick(self, workers: list[Attachment]) -> Attachment:
        if self.policy == "round_robin":
            choice = workers[self._rr_index % len(workers)]
            self._rr_index += 1
            return choice
        if self.policy == "random":
            return self.rng.choice(workers)
        if self.policy == "least_busy":
            def busyness(attachment: Attachment) -> tuple[int, str]:
                owner = getattr(attachment.target, "component", None)
                active = getattr(owner, "_active_calls", 0)
                return (active, attachment.name)

            return min(workers, key=busyness)
        # weighted: expected share proportional to weight.
        total = sum(a.weight for a in workers)
        point = self.rng.uniform(0, total)
        cursor = 0.0
        for attachment in workers:
            cursor += attachment.weight
            if point <= cursor:
                return attachment
        return workers[-1]

    def route(self, source_role: Role, invocation: Invocation) -> Any:
        workers = list(self.attachments["worker"])
        if not workers:
            raise ConnectorError(f"load balancer {self.name!r} has no workers")
        return self._pick(workers).target.invoke(invocation)


class FailoverConnector(Connector):
    """Primary/backup glue for fault tolerance.

    Attempts attachments in order; the first success wins.  Failed
    participants are remembered and skipped until :meth:`reset` is called
    (circuit-breaker-lite).
    """

    kind = "failover"

    def __init__(self, name: str, interface: Interface) -> None:
        super().__init__(
            name,
            [
                caller("client", interface, many=True),
                callee("replica", interface, many=True),
            ],
        )
        self._suspected: set[int] = set()
        self.failover_count = 0

    def reset(self) -> None:
        """Forget failure suspicions (e.g. after repairs)."""
        self._suspected.clear()

    def route(self, source_role: Role, invocation: Invocation) -> Any:
        replicas = list(self.attachments["replica"])
        if not replicas:
            raise ConnectorError(f"failover connector {self.name!r} has no replicas")
        last_error: Exception | None = None
        tried = 0
        for attachment in replicas:
            if id(attachment) in self._suspected:
                continue
            tried += 1
            try:
                return attachment.target.invoke(invocation)
            except Exception as exc:  # noqa: BLE001 - drives failover
                last_error = exc
                self._suspected.add(id(attachment))
                self.failover_count += 1
        if last_error is not None:
            raise last_error
        raise ConnectorError(
            f"failover connector {self.name!r}: all {len(replicas)} replicas "
            "are suspected; call reset() after repair"
        )

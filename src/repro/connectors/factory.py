"""The connector factory.

"A connector-factory may be used to generate connectors according to the
description of elementary services and aspects that are selected for a
specific collaboration."  :class:`ConnectorFactory` turns a declarative
:class:`ConnectorSpec` into a live connector:

1. instantiate the requested *kind* (builtin or registered),
2. run the Wright-style compatibility analysis on the kind's glue and
   role protocols (refusing to build incompatible glue),
3. weave the requested *aspects* (named interceptor factories) into the
   connector's interceptor chain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConnectorError, IncompatibleProtocolError
from repro.kernel.component import Interceptor
from repro.kernel.interface import Interface
from repro.connectors.builtin import (
    BroadcastConnector,
    EventBusConnector,
    FailoverConnector,
    LoadBalancerConnector,
    PipelineConnector,
    RpcConnector,
)
from repro.connectors.connector import Connector
from repro.connectors.protocols import (
    rpc_client_protocol,
    rpc_glue,
    rpc_server_protocol,
    verify_glue,
)

#: Builds a connector from (name, interface, options).
ConnectorBuilder = Callable[[str, Interface, dict[str, Any]], Connector]

#: Builds an interceptor from options.
AspectFactory = Callable[[dict[str, Any]], Interceptor]


@dataclass
class ConnectorSpec:
    """Declarative description of one collaboration's connector."""

    name: str
    kind: str
    interface: Interface
    options: dict[str, Any] = field(default_factory=dict)
    aspects: tuple[str, ...] = ()
    verify_protocols: bool = True


class ConnectorFactory:
    """Registry-driven connector generation with protocol verification."""

    def __init__(self) -> None:
        self._kinds: dict[str, ConnectorBuilder] = {}
        self._aspects: dict[str, AspectFactory] = {}
        self.built: list[str] = []
        self._register_builtins()

    # -- registration -----------------------------------------------------

    def register_kind(self, kind: str, builder: ConnectorBuilder) -> None:
        if kind in self._kinds:
            raise ConnectorError(f"connector kind {kind!r} already registered")
        self._kinds[kind] = builder

    def register_aspect(self, name: str, factory: AspectFactory) -> None:
        if name in self._aspects:
            raise ConnectorError(f"aspect {name!r} already registered")
        self._aspects[name] = factory

    def kinds(self) -> list[str]:
        return sorted(self._kinds)

    def aspect_names(self) -> list[str]:
        return sorted(self._aspects)

    def _register_builtins(self) -> None:
        self._kinds.update(
            {
                "rpc": lambda name, iface, opts: RpcConnector(
                    name, iface, retries=int(opts.get("retries", 0))
                ),
                "broadcast": lambda name, iface, opts: BroadcastConnector(name, iface),
                "event-bus": lambda name, iface, opts: EventBusConnector(name, iface),
                "pipeline": lambda name, iface, opts: PipelineConnector(name, iface),
                "load-balancer": lambda name, iface, opts: LoadBalancerConnector(
                    name,
                    iface,
                    policy=str(opts.get("policy", "round_robin")),
                    seed=int(opts.get("seed", 0)),
                ),
                "failover": lambda name, iface, opts: FailoverConnector(name, iface),
            }
        )

    # -- creation -----------------------------------------------------------

    def create(self, spec: ConnectorSpec) -> Connector:
        """Build, verify and weave a connector from its spec."""
        try:
            builder = self._kinds[spec.kind]
        except KeyError:
            raise ConnectorError(
                f"unknown connector kind {spec.kind!r}; known kinds: "
                f"{', '.join(self.kinds())}"
            ) from None

        connector = builder(spec.name, spec.interface, dict(spec.options))

        if spec.verify_protocols:
            self._verify(spec, connector)

        for aspect_name in spec.aspects:
            try:
                factory = self._aspects[aspect_name]
            except KeyError:
                raise ConnectorError(
                    f"unknown aspect {aspect_name!r}; known aspects: "
                    f"{', '.join(self.aspect_names())}"
                ) from None
            connector.interceptors.append(factory(dict(spec.options)))

        self.built.append(spec.name)
        return connector

    def _verify(self, spec: ConnectorSpec, connector: Connector) -> None:
        """Check glue/role protocol compatibility where models exist.

        Custom role protocols supplied via ``options["protocols"]``
        override the kind defaults; kinds without models are accepted.
        """
        protocols = spec.options.get("protocols")
        if protocols is not None:
            glue, roles = protocols
        elif spec.kind == "rpc":
            glue = rpc_glue()
            roles = [rpc_client_protocol(), rpc_server_protocol()]
        else:
            return
        report = verify_glue(glue, list(roles))
        if not report.deadlock_free:
            raise IncompatibleProtocolError(
                f"connector {spec.name!r} ({spec.kind}): glue and role "
                f"protocols can deadlock after trace "
                f"{' -> '.join(report.witness_trace) or '<initial>'}"
            )

"""First-class connectors.

"Connectors are abstractions for component interactions … a connector is
a light-weight component which functions as a glue of components and
induces a low overload."  A :class:`Connector` owns a set of
:class:`~repro.connectors.roles.Role` slots; callers bind their required
ports to the connector's *role endpoints* and the connector's *glue*
routes each invocation to one or more attached callees.

Connectors support the same interceptor/observer pipeline as provided
ports, so aspects and filters compose uniformly over components *and*
connectors, and they expose introspection/intercession hooks for RAML
(swap glue, rebind participants, drain traffic).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ConnectorError, RoleError
from repro.kernel.component import Interceptor, Invocable, Invocation
from repro.kernel.interface import Interface
from repro.connectors.roles import Role, RoleKind


@dataclass
class ConnectorStats:
    invocations: int = 0
    errors: int = 0
    by_role: dict[str, int] = field(default_factory=dict)


class RoleEndpoint:
    """The :class:`Invocable` face a caller role presents to bindings."""

    def __init__(self, connector: "Connector", role: Role) -> None:
        self.connector = connector
        self.role = role
        self.interface: Interface = role.interface

    @property
    def qualified_name(self) -> str:
        return f"{self.connector.name}:{self.role.name}"

    def invoke(self, invocation: Invocation) -> Any:
        return self.connector.invoke_from(self.role.name, invocation)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RoleEndpoint({self.qualified_name})"


class Attachment:
    """One participant attached to a callee role."""

    def __init__(self, role: Role, target: Invocable, weight: float = 1.0) -> None:
        self.role = role
        self.target = target
        self.weight = weight

    @property
    def name(self) -> str:
        return getattr(self.target, "qualified_name", repr(self.target))


class Connector:
    """Base connector: routes caller invocations to callee attachments.

    Subclasses override :meth:`route` to implement their glue semantics
    (RPC pass-through, broadcast, load balancing, pipelines…).  The base
    implementation forwards to the single attachment of the single callee
    role.
    """

    #: Human-readable connector kind, overridden by subclasses.
    kind = "direct"

    def __init__(self, name: str, roles: list[Role]) -> None:
        if not roles:
            raise ConnectorError(f"connector {name!r} needs at least one role")
        names = [role.name for role in roles]
        if len(set(names)) != len(names):
            raise ConnectorError(f"connector {name!r} has duplicate role names")
        self.name = name
        self.roles: dict[str, Role] = {role.name: role for role in roles}
        self.attachments: dict[str, list[Attachment]] = {
            role.name: [] for role in roles
        }
        self._endpoints: dict[str, RoleEndpoint] = {}
        self.interceptors: list[Interceptor] = []
        self.stats = ConnectorStats()
        #: Introspection observers: fn(phase, role_name, invocation, payload).
        self.observers: list[Callable[[str, str, Invocation, Any], None]] = []
        self.enabled = True

    # -- wiring -----------------------------------------------------------

    def role(self, name: str) -> Role:
        try:
            return self.roles[name]
        except KeyError:
            raise RoleError(
                f"connector {self.name!r} has no role {name!r}"
            ) from None

    def endpoint(self, role_name: str) -> RoleEndpoint:
        """The invocable endpoint of a caller role (bind targets here)."""
        role = self.role(role_name)
        if role.kind is not RoleKind.CALLER:
            raise RoleError(
                f"role {role_name!r} of {self.name!r} is a callee role; "
                "only caller roles expose endpoints"
            )
        if role_name not in self._endpoints:
            self._endpoints[role_name] = RoleEndpoint(self, role)
        return self._endpoints[role_name]

    def attach(
        self,
        role_name: str,
        target: Invocable,
        weight: float = 1.0,
        behaviour: Any = None,
        check_behaviour: bool = True,
    ) -> Attachment:
        """Attach a participant to a callee role.

        The target's interface must satisfy the role interface; if both a
        role protocol and a participant behaviour LTS are available the
        participant is checked to stay within the protocol.
        """
        role = self.role(role_name)
        if role.kind is not RoleKind.CALLEE:
            raise RoleError(
                f"role {role_name!r} of {self.name!r} is a caller role; "
                "participants attach to callee roles"
            )
        if not target.interface.satisfies(role.interface):
            raise RoleError(
                f"{getattr(target, 'qualified_name', target)!r} does not "
                f"satisfy role {role_name!r} interface "
                f"{role.interface.name!r} v{role.interface.version}"
            )
        if not role.many and self.attachments[role_name]:
            raise RoleError(
                f"role {role_name!r} of {self.name!r} is single-participant "
                "and already attached"
            )
        model = behaviour
        if model is None:
            owner = getattr(target, "component", None)
            model = getattr(owner, "behaviour", None)
        if check_behaviour and not role.accepts_behaviour(model):
            raise RoleError(
                f"behaviour of {getattr(target, 'qualified_name', target)!r} "
                f"violates the protocol of role {role_name!r}"
            )
        attachment = Attachment(role, target, weight)
        self.attachments[role_name].append(attachment)
        return attachment

    def detach(self, role_name: str, target: Invocable) -> None:
        """Remove a participant from a callee role."""
        attachments = self.attachments[self.role(role_name).name]
        for attachment in attachments:
            if attachment.target is target:
                attachments.remove(attachment)
                return
        raise RoleError(
            f"{getattr(target, 'qualified_name', target)!r} is not attached "
            f"to role {role_name!r} of {self.name!r}"
        )

    def replace_attachment(
        self, role_name: str, old: Invocable, new: Invocable
    ) -> None:
        """Atomically swap one participant for another (intercession)."""
        self.detach(role_name, old)
        self.attach(role_name, new)

    def is_complete(self) -> bool:
        """True when every required role has at least one participant.

        Caller roles are satisfied by construction (their endpoint exists
        on demand); callee roles need attachments.
        """
        return all(
            not role.required
            or role.kind is RoleKind.CALLER
            or self.attachments[role.name]
            for role in self.roles.values()
        )

    # -- invocation ---------------------------------------------------------

    def invoke_from(self, role_name: str, invocation: Invocation) -> Any:
        """Entry point for caller roles: run interceptors, then the glue."""
        if not self.enabled:
            raise ConnectorError(f"connector {self.name!r} is disabled")
        role = self.role(role_name)
        self.stats.invocations += 1
        self.stats.by_role[role_name] = self.stats.by_role.get(role_name, 0) + 1
        self._notify("before", role_name, invocation, None)

        chain = list(self.interceptors)

        def proceed(inv: Invocation, _position: int = 0) -> Any:
            if _position < len(chain):
                return chain[_position](
                    inv, lambda inner: proceed(inner, _position + 1)
                )
            return self.route(role, inv)

        try:
            result = proceed(invocation)
        except Exception as exc:
            self.stats.errors += 1
            self._notify("error", role_name, invocation, exc)
            raise
        self._notify("after", role_name, invocation, result)
        return result

    def route(self, source_role: Role, invocation: Invocation) -> Any:
        """Glue semantics: forward to the sole attachment of the sole
        callee role.  Subclasses override for richer interaction schemas."""
        callees = [
            role for role in self.roles.values() if role.kind is RoleKind.CALLEE
        ]
        if len(callees) != 1:
            raise ConnectorError(
                f"base connector {self.name!r} requires exactly one callee "
                f"role, found {len(callees)}"
            )
        attachments = self.attachments[callees[0].name]
        if not attachments:
            raise ConnectorError(
                f"connector {self.name!r}: no participant attached to role "
                f"{callees[0].name!r}"
            )
        return attachments[0].target.invoke(invocation)

    def _notify(
        self, phase: str, role_name: str, invocation: Invocation, payload: Any
    ) -> None:
        for observer in list(self.observers):
            observer(phase, role_name, invocation, payload)

    # -- introspection ----------------------------------------------------------

    def describe(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "kind": self.kind,
            "enabled": self.enabled,
            "roles": {
                name: {
                    "kind": role.kind.value,
                    "interface": role.interface.name,
                    "many": role.many,
                    "attachments": [a.name for a in self.attachments[name]],
                }
                for name, role in self.roles.items()
            },
            "invocations": self.stats.invocations,
            "errors": self.stats.errors,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"

"""Connector roles.

A *role* is a named participation slot in a connector — the paper's
"collection of protocols that characterize participant's roles in an
interaction" (Wright).  Each role is typed by an interface and may carry
an LTS protocol describing the behaviour expected of whatever attaches.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import RoleError
from repro.kernel.interface import Interface
from repro.lts.lts import Lts


class RoleKind(enum.Enum):
    """Direction of a role relative to the connector."""

    CALLER = "caller"  # components *send* invocations into the connector
    CALLEE = "callee"  # components *receive* invocations from the connector


@dataclass
class Role:
    """One participation slot of a connector type.

    Attributes:
        name: role name, unique within the connector.
        kind: caller or callee.
        interface: interface spoken on the role.
        protocol: optional LTS protocol for compatibility analysis.
        many: whether multiple participants may attach (e.g. subscribers).
        required: whether at least one participant must attach before the
            connector can serve traffic.
    """

    name: str
    kind: RoleKind
    interface: Interface
    protocol: Lts | None = None
    many: bool = False
    required: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise RoleError("role name must be non-empty")

    def accepts_behaviour(self, behaviour: Lts | None) -> bool:
        """Check a participant's behavioural model against the role
        protocol (weak simulation: the participant must stay within the
        protocol).  Participants without a model are accepted — checking
        is only as strong as the information available."""
        if self.protocol is None or behaviour is None:
            return True
        from repro.lts.check import simulates

        return simulates(self.protocol, behaviour)


def caller(name: str, interface: Interface, protocol: Lts | None = None,
           many: bool = False, required: bool = True) -> Role:
    """Shorthand for a caller role."""
    return Role(name, RoleKind.CALLER, interface, protocol, many, required)


def callee(name: str, interface: Interface, protocol: Lts | None = None,
           many: bool = False, required: bool = True) -> Role:
    """Shorthand for a callee role."""
    return Role(name, RoleKind.CALLEE, interface, protocol, many, required)

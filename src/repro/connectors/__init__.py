"""Connectors and the connector factory (S6 — the vision's mechanism).

First-class connectors with typed, protocol-carrying roles; builtin glue
kinds (rpc, broadcast, event-bus, pipeline, load-balancer, failover); a
factory that verifies Wright-style protocol compatibility and weaves
aspects before instantiation.
"""

from repro.connectors.builtin import (
    BroadcastConnector,
    EventBusConnector,
    FailoverConnector,
    LoadBalancerConnector,
    PipelineConnector,
    RpcConnector,
)
from repro.connectors.connector import (
    Attachment,
    Connector,
    ConnectorStats,
    RoleEndpoint,
)
from repro.connectors.factory import (
    AspectFactory,
    ConnectorBuilder,
    ConnectorFactory,
    ConnectorSpec,
)
from repro.connectors.protocols import (
    broadcast_glue,
    pipeline_glue,
    pipeline_stage_protocol,
    rpc_client_protocol,
    rpc_glue,
    rpc_server_protocol,
    subscriber_protocol,
    verify_glue,
)
from repro.connectors.roles import Role, RoleKind, callee, caller

__all__ = [
    "AspectFactory",
    "Attachment",
    "BroadcastConnector",
    "Connector",
    "ConnectorBuilder",
    "ConnectorFactory",
    "ConnectorSpec",
    "ConnectorStats",
    "EventBusConnector",
    "FailoverConnector",
    "LoadBalancerConnector",
    "PipelineConnector",
    "Role",
    "RoleEndpoint",
    "RoleKind",
    "RpcConnector",
    "broadcast_glue",
    "callee",
    "caller",
    "pipeline_glue",
    "pipeline_stage_protocol",
    "rpc_client_protocol",
    "rpc_glue",
    "rpc_server_protocol",
    "subscriber_protocol",
    "verify_glue",
]

"""Protocol models for connector kinds.

Each builtin connector kind publishes LTS models of its *glue* and of the
protocols its roles expect.  Composing glue and role protocols and
checking deadlock-freedom is the paper's Wright-style "interconnection
compatibility" analysis; it runs in the connector factory before a
connector is instantiated.
"""

from __future__ import annotations

from repro.lts.check import DeadlockReport, check_compatibility
from repro.lts.lts import Lts


def rpc_glue() -> Lts:
    """Request/reply glue: forward call, forward return, repeat."""
    return Lts.from_triples(
        "rpc-glue",
        [
            ("idle", "call", "busy"),
            ("busy", "return", "idle"),
        ],
        initial="idle",
    )


def rpc_client_protocol() -> Lts:
    """A well-behaved RPC client: call, await return, repeat."""
    return Lts.cycle("rpc-client", ["call", "return"])


def rpc_server_protocol() -> Lts:
    """A well-behaved RPC server: accept call, produce return, repeat."""
    return Lts.cycle("rpc-server", ["call", "return"])


def pipeline_glue(stages: int) -> Lts:
    """Staged processing glue: accept, visit each stage in order, emit."""
    triples = [("s0", "accept", "p0")]
    for i in range(stages):
        triples.append((f"p{i}", f"stage{i}", f"p{i + 1}"))
    triples.append((f"p{stages}", "emit", "s0"))
    return Lts.from_triples("pipeline-glue", triples, initial="s0")


def pipeline_stage_protocol(index: int) -> Lts:
    """Each stage synchronises only on its own step."""
    return Lts.cycle(f"stage{index}-protocol", [f"stage{index}"])


def broadcast_glue(subscribers: int) -> Lts:
    """Publish glue: accept an event, deliver to every subscriber in
    (arbitrary but modelled as fixed) order, return to idle."""
    triples = [("s0", "publish", "d0")]
    for i in range(subscribers):
        triples.append((f"d{i}", f"deliver{i}", f"d{i + 1}"))
    triples.append((f"d{subscribers}", "done", "s0"))
    return Lts.from_triples("broadcast-glue", triples, initial="s0")


def subscriber_protocol(index: int) -> Lts:
    return Lts.cycle(f"subscriber{index}-protocol", [f"deliver{index}"])


def verify_glue(glue: Lts, role_protocols: list[Lts]) -> DeadlockReport:
    """Compose glue with the role protocols and check deadlock freedom."""
    return check_compatibility([glue, *role_protocols], name=f"verify({glue.name})")

"""Simulated hosts.

A :class:`Node` models one hardware platform from the paper's deployment
concern: it has a CPU capacity, a fluctuating utilisation, named message
endpoints, and can crash and recover.  Load figures feed the geographical
reconfiguration planner ("host components on a less loaded hardware").
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.errors import CapacityError, NodeDownError
from repro.events import Simulator
from repro.netsim.message import Message

#: Signature of an endpoint handler: receives the delivering node and message.
EndpointHandler = Callable[["Node", Message], None]


class Node:
    """One simulated host.

    CPU accounting model: work is expressed in abstract *cpu units*; a node
    executes ``capacity`` units per time unit.  ``execution_time(work)``
    converts work to simulated delay, inflated by current utilisation so a
    loaded node runs visibly slower — the effect that motivates migration.

    ``__slots__``: hosts are the most numerous objects in a large
    topology, so they keep no per-instance dict.
    """

    __slots__ = (
        "name", "sim", "capacity", "region", "up", "_endpoints",
        "_background_load", "_reserved", "delivered_messages",
        "dropped_messages", "crash_count", "on_crash", "on_recover",
    )

    def __init__(
        self,
        name: str,
        sim: Simulator,
        capacity: float = 100.0,
        region: str = "default",
    ) -> None:
        if capacity <= 0:
            raise CapacityError(f"node capacity must be positive, got {capacity}")
        self.name = name
        self.sim = sim
        self.capacity = capacity
        self.region = region
        self.up = True
        self._endpoints: dict[str, EndpointHandler] = {}
        self._background_load = 0.0  # externally imposed utilisation in [0, 1)
        self._reserved = 0.0  # cpu units/time reserved by hosted components
        self.delivered_messages = 0
        self.dropped_messages = 0
        self.crash_count = 0
        self.on_crash: list[Callable[["Node"], None]] = []
        self.on_recover: list[Callable[["Node"], None]] = []

    # -- load accounting ---------------------------------------------------

    @property
    def background_load(self) -> float:
        return self._background_load

    def set_background_load(self, utilisation: float) -> None:
        """Impose external utilisation in [0, 1); drives load fluctuation."""
        self._background_load = min(max(utilisation, 0.0), 0.99)

    @property
    def reserved(self) -> float:
        return self._reserved

    def reserve(self, cpu_units: float) -> None:
        """Reserve steady-state capacity for a hosted component."""
        if self._reserved + cpu_units > self.capacity:
            raise CapacityError(
                f"node {self.name!r} cannot reserve {cpu_units} units: "
                f"{self._reserved}/{self.capacity} already reserved"
            )
        self._reserved += cpu_units

    def release(self, cpu_units: float) -> None:
        """Release previously reserved capacity."""
        self._reserved = max(0.0, self._reserved - cpu_units)

    @property
    def utilisation(self) -> float:
        """Effective utilisation in [0, 1): background plus reservations."""
        return min(0.99, self._background_load + self._reserved / self.capacity)

    def execution_time(self, work: float) -> float:
        """Simulated time to execute ``work`` cpu units at current load.

        An M/M/1-style inflation ``1 / (1 - utilisation)`` models queueing
        behind the existing load.
        """
        base = work / self.capacity
        return base / (1.0 - self.utilisation)

    # -- endpoints ----------------------------------------------------------

    def bind_endpoint(self, name: str, handler: EndpointHandler) -> None:
        """Expose a named message endpoint on this node."""
        self._endpoints[name] = handler

    def unbind_endpoint(self, name: str) -> None:
        self._endpoints.pop(name, None)

    def has_endpoint(self, name: str) -> bool:
        return name in self._endpoints

    def endpoints(self) -> Iterable[str]:
        return tuple(self._endpoints)

    def deliver(self, message: Message) -> None:
        """Deliver a message to the addressed endpoint.

        Raises :class:`NodeDownError` if the node is down; messages to
        unknown endpoints are counted as drops (the upper layer observes
        the absence of a reply, as it would in a real system).
        """
        if not self.up:
            raise NodeDownError(f"node {self.name!r} is down")
        handler = self._endpoints.get(message.endpoint)
        if handler is None:
            self.dropped_messages += 1
            return
        self.delivered_messages += 1
        handler(self, message)

    # -- failure -----------------------------------------------------------

    def crash(self) -> None:
        """Take the node down; hosted endpoints stop receiving."""
        if not self.up:
            return
        self.up = False
        self.crash_count += 1
        for callback in list(self.on_crash):
            callback(self)

    def recover(self) -> None:
        """Bring the node back up (endpoints remain bound)."""
        if self.up:
            return
        self.up = True
        for callback in list(self.on_recover):
            callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return f"Node({self.name!r}, {state}, util={self.utilisation:.2f})"


def least_loaded(nodes: Iterable[Node]) -> Node:
    """Return the live node with the lowest utilisation.

    Raises :class:`NodeDownError` when no node is up.
    """
    candidates = [node for node in nodes if node.up]
    if not candidates:
        raise NodeDownError("no live node available")
    return min(candidates, key=lambda node: (node.utilisation, node.name))

"""Network and host simulator (substrate S2).

Simulates the distributed infrastructure the paper's systems run on:
nodes with capacity and fluctuating load, links with latency/bandwidth/
loss, shortest-latency routing, failures and repairs.  This substitutes
for the real telecom networks and equipment the paper targets — the upper
layers observe the same signals (delay, loss, load, unreachability) a
real deployment would produce.
"""

from repro.netsim.failure import FailureEvent, FailureInjector
from repro.netsim.link import Link
from repro.netsim.message import (
    Message,
    MessageIdAllocator,
    current_allocator,
    reset_message_ids,
    use_allocator,
)
from repro.netsim.network import Network, NetworkStats
from repro.netsim.node import EndpointHandler, Node, least_loaded
from repro.netsim.partition import (
    Boundary,
    CompactPartition,
    Partition,
    RegionNetwork,
)
from repro.netsim.topology import datacenter, full_mesh, hosts, line, ring, star

__all__ = [
    "Boundary",
    "CompactPartition",
    "EndpointHandler",
    "FailureEvent",
    "FailureInjector",
    "Link",
    "Message",
    "MessageIdAllocator",
    "Network",
    "NetworkStats",
    "Node",
    "Partition",
    "RegionNetwork",
    "current_allocator",
    "datacenter",
    "full_mesh",
    "hosts",
    "least_loaded",
    "line",
    "reset_message_ids",
    "ring",
    "star",
    "use_allocator",
]

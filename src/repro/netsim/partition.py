"""Topology partitioning for sharded simulation.

The ADL-reconfiguration line of work argues the *architecture
description* should drive how a running system is split; here the
topology partition is that description: a :class:`Partition` assigns
every node to a region, declares the :class:`Boundary` links that cross
regions, and derives the **conservative lookahead** — the minimum
cross-region link latency — that :mod:`repro.parallel` uses as the safe
synchronization horizon (no message can cross a region boundary in less
simulated time than the slowest-safe bound, so regions may run
independently that far ahead).

:class:`RegionNetwork` is the per-region shard: a normal
:class:`~repro.netsim.network.Network` over the region's own nodes and
links, plus boundary handling — cross-region sends travel the local
topology to the boundary gateway, pay the boundary link's queueing,
transmission and propagation, and land in :attr:`RegionNetwork.outbox`
as plain tuples ready for a process pipe.  :meth:`RegionNetwork.ingress`
is the other half: it re-materializes an inbound tuple at its arrival
time and continues delivery over the local topology.
"""

from __future__ import annotations

import math
import sys
from bisect import bisect_left, insort
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

import networkx as nx

from repro.errors import LinkDownError, NetworkError
from repro.events import Simulator
from repro.netsim.message import Message
from repro.netsim.network import Network


@dataclass(frozen=True)
class Boundary:
    """A cross-region link between two gateway nodes.

    Boundary latency is the quantity that matters for correctness: the
    partition's lookahead is the minimum over all boundaries, so every
    boundary must have strictly positive latency.
    """

    a_region: int
    a_node: str
    b_region: int
    b_node: str
    latency: float
    bandwidth: float = 1_000_000.0
    loss: float = 0.0

    def gateway(self, region: int) -> str:
        """This boundary's gateway node inside ``region``."""
        if region == self.a_region:
            return self.a_node
        if region == self.b_region:
            return self.b_node
        raise NetworkError(f"boundary {self} does not touch region {region}")

    def peer(self, region: int) -> tuple[int, str]:
        """(remote region, remote gateway) as seen from ``region``."""
        if region == self.a_region:
            return self.b_region, self.b_node
        if region == self.b_region:
            return self.a_region, self.a_node
        raise NetworkError(f"boundary {self} does not touch region {region}")


class Partition:
    """Assignment of topology nodes to regions plus the boundary links.

    The partition is plain data (dicts and tuples) so it pickles across
    process boundaries; every worker holds the same copy and can answer
    ``region_of`` for any node in the whole topology without owning it.
    """

    def __init__(self, regions: int) -> None:
        if regions < 1:
            raise NetworkError(f"partition needs >= 1 region, got {regions}")
        self.regions = regions
        self._node_region: dict[str, int] = {}
        self.boundaries: list[Boundary] = []
        self._next_hop: dict[tuple[int, int], Boundary] | None = None
        self._distances: dict[tuple[int, int], float] | None = None

    # -- building ----------------------------------------------------------

    def assign(self, node: str, region: int) -> None:
        """Place ``node`` in ``region``."""
        if not 0 <= region < self.regions:
            raise NetworkError(
                f"region {region} out of range 0..{self.regions - 1}")
        existing = self._node_region.get(node)
        if existing is not None and existing != region:
            raise NetworkError(
                f"node {node!r} already assigned to region {existing}")
        self._node_region[sys.intern(node)] = region

    def assign_many(self, nodes: Iterable[str], region: int) -> None:
        for node in nodes:
            self.assign(node, region)

    def add_boundary(self, a_node: str, b_node: str, *,
                     latency: float, bandwidth: float = 1_000_000.0,
                     loss: float = 0.0) -> Boundary:
        """Declare a cross-region link between two already-assigned nodes."""
        if latency <= 0:
            raise NetworkError(
                f"boundary latency must be > 0 (it is the lookahead), "
                f"got {latency}")
        a_region = self.region_of(a_node)
        b_region = self.region_of(b_node)
        if a_region == b_region:
            raise NetworkError(
                f"boundary {a_node!r}<->{b_node!r} does not cross regions "
                f"(both in region {a_region})")
        boundary = Boundary(a_region, a_node, b_region, b_node,
                            latency, bandwidth, loss)
        self.boundaries.append(boundary)
        self._next_hop = None
        self._distances = None
        return boundary

    # -- queries -----------------------------------------------------------

    def region_of(self, node: str) -> int:
        try:
            return self._node_region[node]
        except KeyError:
            raise NetworkError(f"node {node!r} not assigned to any region") \
                from None

    def nodes_in(self, region: int) -> list[str]:
        return sorted(node for node, r in self._node_region.items()
                      if r == region)

    @property
    def lookahead(self) -> float:
        """The conservative horizon: minimum boundary latency.

        Any message created before time ``t`` cannot arrive in another
        region before ``t + lookahead``, so regions may safely run
        ``lookahead`` ahead of each other between barriers.
        """
        if not self.boundaries:
            raise NetworkError(
                "partition has no boundaries; lookahead is undefined")
        return min(boundary.latency for boundary in self.boundaries)

    def next_hop(self, src_region: int, dst_region: int) -> Boundary:
        """First boundary on the min-latency region-level route."""
        if self._next_hop is None:
            self._build_next_hops()
        try:
            return self._next_hop[(src_region, dst_region)]
        except KeyError:
            raise NetworkError(
                f"no boundary route from region {src_region} "
                f"to region {dst_region}") from None

    def region_distance(self, src_region: int, dst_region: int) -> float:
        """Minimum total boundary latency between two regions.

        ``math.inf`` when unreachable, ``0.0`` on the diagonal.  This is
        the triangle-inequality bound the coordinator's overlapped
        exchange relies on: a message egressing region ``s`` at time
        ``t`` cannot be injected into region ``r`` before
        ``t + region_distance(s, r)``.
        """
        if src_region == dst_region:
            return 0.0
        if self._distances is None:
            self._build_next_hops()
        return self._distances.get((src_region, dst_region), math.inf)

    def _build_next_hops(self) -> None:
        graph = nx.Graph()
        graph.add_nodes_from(range(self.regions))
        best: dict[tuple[int, int], Boundary] = {}
        for boundary in self.boundaries:
            key = (min(boundary.a_region, boundary.b_region),
                   max(boundary.a_region, boundary.b_region))
            current = best.get(key)
            if current is None or boundary.latency < current.latency:
                best[key] = boundary
        for (a, b), boundary in best.items():
            graph.add_edge(a, b, weight=boundary.latency, boundary=boundary)
        table: dict[tuple[int, int], Boundary] = {}
        distances: dict[tuple[int, int], float] = {}
        paths = dict(nx.all_pairs_dijkstra_path(graph, weight="weight"))
        lengths = dict(nx.all_pairs_dijkstra_path_length(
            graph, weight="weight"))
        for src, targets in paths.items():
            for dst, path in targets.items():
                if src == dst or len(path) < 2:
                    continue
                table[(src, dst)] = graph.edges[path[0], path[1]]["boundary"]
                distances[(src, dst)] = lengths[src][dst]
        self._next_hop = table
        self._distances = distances

    def validate(self) -> None:
        """Check every region is populated and boundaries are consistent."""
        populated = {region for region in self._node_region.values()}
        missing = set(range(self.regions)) - populated
        if missing:
            raise NetworkError(f"regions {sorted(missing)} have no nodes")
        if self.regions > 1:
            self._build_next_hops()
            for src in range(self.regions):
                for dst in range(self.regions):
                    if src != dst and (src, dst) not in (self._next_hop or {}):
                        raise NetworkError(
                            f"region {dst} unreachable from region {src}")


class CompactPartition(Partition):
    """A partition whose node→region map is a *formula*, not a dict.

    A million-node topology cannot afford a million-entry assignment
    dict in every worker process (the partition is pickled to each one).
    A :class:`CompactPartition` answers :meth:`region_of` through a
    ``resolver`` callable — typically a small picklable object that
    parses the region out of systematic node names (``n3_1417`` → region
    3) — and keeps the explicit dict only for the handful of nodes the
    resolver declines (returns ``None`` for).  Memory is O(explicit
    overrides + boundaries), independent of node count.

    The resolver must be deterministic and picklable (a module-level
    function or an instance of a module-level class, not a lambda).
    """

    def __init__(self, regions: int,
                 resolver: Callable[[str], int | None]) -> None:
        super().__init__(regions)
        self._resolver = resolver

    def region_of(self, node: str) -> int:
        explicit = self._node_region.get(node)
        if explicit is not None:
            return explicit
        region = self._resolver(node)
        if region is None:
            raise NetworkError(
                f"node {node!r} not assigned to any region")
        if not 0 <= region < self.regions:
            raise NetworkError(
                f"resolver mapped {node!r} to region {region}, out of "
                f"range 0..{self.regions - 1}")
        return region

    def nodes_in(self, region: int) -> list[str]:
        """Only the *explicitly* assigned nodes: a formula-backed
        partition cannot enumerate its full population."""
        return super().nodes_in(region)

    def validate(self) -> None:
        """Check boundary connectivity only; population is the
        resolver's contract (it cannot be enumerated here)."""
        if self.regions > 1:
            self._build_next_hops()
            for src in range(self.regions):
                for dst in range(self.regions):
                    if src != dst and (src, dst) not in (self._next_hop or {}):
                        raise NetworkError(
                            f"region {dst} unreachable from region {src}")


class RegionNetwork(Network):
    """One region's shard of a partitioned topology.

    Local traffic behaves exactly like a plain :class:`Network`.  A
    message addressed to a remote node travels the local topology to the
    boundary gateway, pays the boundary link (queueing + transmission +
    propagation, with deterministic loss from this region's seeded rng),
    and is appended to :attr:`outbox` as one plain tuple::

        ("msg", origin_region, to_region, entry_node, arrival_time, seq,
         source, destination, endpoint, payload, size, headers, sent_at,
         origin_msg_id)

    The coordinator moves outbox tuples across process pipes and the
    destination region's :meth:`ingress` continues delivery at
    ``arrival_time``.  ``seq`` is the tuple's position in this region's
    outbox for the round — part of the deterministic merge order.
    """

    def __init__(self, sim: Simulator, partition: Partition, region: int,
                 seed: int = 0) -> None:
        super().__init__(sim, seed=seed)
        self.partition = partition
        self.region = region
        #: Cross-region tuples produced since last drained (plain data).
        self.outbox: list[tuple] = []
        self.forwarded_out = 0
        self.ingressed = 0
        self._outbox_seq = 0
        #: Messages currently travelling the cross path inside this
        #: region (sent remote or transiting), not yet egressed/dropped.
        self.cross_in_flight = 0
        # Declared cross-send schedule (sorted absolute times) for the
        # sharper egress-floor promise; None = no declaration.
        self._cross_times: list[float] | None = None
        self._cross_idx = 0

    # -- egress-floor promise ----------------------------------------------

    def declare_cross_sends(self, times: Iterable[float]) -> None:
        """Declare the absolute times at which this region's *workload*
        will originate cross-region sends.

        Opt-in sharpening of :meth:`egress_floor`: a scenario whose
        handlers never emit undeclared cross-region traffic (replies,
        retries) can promise the coordinator that no boundary egress will
        happen before the next declared send — even while millions of
        purely local events are pending.  Declaring and then cross-sending
        off-schedule would let remote regions run past a message's
        arrival, so the contract is on the scenario builder.
        """
        incoming = sorted(times)
        if self._cross_times is None:
            self._cross_times = incoming
        else:
            pending = self._cross_times[self._cross_idx:]
            for when in incoming:
                insort(pending, when)
            self._cross_times = pending
            self._cross_idx = 0

    def egress_floor(self) -> float:
        """Earliest simulated time this region could still produce a
        boundary egress, given only its current internal state
        (``math.inf`` when it provably cannot).

        Without a declared cross-send schedule the floor is the next
        pending event's time — sound for arbitrary handlers, since any
        egress happens inside an event.  With a declaration the floor is
        the earlier of the next declared send and — only while a cross
        message is already in flight inside the region — the next event
        time; pending *local* events no longer pin the floor, which is
        what lets adaptive lookahead widen horizons far past the per-hop
        event cadence.

        Future injections from other regions are deliberately excluded:
        the coordinator bounds those with its own held-tuple and
        region-distance terms.
        """
        if self._cross_times is None:
            return self.sim.next_event_time()
        now = self.sim.now
        times = self._cross_times
        idx = bisect_left(times, now, self._cross_idx)
        self._cross_idx = idx
        floor = times[idx] if idx < len(times) else math.inf
        if self.cross_in_flight:
            floor = min(floor, self.sim.next_event_time())
        return floor

    # -- topology guard ----------------------------------------------------

    def add_node(self, name: str, capacity: float = 100.0,
                 region: str = "default") -> Any:
        owner = self.partition.region_of(name)
        if owner != self.region:
            raise NetworkError(
                f"node {name!r} belongs to region {owner}, not {self.region}")
        return super().add_node(name, capacity=capacity, region=region)

    # -- sending -----------------------------------------------------------

    def send(self, message: Message) -> None:
        """Local destinations delegate to :class:`Network`; remote ones
        take the boundary path."""
        if self.partition.region_of(message.destination) == self.region:
            super().send(message)
            return
        message.sent_at = self.sim.now
        self.stats.sent += 1
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled \
                and tracer.sample("net.msg"):
            message.trace_span = tracer.begin_flow(
                "net.msg",
                f"{message.source}->{message.destination}/{message.endpoint}",
                msg_id=message.msg_id, size=message.size,
            )
        self._notify("send", message)
        source = self.nodes.get(message.source)
        if source is None or not source.up:
            self._drop(message, "node_down")
            return
        self.in_flight += 1
        self.cross_in_flight += 1
        self._cross_forward(message, message.source)

    # -- boundary path -----------------------------------------------------

    def _cross_forward(self, message: Message, position: str) -> None:
        """Route ``message`` from ``position`` to the boundary gateway
        toward its destination's region, then egress."""
        dst_region = self.partition.region_of(message.destination)
        try:
            boundary = self.partition.next_hop(self.region, dst_region)
        except NetworkError:
            self.in_flight -= 1
            self.cross_in_flight -= 1
            self._drop(message, "no_route")
            return
        gateway = boundary.gateway(self.region)
        if position == gateway:
            self._egress(message, boundary)
            return
        try:
            path = self.route(position, gateway)
        except NetworkError:
            self.in_flight -= 1
            self.cross_in_flight -= 1
            self._drop(message, "no_route")
            return
        self._forward_leg(message, path, 0, boundary)

    def _forward_leg(self, message: Message, path: list[str],
                     hop_index: int, boundary: Boundary) -> None:
        """Advance one hop toward the gateway; egress on arrival there.

        Mirrors :meth:`Network._forward` (queueing behind earlier traffic
        in the link direction, transmission, propagation, loss) but the
        leg's terminus is the boundary gateway, not a local endpoint.
        """
        if hop_index >= len(path) - 1:
            self._egress(message, boundary)
            return
        here, there = path[hop_index], path[hop_index + 1]
        try:
            link = self.link_between(here, there)
            link.transfer_time(message.size)  # validates the link is up
        except LinkDownError:
            self.in_flight -= 1
            self.cross_in_flight -= 1
            self._drop(message, "link_down")
            return
        if link.loss and self.rng.random() < link.loss:
            link.dropped_messages += 1
            self.in_flight -= 1
            self.cross_in_flight -= 1
            self._drop(message, "loss")
            return
        size = message.size
        link.transferred_messages += 1
        link.transferred_bytes += size
        transmitter = (link.key, here)
        now = self.sim.now
        free_at = self._transmitter_free_at
        start = max(now, free_at.get(transmitter, 0.0))
        transmission = size / link.bandwidth
        free_at[transmitter] = start + transmission
        delay = (start - now) + transmission + link.latency
        span = message.trace_span
        if span is not None:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "net.hop", f"{here}->{there}", now, now + delay,
                    parent_id=span.span_id,
                    msg_id=message.msg_id,
                    queued=round(start - now, 9),
                    transmission=round(transmission, 9),
                    propagation=link.latency,
                )
        self.sim.schedule(self._forward_leg, message, path, hop_index + 1,
                          boundary, delay=delay)

    def _egress(self, message: Message, boundary: Boundary) -> None:
        """Pay the boundary link and append the pipe tuple to the outbox."""
        gateway = boundary.gateway(self.region)
        to_region, entry_node = boundary.peer(self.region)
        if boundary.loss and self.rng.random() < boundary.loss:
            self.in_flight -= 1
            self.cross_in_flight -= 1
            self._drop(message, "loss")
            return
        now = self.sim.now
        key = ((gateway, entry_node) if gateway <= entry_node
               else (entry_node, gateway))
        transmitter = (key, gateway)
        free_at = self._transmitter_free_at
        start = max(now, free_at.get(transmitter, 0.0))
        transmission = message.size / boundary.bandwidth
        free_at[transmitter] = start + transmission
        arrival = start + transmission + boundary.latency
        span = message.trace_span
        if span is not None:
            message.trace_span = None
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "net.hop", f"{gateway}->{entry_node}", now, arrival,
                    parent_id=span.span_id,
                    msg_id=message.msg_id,
                    queued=round(start - now, 9),
                    transmission=round(transmission, 9),
                    propagation=boundary.latency,
                )
                tracer.end_flow(span, outcome=f"egress:r{to_region}")
        seq = self._outbox_seq
        self._outbox_seq = seq + 1
        origin = message.headers.get("x-origin",
                                     (self.region, message.msg_id))
        self.outbox.append((
            "msg", self.region, to_region, entry_node, arrival, seq,
            message.source, message.destination, message.endpoint,
            message.payload, message.size, dict(message.headers),
            message.sent_at, origin,
        ))
        self.forwarded_out += 1
        self.in_flight -= 1
        self.cross_in_flight -= 1
        self._notify(f"egress:r{to_region}", message)

    # -- receiving ---------------------------------------------------------

    def ingress(self, record: tuple) -> None:
        """Continue delivery of an inbound boundary tuple.

        Must run *at* the tuple's arrival time (the worker schedules it
        there); the message re-materializes on this region's side of the
        boundary and either delivers locally or takes the next boundary.
        """
        (_, origin_region, to_region, entry_node, _arrival, _seq,
         source, destination, endpoint, payload, size, headers,
         sent_at, origin) = record
        if to_region != self.region:
            raise NetworkError(
                f"region {self.region} received a tuple for region "
                f"{to_region}")
        message = Message(source=source, destination=destination,
                          endpoint=endpoint, payload=payload, size=size,
                          headers=dict(headers))
        message.sent_at = sent_at
        message.headers["x-origin"] = tuple(origin)
        self.ingressed += 1
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled \
                and tracer.sample("net.msg"):
            message.trace_span = tracer.begin_flow(
                "net.msg",
                f"{source}->{destination}/{endpoint}@r{self.region}",
                msg_id=message.msg_id, size=size,
                origin=f"r{origin[0]}#{origin[1]}",
            )
        self._notify("ingress", message)
        if self.partition.region_of(destination) != self.region:
            self.in_flight += 1
            self.cross_in_flight += 1
            self._cross_forward(message, entry_node)
            return
        self.in_flight += 1
        if entry_node == destination:
            self._arrive(message)
            return
        try:
            path = self.route(entry_node, destination)
        except NetworkError:
            self.in_flight -= 1
            self._drop(message, "no_route")
            return
        self._forward(message, path, 0)

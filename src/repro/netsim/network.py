"""The simulated network: nodes, links, routing and delivery.

:class:`Network` owns the topology and moves :class:`Message` objects
between nodes over multi-hop shortest-latency routes.  Delivery takes
simulated time (per-hop propagation + transmission) and may fail (link
loss, node crash); the upper layers observe exactly what a real
distributed system would: delay, loss and unreachability.
"""

from __future__ import annotations

import random
import sys
from typing import Callable, Iterable

import networkx as nx

from repro.errors import LinkDownError, NetworkError, NodeDownError
from repro.events import Simulator
from repro.netsim.link import Link
from repro.netsim.message import Message
from repro.netsim.node import Node


class NetworkStats:
    """Aggregate counters for one network instance."""

    def __init__(self) -> None:
        self.sent = 0
        self.delivered = 0
        self.dropped_loss = 0
        self.dropped_link_down = 0
        self.dropped_node_down = 0
        self.dropped_no_route = 0
        self.total_latency = 0.0
        self.total_bytes = 0

    @property
    def dropped(self) -> int:
        return (
            self.dropped_loss
            + self.dropped_link_down
            + self.dropped_node_down
            + self.dropped_no_route
        )

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.delivered if self.delivered else 0.0

    def snapshot(self) -> dict[str, float]:
        return {
            "sent": self.sent,
            "delivered": self.delivered,
            "dropped": self.dropped,
            "mean_latency": self.mean_latency,
            "total_bytes": self.total_bytes,
        }


class Network:
    """A topology of nodes and links with latency-aware routing.

    Routes are shortest paths by current link latency, recomputed lazily
    whenever the topology or link states change.
    """

    def __init__(self, sim: Simulator, seed: int = 0) -> None:
        self.sim = sim
        self.rng = random.Random(seed)
        self.nodes: dict[str, Node] = {}
        self.links: dict[tuple[str, str], Link] = {}
        self.stats = NetworkStats()
        self._graph_dirty = True
        self._graph = nx.Graph()
        # Shortest-path cache, invalidated with the graph: message
        # delivery is a per-event caller, so repeated sends between the
        # same pair must not pay Dijkstra every time.  ``None`` caches a
        # negative result (no route) until the topology changes.
        self._route_cache: dict[tuple[str, str], list[str] | None] = {}
        # Path intern table: distinct (source, destination) pairs whose
        # shortest paths coincide (every leaf->hub route in a star, the
        # shared trunk of a datacenter) cache ONE list object, so the
        # route cache grows with unique paths, not unique pairs.
        self._path_intern: dict[tuple[str, ...], list[str]] = {}
        self.in_flight = 0
        # Per-direction transmitter occupancy: concurrent messages on the
        # same link direction serialize behind each other (full-duplex
        # links: the two directions are independent transmitters).
        self._transmitter_free_at: dict[tuple[tuple[str, str], str], float] = {}
        #: Observers called as fn(event_name, message) on send/deliver/drop.
        self.taps: list[Callable[[str, Message], None]] = []

    # -- topology -----------------------------------------------------------

    def add_node(
        self, name: str, capacity: float = 100.0, region: str = "default"
    ) -> Node:
        """Create and register a node."""
        if name in self.nodes:
            raise NetworkError(f"node {name!r} already exists")
        # Interned names: node names recur as dict keys, link endpoints,
        # route entries and message addresses; one string object each.
        name = sys.intern(name)
        node = Node(name, self.sim, capacity=capacity, region=region)
        self.nodes[name] = node
        self._graph_dirty = True
        return node

    def add_link(
        self,
        a: str,
        b: str,
        latency: float = 0.001,
        bandwidth: float = 1_000_000.0,
        loss: float = 0.0,
    ) -> Link:
        """Create and register a bidirectional link between two nodes."""
        for name in (a, b):
            if name not in self.nodes:
                raise NetworkError(f"cannot link unknown node {name!r}")
        if a == b:
            raise NetworkError(f"cannot link node {a!r} to itself")
        link = Link(a, b, latency=latency, bandwidth=bandwidth, loss=loss)
        if link.key in self.links:
            raise NetworkError(f"link {link.key} already exists")
        self.links[link.key] = link
        self._graph_dirty = True
        return link

    def remove_link(self, a: str, b: str) -> Link:
        """Remove the a-b link from the topology.

        Unlike a failure (:meth:`Link.fail`), the link is gone for good;
        routes through it are recomputed on the next lookup.
        """
        key = (a, b) if a <= b else (b, a)
        try:
            link = self.links.pop(key)
        except KeyError:
            raise LinkDownError(f"no link between {a!r} and {b!r}") from None
        self._graph_dirty = True
        return link

    def node(self, name: str) -> Node:
        try:
            return self.nodes[name]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def link_between(self, a: str, b: str) -> Link:
        key = (a, b) if a <= b else (b, a)
        try:
            return self.links[key]
        except KeyError:
            raise LinkDownError(f"no link between {a!r} and {b!r}") from None

    def invalidate_routes(self) -> None:
        """Force route recomputation (call after link failures/repairs)."""
        self._graph_dirty = True

    def _rebuild_graph(self) -> None:
        graph = nx.Graph()
        for name, node in self.nodes.items():
            if node.up:
                graph.add_node(name)
        for link in self.links.values():
            if link.up and link.a in graph and link.b in graph:
                graph.add_edge(link.a, link.b, weight=link.latency)
        self._graph = graph
        self._graph_dirty = False
        self._route_cache.clear()
        self._path_intern.clear()

    def route(self, source: str, destination: str) -> list[str]:
        """Shortest-latency node path, inclusive of both ends.

        Paths are cached until the topology or link states change.
        Raises :class:`NetworkError` when no route exists.
        """
        if self._graph_dirty:
            self._rebuild_graph()
        if source == destination:
            return [source]
        key = (source, destination)
        cache = self._route_cache
        path = cache.get(key, False)
        if path is False:
            try:
                path = nx.shortest_path(
                    self._graph, source, destination, weight="weight"
                )
            except (nx.NetworkXNoPath, nx.NodeNotFound):
                path = None
            if path is not None:
                path = self._path_intern.setdefault(tuple(path), path)
            cache[key] = path
        if path is None:
            raise NetworkError(
                f"no route from {source!r} to {destination!r}"
            )
        return path

    # -- delivery -----------------------------------------------------------

    def send(self, message: Message) -> None:
        """Inject a message; it is delivered (or dropped) asynchronously."""
        message.sent_at = self.sim.now
        self.stats.sent += 1
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled \
                and tracer.sample("net.msg"):
            # Message lineage root: hops attach as children, so an
            # end-to-end latency decomposes into per-link segments.  The
            # head decision comes first so an unsampled message never
            # pays for the name or the args dict.
            message.trace_span = tracer.begin_flow(
                "net.msg",
                f"{message.source}->{message.destination}/{message.endpoint}",
                msg_id=message.msg_id, size=message.size,
            )
        self._notify("send", message)
        source = self.nodes.get(message.source)
        if source is None or not source.up:
            self._drop(message, "node_down")
            return
        try:
            path = self.route(message.source, message.destination)
        except NetworkError:
            self._drop(message, "no_route")
            return
        self.in_flight += 1
        self._forward(message, path, hop_index=0)

    def _forward(self, message: Message, path: list[str], hop_index: int) -> None:
        """Advance a message one hop along its precomputed path."""
        if hop_index >= len(path) - 1:
            self._arrive(message)
            return
        here, there = path[hop_index], path[hop_index + 1]
        try:
            link = self.link_between(here, there)
            link.transfer_time(message.size)  # validates the link is up
        except LinkDownError:
            self.in_flight -= 1
            self._drop(message, "link_down")
            return
        if link.loss and self.rng.random() < link.loss:
            link.dropped_messages += 1
            self.in_flight -= 1
            self._drop(message, "loss")
            return
        size = message.size
        link.transferred_messages += 1
        link.transferred_bytes += size
        # Serialize behind earlier traffic in this direction, then pay
        # transmission + propagation.
        transmitter = (link.key, here)
        now = self.sim.now
        free_at = self._transmitter_free_at
        start = max(now, free_at.get(transmitter, 0.0))
        transmission = size / link.bandwidth
        free_at[transmitter] = start + transmission
        delay = (start - now) + transmission + link.latency
        span = message.trace_span
        if span is not None:
            # The hop's in-flight window is fully known here: queueing
            # behind earlier traffic, then transmission, then propagation.
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit(
                    "net.hop", f"{here}->{there}", now, now + delay,
                    parent_id=span.span_id,
                    msg_id=message.msg_id,
                    queued=round(start - now, 9),
                    transmission=round(transmission, 9),
                    propagation=link.latency,
                )
        self.sim.schedule(self._forward, message, path, hop_index + 1, delay=delay)

    def _arrive(self, message: Message) -> None:
        self.in_flight -= 1
        node = self.nodes.get(message.destination)
        if node is None or not node.up:
            self._drop(message, "node_down")
            return
        self.stats.delivered += 1
        self.stats.total_latency += self.sim.now - message.sent_at
        self.stats.total_bytes += message.size
        self._notify("deliver", message)
        try:
            node.deliver(message)
        except NodeDownError:
            # Node crashed between the liveness check and delivery.
            self.stats.delivered -= 1
            self._drop(message, "node_down")
            return
        span = message.trace_span
        if span is not None:
            message.trace_span = None
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.end_flow(
                    span, outcome="delivered",
                    latency=round(self.sim.now - message.sent_at, 9),
                )

    def _drop(self, message: Message, reason: str) -> None:
        counter = f"dropped_{reason}"
        setattr(self.stats, counter, getattr(self.stats, counter) + 1)
        span = message.trace_span
        if span is not None:
            message.trace_span = None
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.end_flow(span, outcome=f"drop:{reason}")
                tracer.count(f"net.{counter}")
        self._notify(f"drop:{reason}", message)

    def _notify(self, event: str, message: Message) -> None:
        if not self.taps:
            return
        for tap in self.taps:
            tap(event, message)

    # -- convenience --------------------------------------------------------

    def live_nodes(self) -> Iterable[Node]:
        return [node for node in self.nodes.values() if node.up]

    def utilisation_map(self) -> dict[str, float]:
        """Current utilisation per live node — the RAML observation feed."""
        return {name: n.utilisation for name, n in self.nodes.items() if n.up}

"""Topology builders.

Canonical shapes used by the examples and benchmarks.  All builders take a
:class:`~repro.events.Simulator` and return a populated
:class:`~repro.netsim.network.Network`.
"""

from __future__ import annotations

from repro.errors import NetworkError
from repro.events import Simulator
from repro.netsim.network import Network


def star(
    sim: Simulator,
    leaves: int = 4,
    hub_capacity: float = 400.0,
    leaf_capacity: float = 100.0,
    latency: float = 0.002,
    bandwidth: float = 1_000_000.0,
    seed: int = 0,
) -> Network:
    """A hub node ``hub`` with ``leaves`` leaf nodes ``leaf0..leafN-1``."""
    if leaves < 1:
        raise NetworkError("star topology needs at least one leaf")
    net = Network(sim, seed=seed)
    net.add_node("hub", capacity=hub_capacity)
    for i in range(leaves):
        name = f"leaf{i}"
        net.add_node(name, capacity=leaf_capacity)
        net.add_link("hub", name, latency=latency, bandwidth=bandwidth)
    return net


def line(
    sim: Simulator,
    length: int = 4,
    capacity: float = 100.0,
    latency: float = 0.002,
    bandwidth: float = 1_000_000.0,
    seed: int = 0,
) -> Network:
    """Nodes ``n0 - n1 - ... - n(length-1)`` in a chain."""
    if length < 2:
        raise NetworkError("line topology needs at least two nodes")
    net = Network(sim, seed=seed)
    for i in range(length):
        net.add_node(f"n{i}", capacity=capacity)
    for i in range(length - 1):
        net.add_link(f"n{i}", f"n{i + 1}", latency=latency, bandwidth=bandwidth)
    return net


def ring(
    sim: Simulator,
    size: int = 5,
    capacity: float = 100.0,
    latency: float = 0.002,
    bandwidth: float = 1_000_000.0,
    seed: int = 0,
) -> Network:
    """Nodes ``n0..n(size-1)`` connected in a cycle."""
    if size < 3:
        raise NetworkError("ring topology needs at least three nodes")
    net = Network(sim, seed=seed)
    for i in range(size):
        net.add_node(f"n{i}", capacity=capacity)
    for i in range(size):
        net.add_link(f"n{i}", f"n{(i + 1) % size}", latency=latency, bandwidth=bandwidth)
    return net


def full_mesh(
    sim: Simulator,
    size: int = 4,
    capacity: float = 100.0,
    latency: float = 0.002,
    bandwidth: float = 1_000_000.0,
    seed: int = 0,
) -> Network:
    """Every node linked to every other node."""
    if size < 2:
        raise NetworkError("mesh topology needs at least two nodes")
    net = Network(sim, seed=seed)
    for i in range(size):
        net.add_node(f"n{i}", capacity=capacity)
    for i in range(size):
        for j in range(i + 1, size):
            net.add_link(f"n{i}", f"n{j}", latency=latency, bandwidth=bandwidth)
    return net


def datacenter(
    sim: Simulator,
    racks: int = 2,
    hosts_per_rack: int = 4,
    host_capacity: float = 100.0,
    rack_latency: float = 0.0005,
    core_latency: float = 0.002,
    bandwidth: float = 10_000_000.0,
    seed: int = 0,
) -> Network:
    """Two-tier datacenter: core switch, rack switches, hosts.

    Switch nodes (``core``, ``rackN``) have tiny capacity and are not meant
    to host components; hosts are named ``rackN-hostM``.
    """
    if racks < 1 or hosts_per_rack < 1:
        raise NetworkError("datacenter needs at least one rack and host")
    net = Network(sim, seed=seed)
    net.add_node("core", capacity=1.0, region="switch")
    for r in range(racks):
        rack = f"rack{r}"
        net.add_node(rack, capacity=1.0, region="switch")
        net.add_link("core", rack, latency=core_latency, bandwidth=bandwidth)
        for h in range(hosts_per_rack):
            host = f"{rack}-host{h}"
            net.add_node(host, capacity=host_capacity, region=rack)
            net.add_link(rack, host, latency=rack_latency, bandwidth=bandwidth)
    return net


def hosts(net: Network) -> list[str]:
    """Names of nodes meant to host components (excludes switches)."""
    return [
        name
        for name, node in net.nodes.items()
        if node.region != "switch"
    ]

"""Network messages and message-id allocation.

A :class:`Message` is the unit the simulated network transfers between
nodes.  It carries an opaque payload plus headers used by the upper layers
(middleware request ids, reconfiguration sequence numbers, QoS tags).

Message ids come from a :class:`MessageIdAllocator`.  There is a
process-default allocator (so plain single-simulator code needs no
setup), but any scope that must number messages independently of
everything else running in the process — a region shard of a partitioned
run, a test that compares traces — installs its own allocator with
:func:`use_allocator` and restores the previous one when done.  The old
:func:`reset_message_ids` global restart is deprecated: it only works
when every run in the process resets in a disciplined order, which
million-node sharded runs cannot guarantee.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Any


class MessageIdAllocator:
    """A scoped message-id counter.

    Plain mutable state instead of :func:`itertools.count` so a holder
    (e.g. a region runtime) can read, save and restore the cursor, and
    so two allocators never share position by accident.

    Args:
        start: first id to hand out.
        stride: distance between consecutive ids (1 for dense local
            numbering; region shards use stride 1 inside a strided
            namespace carved out by ``start``).
    """

    __slots__ = ("next_id", "stride")

    def __init__(self, start: int = 1, stride: int = 1) -> None:
        self.next_id = start
        self.stride = stride

    def allocate(self) -> int:
        """Consume and return the next id."""
        value = self.next_id
        self.next_id = value + self.stride
        return value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MessageIdAllocator(next={self.next_id}, stride={self.stride})"


#: The process-default allocator plain code allocates from.
_default_allocator = MessageIdAllocator(1)
#: The currently installed allocator (module global read per allocation).
_allocator = _default_allocator


def current_allocator() -> MessageIdAllocator:
    """The allocator new messages currently draw ids from."""
    return _allocator


def use_allocator(allocator: MessageIdAllocator | None
                  ) -> MessageIdAllocator:
    """Install ``allocator`` as the active id source; returns the
    previously active one so callers can restore it.

    Passing ``None`` reinstalls the process-default allocator.
    """
    global _allocator
    previous = _allocator
    _allocator = allocator if allocator is not None else _default_allocator
    return previous


def reset_message_ids(start: int = 1) -> None:
    """Restart the *default* message-id counter (deprecated).

    Deprecated in favour of scoped allocators: create a
    :class:`MessageIdAllocator` and install it with
    :func:`use_allocator` around the run that must be byte-for-byte
    comparable, instead of relying on every run in the process calling
    the global reset in the right order.
    """
    warnings.warn(
        "reset_message_ids() is deprecated; install a scoped "
        "MessageIdAllocator with use_allocator() instead "
        "(see docs/API.md)",
        DeprecationWarning, stacklevel=2)
    global _allocator
    _default_allocator.next_id = start
    _default_allocator.stride = 1
    _allocator = _default_allocator


def _next_message_id() -> int:
    return _allocator.allocate()


@dataclass(slots=True)
class Message:
    """A message in flight between two nodes.

    ``slots=True``: a million-message run keeps no per-instance dicts —
    the hot state is a fixed record.

    Attributes:
        source: name of the sending node.
        destination: name of the receiving node.
        endpoint: logical endpoint on the destination node that should
            receive the message (e.g. an object adapter).
        payload: opaque application data.
        size: size in bytes; drives transmission delay over links.
        headers: free-form metadata for the upper layers.
        msg_id: unique id, assigned at construction from the active
            :class:`MessageIdAllocator`.
        sent_at: simulated time the message entered the network.
        trace_span: telemetry flow span carried across hops/retries while
            the message is in flight (None unless tracing is enabled).
    """

    source: str
    destination: str
    endpoint: str
    payload: Any = None
    size: int = 256
    headers: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=_next_message_id)
    sent_at: float = 0.0
    trace_span: Any = field(default=None, repr=False, compare=False)

    def reply_to(self, payload: Any = None, size: int = 256) -> "Message":
        """Build a response message with source/destination swapped."""
        reply = Message(
            source=self.destination,
            destination=self.source,
            endpoint=self.headers.get("reply_endpoint", self.endpoint),
            payload=payload,
            size=size,
        )
        reply.headers["in_reply_to"] = self.msg_id
        if "request_id" in self.headers:
            reply.headers["request_id"] = self.headers["request_id"]
        return reply

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message(#{self.msg_id} {self.source}->{self.destination}"
            f"/{self.endpoint}, {self.size}B)"
        )

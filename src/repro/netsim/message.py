"""Network messages.

A :class:`Message` is the unit the simulated network transfers between
nodes.  It carries an opaque payload plus headers used by the upper layers
(middleware request ids, reconfiguration sequence numbers, QoS tags).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any

_message_ids = itertools.count(1)


def reset_message_ids(start: int = 1) -> None:
    """Restart the global message-id counter.

    Message ids are process-global, so two otherwise identical runs in
    one process would number their messages differently — and telemetry
    traces embed ids, breaking trace-checksum reproducibility.  Call this
    before each run that must be byte-for-byte comparable.
    """
    global _message_ids
    _message_ids = itertools.count(start)


@dataclass
class Message:
    """A message in flight between two nodes.

    Attributes:
        source: name of the sending node.
        destination: name of the receiving node.
        endpoint: logical endpoint on the destination node that should
            receive the message (e.g. an object adapter).
        payload: opaque application data.
        size: size in bytes; drives transmission delay over links.
        headers: free-form metadata for the upper layers.
        msg_id: globally unique id, assigned at construction.
        sent_at: simulated time the message entered the network.
        trace_span: telemetry flow span carried across hops/retries while
            the message is in flight (None unless tracing is enabled).
    """

    source: str
    destination: str
    endpoint: str
    payload: Any = None
    size: int = 256
    headers: dict[str, Any] = field(default_factory=dict)
    msg_id: int = field(default_factory=lambda: next(_message_ids))
    sent_at: float = 0.0
    trace_span: Any = field(default=None, repr=False, compare=False)

    def reply_to(self, payload: Any = None, size: int = 256) -> "Message":
        """Build a response message with source/destination swapped."""
        reply = Message(
            source=self.destination,
            destination=self.source,
            endpoint=self.headers.get("reply_endpoint", self.endpoint),
            payload=payload,
            size=size,
        )
        reply.headers["in_reply_to"] = self.msg_id
        if "request_id" in self.headers:
            reply.headers["request_id"] = self.headers["request_id"]
        return reply

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Message(#{self.msg_id} {self.source}->{self.destination}"
            f"/{self.endpoint}, {self.size}B)"
        )

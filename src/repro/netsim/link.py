"""Simulated network links.

A :class:`Link` connects two nodes with a propagation latency, a bandwidth
and a loss probability, all of which can fluctuate at run time — the
"fluctuation of available resources" the paper's adaptation loop reacts to.
"""

from __future__ import annotations

from repro.errors import LinkDownError


class Link:
    """A bidirectional point-to-point link.

    Attributes:
        latency: propagation delay in simulated time units.
        bandwidth: bytes per simulated time unit.
        loss: per-traversal drop probability in [0, 1].

    ``__slots__``: links scale with topology size, so they keep no
    per-instance dict.
    """

    __slots__ = (
        "a", "b", "latency", "bandwidth", "loss", "up",
        "transferred_bytes", "transferred_messages", "dropped_messages",
    )

    def __init__(
        self,
        a: str,
        b: str,
        latency: float = 0.001,
        bandwidth: float = 1_000_000.0,
        loss: float = 0.0,
    ) -> None:
        if latency < 0:
            raise LinkDownError(f"link latency must be >= 0, got {latency}")
        if bandwidth <= 0:
            raise LinkDownError(f"link bandwidth must be > 0, got {bandwidth}")
        self.a = a
        self.b = b
        self.latency = latency
        self.bandwidth = bandwidth
        self.loss = min(max(loss, 0.0), 1.0)
        self.up = True
        self.transferred_bytes = 0
        self.transferred_messages = 0
        self.dropped_messages = 0

    @property
    def key(self) -> tuple[str, str]:
        """Canonical (sorted) endpoint pair used as the map key."""
        return (self.a, self.b) if self.a <= self.b else (self.b, self.a)

    def connects(self, node_name: str) -> bool:
        return node_name in (self.a, self.b)

    def other(self, node_name: str) -> str:
        """The peer of ``node_name`` on this link."""
        if node_name == self.a:
            return self.b
        if node_name == self.b:
            return self.a
        raise LinkDownError(f"link {self.key} does not connect {node_name!r}")

    def transfer_time(self, size: int) -> float:
        """Total time for ``size`` bytes: propagation plus transmission."""
        if not self.up:
            raise LinkDownError(f"link {self.key} is down")
        return self.latency + size / self.bandwidth

    def set_quality(
        self,
        latency: float | None = None,
        bandwidth: float | None = None,
        loss: float | None = None,
    ) -> None:
        """Adjust link characteristics; used by fluctuation workloads."""
        if latency is not None:
            if latency < 0:
                raise LinkDownError(f"link latency must be >= 0, got {latency}")
            self.latency = latency
        if bandwidth is not None:
            if bandwidth <= 0:
                raise LinkDownError(f"link bandwidth must be > 0, got {bandwidth}")
            self.bandwidth = bandwidth
        if loss is not None:
            self.loss = min(max(loss, 0.0), 1.0)

    def fail(self) -> None:
        self.up = False

    def restore(self) -> None:
        self.up = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return (
            f"Link({self.a}<->{self.b}, {state}, lat={self.latency}, "
            f"bw={self.bandwidth}, loss={self.loss})"
        )

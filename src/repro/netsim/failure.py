"""Failure injection.

Schedules node crashes/recoveries and link flaps on the simulated network.
Used by the fault-tolerance examples and by tests that assert the
reconfiguration engine survives infrastructure failures.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.netsim.network import Network


@dataclass
class FailureEvent:
    """One scheduled failure or repair, recorded for post-run inspection."""

    time: float
    kind: str  # "node_crash" | "node_recover" | "link_fail" | "link_restore"
    target: str


class FailureInjector:
    """Deterministic, seeded failure schedule over a network."""

    def __init__(self, network: Network, seed: int = 0) -> None:
        self.network = network
        self.rng = random.Random(seed)
        self.log: list[FailureEvent] = []

    # -- explicit schedules --------------------------------------------------

    def crash_node(self, name: str, at: float, recover_after: float | None = None) -> None:
        """Crash ``name`` at time ``at``; optionally recover later."""
        self.network.sim.at(self._crash, name, when=at)
        if recover_after is not None:
            self.network.sim.at(self._recover, name, when=at + recover_after)

    def flap_link(self, a: str, b: str, at: float, down_for: float) -> None:
        """Take the a-b link down at ``at`` and restore it ``down_for`` later."""
        self.network.sim.at(self._link_fail, a, b, when=at)
        self.network.sim.at(self._link_restore, a, b, when=at + down_for)

    # -- random schedules ------------------------------------------------------

    def random_node_crashes(
        self,
        horizon: float,
        rate: float,
        recover_after: float,
        candidates: list[str] | None = None,
    ) -> int:
        """Schedule Poisson-ish node crashes up to ``horizon``.

        Returns the number of crashes scheduled.
        """
        names = candidates if candidates is not None else list(self.network.nodes)
        # Draw the whole schedule first, then bulk-insert: one heapify
        # instead of per-crash pushes.  The (time, seq) order of the
        # batch is identical to the per-call ``sim.at`` sequence.
        items: list[tuple[float, object, tuple]] = []
        t = self.rng.expovariate(rate) if rate > 0 else horizon + 1
        while t < horizon:
            victim = self.rng.choice(names)
            items.append((t, self._crash, (victim,)))
            items.append((t + recover_after, self._recover, (victim,)))
            t += self.rng.expovariate(rate)
        self.network.sim.schedule_many(items, absolute=True)
        return len(items) // 2

    def random_link_flaps(
        self,
        horizon: float,
        rate: float,
        down_for: float,
    ) -> int:
        """Schedule random link flaps up to ``horizon``; returns the count."""
        keys = list(self.network.links)
        if not keys:
            return 0
        items: list[tuple[float, object, tuple]] = []
        t = self.rng.expovariate(rate) if rate > 0 else horizon + 1
        while t < horizon:
            a, b = self.rng.choice(keys)
            items.append((t, self._link_fail, (a, b)))
            items.append((t + down_for, self._link_restore, (a, b)))
            t += self.rng.expovariate(rate)
        self.network.sim.schedule_many(items, absolute=True)
        return len(items) // 2

    # -- internals ---------------------------------------------------------

    def _record(self, kind: str, target: str) -> None:
        self.log.append(FailureEvent(self.network.sim.now, kind, target))

    def _crash(self, name: str) -> None:
        self.network.node(name).crash()
        self.network.invalidate_routes()
        self._record("node_crash", name)

    def _recover(self, name: str) -> None:
        self.network.node(name).recover()
        self.network.invalidate_routes()
        self._record("node_recover", name)

    def _link_fail(self, a: str, b: str) -> None:
        self.network.link_between(a, b).fail()
        self.network.invalidate_routes()
        self._record("link_fail", f"{a}<->{b}")

    def _link_restore(self, a: str, b: str) -> None:
        self.network.link_between(a, b).restore()
        self.network.invalidate_routes()
        self._record("link_restore", f"{a}<->{b}")

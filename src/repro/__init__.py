"""repro — an auto-adaptive systems (AAS) platform.

A full implementation of the vision in Aksit & Choukair, *Dynamic,
Adaptive and Reconfigurable Systems — Overview and Prospective Vision*
(ICDCSW 2003): a component platform with first-class connectors, a
dynamic reconfiguration engine with quiescence and transactional
rollback, the ten lightweight adaptation mechanisms the paper surveys,
QoS contracts under feedback/intelligent control, and the RAML
meta-level tying them together with introspection and intercession —
all running on a deterministic discrete-event network simulator.

Quick start::

    from repro import Simulator, star, Assembly, Raml

    sim = Simulator()
    assembly = Assembly(star(sim, leaves=2))
    ...  # deploy components, wire bindings/connectors
    raml = Raml(assembly).instrument().start()
    sim.run(until=60.0)
"""

from repro.adl import build_architecture, parse_adl
from repro.adaptation import AdaptationManager, AdaptationPolicy
from repro.connectors import (
    Connector,
    ConnectorFactory,
    ConnectorSpec,
    EventBusConnector,
    FailoverConnector,
    LoadBalancerConnector,
    PipelineConnector,
    RpcConnector,
)
from repro.control import ControlLoop, FuzzyController, PidController
from repro.core import Raml, Response
from repro.events import Simulator
from repro.kernel import (
    Assembly,
    Binding,
    Component,
    Container,
    DeploymentDescriptor,
    Interface,
    Invocation,
    Operation,
    Registry,
    Version,
    bind,
)
from repro.lts import Lts, check_compatibility
from repro.netsim import (
    Network,
    Partition,
    datacenter,
    full_mesh,
    line,
    ring,
    star,
)
from repro.parallel import ParallelSimulation
from repro.qos import MetricRegistry, QosContract, QosMonitor
from repro.reconfig import (
    MigrateComponent,
    MigrationPlanner,
    ReconfigurationTransaction,
    ReplaceComponent,
    RewireBinding,
)
from repro.strategy import Strategy, StrategySelector, StrategySlot
from repro import telemetry

__version__ = "1.0.0"

__all__ = [
    "AdaptationManager",
    "AdaptationPolicy",
    "Assembly",
    "Binding",
    "Component",
    "Connector",
    "ConnectorFactory",
    "ConnectorSpec",
    "Container",
    "ControlLoop",
    "DeploymentDescriptor",
    "EventBusConnector",
    "FailoverConnector",
    "FuzzyController",
    "Interface",
    "Invocation",
    "LoadBalancerConnector",
    "Lts",
    "MetricRegistry",
    "MigrateComponent",
    "MigrationPlanner",
    "Network",
    "Operation",
    "ParallelSimulation",
    "Partition",
    "PidController",
    "PipelineConnector",
    "QosContract",
    "QosMonitor",
    "Raml",
    "ReconfigurationTransaction",
    "Registry",
    "ReplaceComponent",
    "Response",
    "RewireBinding",
    "RpcConnector",
    "Simulator",
    "Strategy",
    "StrategySelector",
    "StrategySlot",
    "Version",
    "bind",
    "build_architecture",
    "check_compatibility",
    "datacenter",
    "full_mesh",
    "line",
    "parse_adl",
    "ring",
    "star",
    "telemetry",
]

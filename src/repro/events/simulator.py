"""Deterministic discrete-event simulation kernel.

The simulator is a priority queue of timestamped events.  Determinism is
essential for reproducible benchmarks: events with equal timestamps are
ordered by (priority, insertion sequence), so two runs with the same seed
interleave identically.

Performance notes (the whole platform runs on this hot path):

* Heap entries are plain ``(time, priority, seq, event)`` tuples.  ``seq``
  is unique, so tuple comparison never falls through to the event object
  and no rich-comparison dispatch happens during heap sifts.
* :class:`Event` is a ``__slots__`` record — no per-instance dict.
* A live-event counter makes :attr:`Simulator.pending_events` O(1).
* Cancellation stays lazy (O(1)), but cancelled garbage no longer
  accumulates forever: when it outnumbers live events the queue is
  compacted in place (see :meth:`Simulator.compact`).
* :meth:`Simulator.schedule_many` bulk-inserts a batch of events with a
  single heapify instead of per-event pushes.
* Instrumentation is opt-in: :meth:`Simulator.set_hooks` installs a
  callback object observing schedule/fire/cancel (see
  :mod:`repro.telemetry`).  With no hooks installed the only cost is one
  ``is not None`` branch per operation, so the disabled path stays on the
  fast-path budget.
* Instrumentation is *sampled* inline: hooks carry an integer ``skip``
  gap the scheduling fast path counts down — an unsampled event pays one
  decrement at schedule time and one ``traced`` flag check at fire time,
  never a hook call or a ``perf_counter`` read.  A gap of zero (the
  telemetry default) traces every event.

Scheduling surface (canonical shapes, all returning :class:`Event`)::

    sim = Simulator()
    sim.schedule(callback, *args, delay=1.5)     # relative
    sim.schedule(callback, *args, at=42.0)       # absolute
    sim.at(callback, *args, when=42.0)           # absolute (sugar)
    sim.call_soon(callback, *args)               # now, after same-time peers
    sim.schedule_many([(1.5, callback), ...])    # bulk, one heapify
    sim.run()

The pre-unification positional shapes ``schedule(delay, callback, ...)``
and ``at(time, callback, ...)`` keep working behind a
``DeprecationWarning`` (see the migration note in ``docs/API.md``).
"""

from __future__ import annotations

import heapq
import math
import warnings
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

from repro.errors import ClockError

#: Default priority for events; lower numbers fire first at equal times.
DEFAULT_PRIORITY = 0

#: Compaction trigger: the queue is rebuilt once more than this many
#: cancelled entries are queued *and* they outnumber the live ones.
COMPACT_MIN_GARBAGE = 64


class Event:
    """A scheduled callback.

    Events are ordered by ``(time, priority, seq)`` which gives a total,
    deterministic order.  ``seq`` is an insertion counter assigned by the
    simulator.  The ordering key lives in the heap entry tuple, not on
    the event itself, so events never need rich comparison.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "cancelled",
                 "traced", "_sim")

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: tuple = (),
        sim: "Simulator | None" = None,
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        # Sampled instrumentation: set by the scheduling fast path when
        # this event won the sampling draw; untraced events skip every
        # hook call and timing read on the fire path.
        self.traced = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the event from firing; cheap (lazy deletion)."""
        if self.cancelled:
            return
        self.cancelled = True
        sim = self._sim
        if sim is not None:
            self._sim = None
            if self.traced:
                hooks = sim._hooks
                if hooks is not None:
                    hooks.event_cancelled(self)
            sim._note_cancelled()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Event(time={self.time}, priority={self.priority}, "
            f"seq={self.seq}, cancelled={self.cancelled})"
        )


class Simulator:
    """Event loop with a simulated clock.

    The clock only advances when :meth:`run` or :meth:`step` executes
    events; scheduling is side-effect free until then.
    """

    def __init__(self) -> None:
        self._queue: list[tuple[float, int, int, Event]] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._executed = 0
        self._live = 0  # queued, non-cancelled events
        self._garbage = 0  # queued, cancelled events awaiting compaction/pop
        self._compactions = 0
        #: Instrumentation callbacks (see :meth:`set_hooks`); None = free.
        self._hooks: Any = None
        #: The session tracer, if telemetry is installed (duck-typed so the
        #: kernel never imports repro.telemetry).  Subsystems read this.
        self.tracer: Any = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (telemetry)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of queued, non-cancelled events — O(1) counter."""
        return self._live

    @property
    def cancelled_pending(self) -> int:
        """Queued cancelled entries not yet reclaimed (telemetry)."""
        return self._garbage

    @property
    def queue_size(self) -> int:
        """Physical heap size, live + cancelled garbage (telemetry)."""
        return len(self._queue)

    @property
    def compactions(self) -> int:
        """How many times the queue has been compacted (telemetry)."""
        return self._compactions

    # -- instrumentation ---------------------------------------------------

    def set_hooks(self, hooks: Any) -> None:
        """Install (or with ``None`` remove) kernel instrumentation.

        ``hooks`` must expose ``event_scheduled(event)``,
        ``event_begin(event)``, ``event_end(event, wall_seconds)``,
        ``event_cancelled(event)``, ``timer_tick(timer)`` and an integer
        ``skip`` attribute: the number of upcoming schedules the loop
        drops *inline* (one decrement each, no call) before the next
        sampled event.  ``event_scheduled`` fires only for sampled
        events — it marks them via ``event.traced`` having been set by
        the loop — and should replenish ``skip`` with the next gap
        (keep it 0 to trace everything).  ``event_begin`` / ``event_end``
        / ``event_cancelled`` fire only for traced events.  Only one
        hook object can be installed; :mod:`repro.telemetry` multiplexes
        if more consumers are needed.
        """
        self._hooks = hooks

    @property
    def hooks(self) -> Any:
        return self._hooks

    # -- scheduling -------------------------------------------------------

    def _schedule_at(self, time: float, callback: Callable[..., Any],
                     args: tuple, priority: int) -> Event:
        """Shared push path: validate the time, enqueue, run sampling."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule at t={time}, clock is already at t={self._now}"
            )
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, priority, seq, callback, args, self)
        self._live += 1
        heapq.heappush(self._queue, (time, priority, seq, event))
        hooks = self._hooks
        if hooks is not None:
            # Sampled instrumentation: count down the gap inline so an
            # unsampled schedule costs one decrement, not a call.
            gap = hooks.skip
            if gap:
                hooks.skip = gap - 1
            else:
                event.traced = True
                hooks.event_scheduled(event)
        return event

    def schedule(
        self,
        callback: Callable[..., Any] | float,
        *args: Any,
        delay: float | None = None,
        at: float | None = None,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)``; the unified scheduling front door.

        Exactly one of the keyword times applies:

        * ``delay=`` — relative: fire ``delay`` time units from now
          (default ``0.0``, i.e. :meth:`call_soon` semantics);
        * ``at=`` — absolute simulated time.

        Returns the :class:`Event` handle (cancellable).  The legacy
        positional shape ``schedule(delay, callback, *args)`` still
        works behind a :class:`DeprecationWarning`.
        """
        if callable(callback):
            if at is None:
                if delay is None:
                    return self._schedule_at(self._now, callback, args, priority)
                if delay < 0:
                    raise ClockError(
                        f"cannot schedule {delay} time units in the past")
                return self._schedule_at(self._now + delay, callback, args,
                                         priority)
            if delay is not None:
                raise TypeError(
                    "schedule() takes either delay= or at=, not both")
            return self._schedule_at(at, callback, args, priority)
        # Legacy shape: schedule(delay, callback, *args).
        warnings.warn(
            "Simulator.schedule(delay, callback, ...) is deprecated; "
            "use schedule(callback, ..., delay=...) "
            "(see docs/API.md, scheduling-API migration note)",
            DeprecationWarning, stacklevel=2)
        if delay is not None or at is not None or not args:
            raise TypeError("schedule() first argument must be callable")
        legacy_delay = callback
        if legacy_delay < 0:
            raise ClockError(
                f"cannot schedule {legacy_delay} time units in the past")
        return self._schedule_at(self._now + legacy_delay, args[0], args[1:],
                                 priority)

    def at(
        self,
        callback: Callable[..., Any] | float,
        *args: Any,
        when: float | None = None,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated time ``when``.

        Returns the :class:`Event` handle.  The legacy positional shape
        ``at(time, callback, *args)`` still works behind a
        :class:`DeprecationWarning`.
        """
        if callable(callback):
            if when is None:
                raise TypeError("at() requires the when= keyword")
            return self._schedule_at(when, callback, args, priority)
        # Legacy shape: at(time, callback, *args).
        warnings.warn(
            "Simulator.at(time, callback, ...) is deprecated; "
            "use at(callback, ..., when=...) "
            "(see docs/API.md, scheduling-API migration note)",
            DeprecationWarning, stacklevel=2)
        if when is not None or not args:
            raise TypeError("at() first argument must be callable")
        return self._schedule_at(callback, args[0], args[1:], priority)

    def call_soon(
        self,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` at the current time (after pending same-time
        events).  Returns the :class:`Event` handle."""
        return self._schedule_at(self._now, callback, args, priority)

    def schedule_many(
        self,
        items: Iterable[Sequence],
        *,
        absolute: bool = False,
        priority: int = DEFAULT_PRIORITY,
    ) -> list[Event]:
        """Bulk-insert a batch of events with a single heapify.

        Each item is ``(delay, callback)``, ``(delay, callback, args)`` or
        ``(delay, callback, args, priority)``; with ``absolute=True`` the
        first element is an absolute simulated time instead of a delay.
        Sequence numbers are assigned in iteration order, so the batch
        interleaves exactly as the equivalent sequence of
        :meth:`schedule` / :meth:`at` calls would.

        Returns the created events, in input order.
        """
        now = self._now
        seq = self._seq
        events: list[Event] = []
        entries: list[tuple[float, int, int, Event]] = []
        for item in items:
            when = item[0] if absolute else now + item[0]
            callback = item[1]
            args = tuple(item[2]) if len(item) > 2 else ()
            prio = item[3] if len(item) > 3 else priority
            if when < now:
                raise ClockError(
                    f"cannot schedule at t={when}, clock is already at t={now}"
                )
            event = Event(when, prio, seq, callback, args, self)
            entries.append((when, prio, seq, event))
            events.append(event)
            seq += 1
        self._seq = seq
        if not entries:
            return events
        queue = self._queue
        if len(entries) * 8 >= len(queue):
            # Batch is large relative to the heap: one O(n+m) heapify
            # beats m O(log n) sift-ups.
            queue.extend(entries)
            heapq.heapify(queue)
        else:
            push = heapq.heappush
            for entry in entries:
                push(queue, entry)
        self._live += len(entries)
        hooks = self._hooks
        if hooks is not None:
            for event in events:
                gap = hooks.skip
                if gap:
                    hooks.skip = gap - 1
                else:
                    event.traced = True
                    hooks.event_scheduled(event)
        return events

    def next_event_time(self) -> float:
        """Simulated time of the earliest pending event, ``math.inf`` if
        the queue is empty.

        Pure with respect to live events, but pops cancelled garbage off
        the heap top while peeking (the entries would be discarded by the
        next :meth:`step` anyway).  This is the kernel-level *promise*
        primitive: nothing can happen in this simulator — in particular
        no boundary egress — before this time.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            if entry[3].cancelled:
                heapq.heappop(queue)
                self._garbage -= 1
                continue
            return entry[0]
        return math.inf

    # -- cancellation bookkeeping ----------------------------------------

    def _note_cancelled(self) -> None:
        self._live -= 1
        self._garbage += 1
        if self._garbage > COMPACT_MIN_GARBAGE and self._garbage > self._live:
            self.compact()

    def compact(self) -> int:
        """Drop cancelled entries from the heap; returns how many were removed.

        Runs automatically once cancelled garbage outnumbers live events
        (so `PeriodicTimer.stop()` churn cannot leak memory), but can be
        called explicitly after a large cancellation wave.
        """
        queue = self._queue
        before = len(queue)
        queue[:] = [entry for entry in queue if not entry[3].cancelled]
        heapq.heapify(queue)
        self._garbage = 0
        removed = before - len(queue)
        if removed:
            self._compactions += 1
        return removed

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        queue = self._queue
        while queue:
            entry = heapq.heappop(queue)
            event = entry[3]
            if event.cancelled:
                self._garbage -= 1
                continue
            self._live -= 1
            event._sim = None
            self._now = entry[0]
            self._executed += 1
            hooks = self._hooks
            if hooks is None or not event.traced:
                event.callback(*event.args)
            else:
                hooks.event_begin(event)
                start = perf_counter()
                try:
                    event.callback(*event.args)
                finally:
                    hooks.event_end(event, perf_counter() - start)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None,
            inclusive: bool = True) -> float:
        """Run events in order.

        Args:
            until: stop once the clock would pass this time (the clock is
                left at ``until`` if events remain beyond it).
            max_events: safety valve for runaway simulations.
            inclusive: with the default True, events at exactly ``until``
                still fire.  ``inclusive=False`` makes ``until`` an
                *exclusive horizon*: only events strictly before it run
                and the clock is left at ``until``.  This is the
                conservative-lookahead contract :mod:`repro.parallel`
                relies on — events at the horizon stay queued so
                cross-region messages arriving exactly at the horizon
                still interleave deterministically with them.

        Returns:
            The simulated time at which the run stopped.
        """
        if self._running:
            raise ClockError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        exclusive = not inclusive
        queue = self._queue
        pop = heapq.heappop
        try:
            while queue:
                if max_events is not None and executed >= max_events:
                    break
                head_time = queue[0][0]
                if until is not None and (
                        head_time > until
                        or (exclusive and head_time == until)):
                    self._now = until
                    break
                entry = pop(queue)
                event = entry[3]
                if event.cancelled:
                    self._garbage -= 1
                    continue
                self._live -= 1
                event._sim = None
                self._now = entry[0]
                self._executed += 1
                executed += 1
                hooks = self._hooks
                if hooks is None or not event.traced:
                    event.callback(*event.args)
                else:
                    hooks.event_begin(event)
                    start = perf_counter()
                    try:
                        event.callback(*event.args)
                    finally:
                        hooks.event_end(event, perf_counter() - start)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        for entry in self._queue:
            entry[3]._sim = None
        self._queue.clear()
        self._now = 0.0
        self._seq = 0
        self._executed = 0
        self._live = 0
        self._garbage = 0
        self._compactions = 0

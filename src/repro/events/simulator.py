"""Deterministic discrete-event simulation kernel.

The simulator is a priority queue of timestamped events.  Determinism is
essential for reproducible benchmarks: events with equal timestamps are
ordered by (priority, insertion sequence), so two runs with the same seed
interleave identically.

Typical use::

    sim = Simulator()
    sim.schedule(1.5, lambda: print("fires at t=1.5"))
    sim.run()
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ClockError

#: Default priority for events; lower numbers fire first at equal times.
DEFAULT_PRIORITY = 0


@dataclass(order=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, priority, seq)`` which gives a total,
    deterministic order.  ``seq`` is an insertion counter assigned by the
    simulator.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[..., Any] = field(compare=False)
    args: tuple = field(compare=False, default=())
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Prevent the event from firing; cheap (lazy deletion)."""
        self.cancelled = True


class Simulator:
    """Event loop with a simulated clock.

    The clock only advances when :meth:`run` or :meth:`step` executes
    events; scheduling is side-effect free until then.
    """

    def __init__(self) -> None:
        self._queue: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        self._executed = 0

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def executed_events(self) -> int:
        """Number of events executed so far (telemetry)."""
        return self._executed

    @property
    def pending_events(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for event in self._queue if not event.cancelled)

    # -- scheduling -------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ClockError(f"cannot schedule {delay} time units in the past")
        return self.at(self._now + delay, callback, *args, priority=priority)

    def at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise ClockError(
                f"cannot schedule at t={time}, clock is already at t={self._now}"
            )
        event = Event(time, priority, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def call_soon(
        self,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = DEFAULT_PRIORITY,
    ) -> Event:
        """Schedule ``callback`` at the current time (after pending same-time events)."""
        return self.at(self._now, callback, *args, priority=priority)

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            self._executed += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> float:
        """Run events in order.

        Args:
            until: stop once the clock would pass this time (the clock is
                left at ``until`` if events remain beyond it).
            max_events: safety valve for runaway simulations.

        Returns:
            The simulated time at which the run stopped.
        """
        if self._running:
            raise ClockError("simulator is already running (re-entrant run())")
        self._running = True
        executed = 0
        try:
            while self._queue:
                if max_events is not None and executed >= max_events:
                    break
                head = self._queue[0]
                if head.cancelled:
                    heapq.heappop(self._queue)
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                heapq.heappop(self._queue)
                self._now = head.time
                self._executed += 1
                executed += 1
                head.callback(*head.args)
            else:
                if until is not None and until > self._now:
                    self._now = until
        finally:
            self._running = False
        return self._now

    def reset(self) -> None:
        """Drop all pending events and rewind the clock to zero."""
        self._queue.clear()
        self._now = 0.0
        self._seq = 0
        self._executed = 0

"""Discrete-event simulation kernel (substrate S1).

Deterministic event queue, simulated clock, generator-based processes and
timers.  Everything in the repro platform that "takes time" is scheduled
through this package, which makes whole-system runs reproducible.
"""

from repro.events.process import Delay, Process, Signal, Wait, all_of, spawn
from repro.events.simulator import DEFAULT_PRIORITY, Event, Simulator
from repro.events.timers import PeriodicTimer, Timer

__all__ = [
    "DEFAULT_PRIORITY",
    "Delay",
    "Event",
    "PeriodicTimer",
    "Process",
    "Signal",
    "Simulator",
    "Timer",
    "Wait",
    "all_of",
    "spawn",
]

"""One-shot and periodic timers on top of the simulator.

Periodic timers are the backbone of the paper's "periodical measurements
on the evolving infrastructure": QoS monitors, RAML observation sweeps and
load samplers are all periodic timers.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ClockError
from repro.events.simulator import Event, Simulator


class Timer:
    """A cancellable one-shot timer."""

    def __init__(
        self,
        sim: Simulator,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
    ) -> None:
        self.sim = sim
        self.callback = callback
        self.args = args
        self.fired = False
        self._event: Event = sim.schedule(self._fire, delay=delay)

    def _fire(self) -> None:
        self.fired = True
        self.callback(*self.args)

    def cancel(self) -> None:
        """Cancel the timer if it has not fired yet."""
        if not self.fired:
            self._event.cancel()

    @property
    def active(self) -> bool:
        return not self.fired and not self._event.cancelled


class PeriodicTimer:
    """Fires ``callback`` every ``period`` time units until stopped.

    The first firing happens after one full period (matching sampling
    monitors, which need an interval before the first measurement).
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[..., Any],
        *args: Any,
        jitter: float = 0.0,
        rng: Any = None,
        name: str | None = None,
    ) -> None:
        if period <= 0:
            raise ClockError(f"periodic timer period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.callback = callback
        self.args = args
        self.jitter = jitter
        self.rng = rng
        #: Attribution label for telemetry; defaults to the callback name.
        self.name = name or "timer:" + getattr(
            callback, "__qualname__", type(callback).__name__
        )
        self.tick_count = 0
        self._stopped = False
        self._in_tick = False
        self._event: Event | None = None
        self._schedule_next()

    def _next_delay(self) -> float:
        if self.jitter and self.rng is not None:
            return max(1e-9, self.period + self.rng.uniform(-self.jitter, self.jitter))
        return self.period

    def _schedule_next(self) -> None:
        if self._stopped:
            return
        self._event = self.sim.schedule(self._tick, delay=self._next_delay())

    def _tick(self) -> None:
        if self._stopped:
            return
        self.tick_count += 1
        # getattr, not attribute: the bench suite drives timers against
        # seed-shaped simulator stand-ins that predate instrumentation.
        hooks = getattr(self.sim, "_hooks", None)
        if hooks is not None:
            hooks.timer_tick(self)
        self._in_tick = True
        try:
            self.callback(*self.args)
        finally:
            self._in_tick = False
        self._schedule_next()

    def stop(self) -> None:
        """Stop the timer permanently."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    def set_period(self, period: float, *, reschedule_pending: bool = True) -> None:
        """Change the period.

        By default the already-scheduled next tick is *rescheduled* onto
        the new period: a tick pending at ``last + old_period`` moves to
        ``last + new_period`` (clamped to the current time if that is
        already past; any jitter offset drawn for the pending tick is
        preserved).  Pass ``reschedule_pending=False`` for the legacy
        behaviour where the in-flight tick still fires on the old period
        and the new period only applies from the following tick.
        """
        if period <= 0:
            raise ClockError(f"periodic timer period must be positive, got {period}")
        old_period = self.period
        self.period = period
        if not reschedule_pending or self._stopped or self._in_tick:
            # Inside the callback the next tick is not scheduled yet, so
            # the new period naturally applies to it — nothing to move.
            return
        event = self._event
        if event is None or event.cancelled:
            return
        target = event.time - old_period + period
        now = self.sim.now
        if target < now:
            target = now
        event.cancel()
        self._event = self.sim.at(self._tick, when=target)

    @property
    def running(self) -> bool:
        return not self._stopped

"""Generator-based simulated processes.

A :class:`Process` wraps a Python generator that yields *commands*:

* ``Delay(t)`` — suspend for ``t`` simulated time units.
* ``Wait(signal)`` — suspend until the signal fires; the fired value is
  sent back into the generator.

Processes are the idiomatic way to express sequential behaviour (client
sessions, periodic monitors, failure schedules) on top of the event queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Generator, Iterable

from repro.errors import ProcessError
from repro.events.simulator import Simulator


@dataclass(frozen=True)
class Delay:
    """Suspend the process for ``duration`` simulated time units."""

    duration: float


class Signal:
    """A broadcast condition processes can wait on.

    ``fire(value)`` resumes every waiter, delivering ``value`` as the
    result of their ``yield Wait(signal)`` expression.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._waiters: list[Callable[[Any], None]] = []
        self.fire_count = 0
        self.last_value: Any = None

    def subscribe(self, resume: Callable[[Any], None]) -> None:
        self._waiters.append(resume)

    def fire(self, value: Any = None) -> int:
        """Resume all current waiters; returns how many were resumed."""
        self.fire_count += 1
        self.last_value = value
        waiters, self._waiters = self._waiters, []
        for resume in waiters:
            resume(value)
        return len(waiters)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Signal({self.name!r}, waiters={len(self._waiters)})"


@dataclass(frozen=True)
class Wait:
    """Suspend the process until ``signal`` fires."""

    signal: Signal


ProcessBody = Generator[Any, Any, Any]


class Process:
    """A resumable simulated activity driven by the simulator.

    The process starts on the next event-loop iteration after creation
    (use :func:`spawn`) and runs until its generator is exhausted or it
    raises.  ``result`` holds the generator's return value afterwards.
    """

    def __init__(self, sim: Simulator, body: ProcessBody, name: str = "") -> None:
        self.sim = sim
        self.name = name or getattr(body, "__name__", "process")
        self._body = body
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        self.finished = Signal(f"{self.name}.finished")

    def start(self) -> "Process":
        """Schedule the first resumption at the current time."""
        self.sim.call_soon(self._resume, None)
        return self

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        try:
            command = self._body.send(value)
        except StopIteration as stop:
            self._finish(stop.value, None)
            return
        except Exception as exc:  # noqa: BLE001 - propagated via .error
            self._finish(None, exc)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, Delay):
            self.sim.schedule(self._resume, None, delay=command.duration)
        elif isinstance(command, Wait):
            command.signal.subscribe(self._resume)
        elif command is None:
            # Bare ``yield`` — reschedule immediately (cooperative yield).
            self.sim.call_soon(self._resume, None)
        else:
            self._finish(
                None,
                ProcessError(
                    f"process {self.name!r} yielded unknown command {command!r}"
                ),
            )

    def _finish(self, result: Any, error: BaseException | None) -> None:
        self.done = True
        self.result = result
        self.error = error
        self.finished.fire(result)
        if error is not None and not isinstance(error, ProcessError):
            raise error

    def interrupt(self) -> None:
        """Stop the process; pending resumptions become no-ops."""
        self.done = True
        self.finished.fire(None)


def spawn(sim: Simulator, body: ProcessBody, name: str = "") -> Process:
    """Create and start a process in one call."""
    return Process(sim, body, name=name).start()


def all_of(sim: Simulator, processes: Iterable[Process]) -> Signal:
    """Return a signal that fires once every given process has finished."""
    processes = list(processes)
    done_signal = Signal("all_of")
    remaining = len(processes)
    if remaining == 0:
        sim.call_soon(done_signal.fire, None)
        return done_signal

    def one_done(_value: Any) -> None:
        nonlocal remaining
        remaining -= 1
        if remaining == 0:
            done_signal.fire(None)

    for process in processes:
        if process.done:
            one_done(None)
        else:
            process.finished.subscribe(one_done)
    return done_signal

"""Filter sets: ordered stacks of composition filters.

A :class:`FilterSet` compiles to a single interceptor, so it can be
attached to provided ports (input filters), required ports (output
filters) or connectors — and detached again at run time, which is the
composition-filters route to dynamic adaptability: "filters can be
dynamically attached to or removed from the components".
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import FilterError
from repro.kernel.component import Invocation
from repro.filters.filter import Filter


class FilterSet:
    """An ordered sequence of filters evaluated first-to-last.

    "Sequencing filters may require specific order in case filters change
    the content of the messages" — order is explicit and mutable.
    """

    def __init__(self, name: str, filters: list[Filter] | None = None) -> None:
        self.name = name
        self.filters: list[Filter] = list(filters or [])
        self._attached: list[Any] = []  # ports/connectors we are attached to

    # -- composition ------------------------------------------------------

    def append(self, filter_: Filter) -> "FilterSet":
        self.filters.append(filter_)
        return self

    def insert(self, index: int, filter_: Filter) -> "FilterSet":
        self.filters.insert(index, filter_)
        return self

    def remove(self, name: str) -> Filter:
        for filter_ in self.filters:
            if filter_.name == name:
                self.filters.remove(filter_)
                return filter_
        raise FilterError(f"filter set {self.name!r} has no filter {name!r}")

    def reorder(self, names: list[str]) -> None:
        """Reorder filters to match ``names`` exactly."""
        by_name = {f.name: f for f in self.filters}
        if sorted(names) != sorted(by_name):
            raise FilterError(
                f"reorder of {self.name!r} must mention each filter exactly "
                f"once; have {sorted(by_name)}, got {sorted(names)}"
            )
        self.filters = [by_name[name] for name in names]

    def __len__(self) -> int:
        return len(self.filters)

    def __contains__(self, name: str) -> bool:
        return any(f.name == name for f in self.filters)

    # -- execution ----------------------------------------------------------

    def interceptor(self) -> Callable[[Invocation, Callable], Any]:
        """Compile the filter stack into one interceptor."""

        def run(invocation: Invocation, proceed: Callable[[Invocation], Any],
                _position: int = 0) -> Any:
            if _position < len(self.filters):
                return self.filters[_position].apply(
                    invocation,
                    lambda inner: run(inner, proceed, _position + 1),
                )
            return proceed(invocation)

        run.filter_set = self  # type: ignore[attr-defined]
        return run

    # -- dynamic attachment -------------------------------------------------------

    def attach_to(self, port_or_connector: Any) -> None:
        """Attach this set's interceptor to a port or connector."""
        interceptor = self.interceptor()
        if hasattr(port_or_connector, "add_interceptor"):
            port_or_connector.add_interceptor(interceptor)
        elif hasattr(port_or_connector, "interceptors"):
            port_or_connector.interceptors.append(interceptor)
        else:
            raise FilterError(
                f"cannot attach filter set {self.name!r} to "
                f"{port_or_connector!r}: no interceptor chain"
            )
        self._attached.append((port_or_connector, interceptor))

    def detach_from(self, port_or_connector: Any) -> None:
        """Remove this set's interceptor from a port or connector."""
        for entry in list(self._attached):
            holder, interceptor = entry
            if holder is port_or_connector:
                if hasattr(holder, "remove_interceptor"):
                    holder.remove_interceptor(interceptor)
                else:
                    holder.interceptors.remove(interceptor)
                self._attached.remove(entry)
                return
        raise FilterError(
            f"filter set {self.name!r} is not attached to {port_or_connector!r}"
        )

    def detach_all(self) -> None:
        for holder, _interceptor in list(self._attached):
            self.detach_from(holder)

    @property
    def attachment_count(self) -> int:
        return len(self._attached)

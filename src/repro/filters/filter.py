"""Composition filters.

"Filters intercept messages that are sent and received by components …
Since filters are defined as declarative message manipulators, they are
implementation independent" [Berg01].  A filter is a *matcher* plus an
*action*; filters are stacked in :class:`~repro.filters.filterset.FilterSet`
objects and can be attached to and removed from ports at run time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.errors import FilterError
from repro.kernel.component import Invocation


@dataclass(frozen=True)
class MessageMatcher:
    """Selects the messages a filter applies to.

    ``operations`` is a set of operation names, or ``{"*"}`` for all.
    ``condition`` optionally inspects the invocation (args, meta) —
    the declarative condition part of a composition-filter element.
    """

    operations: frozenset[str] = frozenset({"*"})
    condition: Callable[[Invocation], bool] | None = None

    def matches(self, invocation: Invocation) -> bool:
        if "*" not in self.operations and invocation.operation not in self.operations:
            return False
        if self.condition is not None and not self.condition(invocation):
            return False
        return True


def match(*operations: str, when: Callable[[Invocation], bool] | None = None
          ) -> MessageMatcher:
    """Build a matcher: ``match("get", "put", when=lambda inv: ...)``."""
    ops = frozenset(operations) if operations else frozenset({"*"})
    return MessageMatcher(ops, when)


class Filter:
    """Base filter: matcher plus behaviour.

    Subclasses override :meth:`on_match` (and optionally
    :meth:`on_mismatch`, which defaults to passing the message on).
    """

    def __init__(self, name: str, matcher: MessageMatcher | None = None) -> None:
        self.name = name
        self.matcher = matcher or MessageMatcher()
        self.match_count = 0

    def apply(self, invocation: Invocation,
              proceed: Callable[[Invocation], Any]) -> Any:
        if self.matcher.matches(invocation):
            self.match_count += 1
            return self.on_match(invocation, proceed)
        return self.on_mismatch(invocation, proceed)

    def on_match(self, invocation: Invocation,
                 proceed: Callable[[Invocation], Any]) -> Any:
        raise NotImplementedError

    def on_mismatch(self, invocation: Invocation,
                    proceed: Callable[[Invocation], Any]) -> Any:
        return proceed(invocation)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.name!r})"


class PassFilter(Filter):
    """Accepts matching messages unchanged (explicit allow)."""

    def on_match(self, invocation, proceed):
        return proceed(invocation)


class ErrorFilter(Filter):
    """Rejects matching messages — the classic Error filter."""

    def __init__(self, name: str, matcher: MessageMatcher | None = None,
                 message: str = "") -> None:
        super().__init__(name, matcher)
        self.message = message

    def on_match(self, invocation, proceed):
        raise FilterError(
            self.message
            or f"filter {self.name!r} rejected {invocation.operation!r}"
        )


class StopFilter(Filter):
    """Silently absorbs matching messages, returning a default value."""

    def __init__(self, name: str, matcher: MessageMatcher | None = None,
                 result: Any = None) -> None:
        super().__init__(name, matcher)
        self.result = result

    def on_match(self, invocation, proceed):
        return self.result


class TransformFilter(Filter):
    """Meta filter: rewrites the invocation before it continues.

    ``transform`` receives the invocation and returns the (possibly new)
    invocation to forward — "filters change the content of the messages".
    """

    def __init__(self, name: str,
                 transform: Callable[[Invocation], Invocation],
                 matcher: MessageMatcher | None = None) -> None:
        super().__init__(name, matcher)
        self.transform = transform

    def on_match(self, invocation, proceed):
        transformed = self.transform(invocation)
        if not isinstance(transformed, Invocation):
            raise FilterError(
                f"transform of filter {self.name!r} must return an Invocation"
            )
        return proceed(transformed)


class DispatchFilter(Filter):
    """Redirects matching messages to an alternative invocable target."""

    def __init__(self, name: str, target: Any,
                 matcher: MessageMatcher | None = None,
                 rename: str | None = None) -> None:
        super().__init__(name, matcher)
        self.target = target
        self.rename = rename

    def on_match(self, invocation, proceed):
        forwarded = invocation.copy()
        if self.rename:
            forwarded.operation = self.rename
        return self.target.invoke(forwarded)


class ThrottleFilter(Filter):
    """Admits at most ``limit`` matching messages per ``window`` of the
    supplied clock; the rest receive ``rejected_result`` (or an error if
    ``rejected_result`` is the sentinel ``RAISE``).  The admission-control
    filter used by overload-protection adaptations."""

    RAISE = object()

    def __init__(self, name: str, clock: Callable[[], float],
                 limit: int, window: float,
                 matcher: MessageMatcher | None = None,
                 rejected_result: Any = RAISE) -> None:
        super().__init__(name, matcher)
        if limit < 1 or window <= 0:
            raise FilterError(
                f"throttle {name!r}: need limit >= 1 and window > 0"
            )
        self.clock = clock
        self.limit = limit
        self.window = window
        self.rejected_result = rejected_result
        self.rejected_count = 0
        self._admitted: list[float] = []

    def on_match(self, invocation, proceed):
        now = self.clock()
        cutoff = now - self.window
        self._admitted = [t for t in self._admitted if t > cutoff]
        if len(self._admitted) >= self.limit:
            self.rejected_count += 1
            if self.rejected_result is self.RAISE:
                raise FilterError(
                    f"throttle {self.name!r}: rate limit "
                    f"{self.limit}/{self.window} exceeded"
                )
            return self.rejected_result
        self._admitted.append(now)
        return proceed(invocation)


class WaitFilter(Filter):
    """Queues matching messages while a guard is closed (Wait filter).

    While ``guard()`` is false the message is buffered; calling
    :meth:`release` replays buffered messages (in order) through the rest
    of the chain.  Synchronous callers receive ``queued_result``
    immediately — the filter cannot suspend a synchronous Python call.
    """

    def __init__(self, name: str, guard: Callable[[], bool],
                 matcher: MessageMatcher | None = None,
                 queued_result: Any = None) -> None:
        super().__init__(name, matcher)
        self.guard = guard
        self.queued_result = queued_result
        self.queue: list[tuple[Invocation, Callable[[Invocation], Any]]] = []

    def on_match(self, invocation, proceed):
        if self.guard():
            return proceed(invocation)
        self.queue.append((invocation, proceed))
        return self.queued_result

    def release(self) -> list[Any]:
        """Replay queued messages whose guard now passes; returns results."""
        results = []
        remaining: list[tuple[Invocation, Callable[[Invocation], Any]]] = []
        for invocation, proceed in self.queue:
            if self.guard():
                results.append(proceed(invocation))
            else:
                remaining.append((invocation, proceed))
        self.queue = remaining
        return results

    @property
    def pending(self) -> int:
        return len(self.queue)

"""Superimposition: applying filter sets across many components.

"Combined with the superimposition mechanism, filters are able to express
aspects" — a crosscutting concern is a filter-set template plus a
*selector* describing which ports of which components it cuts across.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.kernel.component import Component, ProvidedPort
from repro.kernel.registry import Registry
from repro.filters.filterset import FilterSet

#: Selects ports of a component the superimposition applies to.
PortSelector = Callable[[Component, ProvidedPort], bool]


def select_all(component: Component, port: ProvidedPort) -> bool:
    """Selector matching every provided port."""
    return True


def select_interface(interface_name: str) -> PortSelector:
    """Selector matching ports that expose ``interface_name``."""

    def selector(component: Component, port: ProvidedPort) -> bool:
        return port.interface.name == interface_name

    return selector


def select_components(*names: str) -> PortSelector:
    """Selector matching all ports of the named components."""
    wanted = set(names)

    def selector(component: Component, port: ProvidedPort) -> bool:
        return component.name in wanted

    return selector


@dataclass
class Superimposition:
    """A crosscutting filter specification.

    ``filter_set_factory`` builds a fresh :class:`FilterSet` per port (so
    per-port state such as wait queues is not shared unless the factory
    deliberately shares it).
    """

    name: str
    selector: PortSelector
    filter_set_factory: Callable[[], FilterSet]

    def apply(self, components: Iterable[Component]) -> list[FilterSet]:
        """Attach filter sets to every selected port; returns them."""
        applied: list[FilterSet] = []
        for component in components:
            for port in component.provided.values():
                if self.selector(component, port):
                    filter_set = self.filter_set_factory()
                    filter_set.attach_to(port)
                    applied.append(filter_set)
        return applied


class SuperimpositionManager:
    """Tracks live superimpositions so they can be retracted at run time."""

    def __init__(self, registry: Registry) -> None:
        self.registry = registry
        self._live: dict[str, list[FilterSet]] = {}

    def impose(self, superimposition: Superimposition) -> int:
        """Apply across all registered components; returns port count."""
        applied = superimposition.apply(list(self.registry))
        self._live.setdefault(superimposition.name, []).extend(applied)
        return len(applied)

    def retract(self, name: str) -> int:
        """Detach every filter set installed under ``name``."""
        filter_sets = self._live.pop(name, [])
        for filter_set in filter_sets:
            filter_set.detach_all()
        return len(filter_sets)

    def live_names(self) -> list[str]:
        return sorted(self._live)

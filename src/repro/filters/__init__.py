"""Composition filters (S7).

Declarative message manipulators in the Bergmans–Aksit style: matchers
plus actions (pass/error/stop/transform/dispatch/wait), stacked in
ordered filter sets that attach to and detach from ports and connectors
at run time, with superimposition for crosscutting application.
"""

from repro.filters.filter import (
    DispatchFilter,
    ErrorFilter,
    Filter,
    MessageMatcher,
    PassFilter,
    StopFilter,
    ThrottleFilter,
    TransformFilter,
    WaitFilter,
    match,
)
from repro.filters.filterset import FilterSet
from repro.filters.superimposition import (
    PortSelector,
    Superimposition,
    SuperimpositionManager,
    select_all,
    select_components,
    select_interface,
)

__all__ = [
    "DispatchFilter",
    "ErrorFilter",
    "Filter",
    "FilterSet",
    "MessageMatcher",
    "PassFilter",
    "PortSelector",
    "StopFilter",
    "Superimposition",
    "ThrottleFilter",
    "SuperimpositionManager",
    "TransformFilter",
    "WaitFilter",
    "match",
    "select_all",
    "select_components",
    "select_interface",
]

"""Meta-object chains / interaction patterns (S9).

Composable wrappers with declared properties (conditional, mandatory,
exclusive, modificatory) and partial-order constraints, validated and
topologically ordered before installation.
"""

from repro.metaobjects.chain import MetaChain, order, validate
from repro.metaobjects.metaobject import MetaObject

__all__ = ["MetaChain", "MetaObject", "order", "validate"]

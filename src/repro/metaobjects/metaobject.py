"""Meta-objects: composable wrappers with declared properties.

The paper's *interaction patterns* mechanism: "chain meta-objects so that
meta-controllers can be composed.  This requires specification of the
partially ordered relations among meta-objects (priority, order of the
declaration) … and of the important properties of the wrappers
(conditional, mandatory, exclusive, modificatory)."
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import MetaObjectError
from repro.kernel.component import Invocation


@dataclass
class MetaObject:
    """One wrapper in a meta-level chain.

    Attributes:
        name: unique chain-wide identifier.
        behaviour: interceptor body ``fn(invocation, proceed)``.
        priority: higher priorities run earlier (outermost).
        condition: when given, the wrapper only fires if it returns true
            for the invocation (*conditional* property).
        mandatory: the chain refuses to compose without this wrapper.
        exclusive_group: at most one wrapper per group may be present.
        modificatory: declares that the wrapper rewrites the invocation —
            two unordered modificatory wrappers are ambiguous.
        must_precede / must_follow: explicit partial-order constraints
            naming other wrappers.
    """

    name: str
    behaviour: Callable[[Invocation, Callable[[Invocation], Any]], Any]
    priority: int = 0
    condition: Callable[[Invocation], bool] | None = None
    mandatory: bool = False
    exclusive_group: str | None = None
    modificatory: bool = False
    must_precede: frozenset[str] = frozenset()
    must_follow: frozenset[str] = frozenset()
    fire_count: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise MetaObjectError("meta-object name must be non-empty")
        if self.name in self.must_precede or self.name in self.must_follow:
            raise MetaObjectError(
                f"meta-object {self.name!r} cannot be ordered against itself"
            )
        self.must_precede = frozenset(self.must_precede)
        self.must_follow = frozenset(self.must_follow)

    def apply(self, invocation: Invocation,
              proceed: Callable[[Invocation], Any]) -> Any:
        if self.condition is not None and not self.condition(invocation):
            return proceed(invocation)
        self.fire_count += 1
        return self.behaviour(invocation, proceed)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MetaObject({self.name!r}, priority={self.priority})"

"""Meta-object chains with validated composition.

Composition is a constrained topological sort: explicit
``must_precede``/``must_follow`` relations are hard edges, priorities
break remaining ties, and the validator enforces exclusivity groups,
mandatory members and unambiguous ordering of modificatory wrappers —
the "proper composition of meta objects" [Pawl99, Blay02].
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

import networkx as nx

from repro.errors import ChainOrderError, MetaObjectError
from repro.kernel.component import Invocation
from repro.metaobjects.metaobject import MetaObject


def validate(metaobjects: Sequence[MetaObject],
             required: Iterable[str] = ()) -> None:
    """Check a candidate set for composability (before ordering).

    Raises :class:`MetaObjectError`/:class:`ChainOrderError` describing
    the first violation found.
    """
    names = [m.name for m in metaobjects]
    if len(set(names)) != len(names):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        raise MetaObjectError(f"duplicate meta-object names: {duplicates}")

    present = set(names)
    for name in required:
        if name not in present:
            raise MetaObjectError(f"mandatory meta-object {name!r} is missing")
    for metaobject in metaobjects:
        if metaobject.mandatory and metaobject.name not in present:
            raise MetaObjectError(
                f"mandatory meta-object {metaobject.name!r} is missing"
            )

    groups: dict[str, list[str]] = {}
    for metaobject in metaobjects:
        if metaobject.exclusive_group:
            groups.setdefault(metaobject.exclusive_group, []).append(metaobject.name)
    for group, members in groups.items():
        if len(members) > 1:
            raise MetaObjectError(
                f"exclusive group {group!r} has multiple members: "
                f"{sorted(members)}"
            )

    for metaobject in metaobjects:
        for other in metaobject.must_precede | metaobject.must_follow:
            if other not in present:
                raise ChainOrderError(
                    f"meta-object {metaobject.name!r} is ordered against "
                    f"unknown wrapper {other!r}"
                )


def order(metaobjects: Sequence[MetaObject],
          strict_modificatory: bool = True) -> list[MetaObject]:
    """Compute a valid total order for the chain.

    Hard constraints come from ``must_precede``/``must_follow``; the
    remaining freedom is resolved by (priority desc, declaration order).
    With ``strict_modificatory`` two modificatory wrappers must be
    related (directly or transitively) by constraints or distinct
    priorities, otherwise their effect would depend on accidental order.
    """
    validate(metaobjects)
    by_name = {m.name: m for m in metaobjects}
    graph = nx.DiGraph()
    graph.add_nodes_from(by_name)
    for metaobject in metaobjects:
        for later in metaobject.must_precede:
            graph.add_edge(metaobject.name, later)
        for earlier in metaobject.must_follow:
            graph.add_edge(earlier, metaobject.name)

    try:
        cycles = list(nx.find_cycle(graph))
    except nx.NetworkXNoCycle:
        cycles = []
    if cycles:
        path = " -> ".join(edge[0] for edge in cycles) + f" -> {cycles[0][0]}"
        raise ChainOrderError(f"ordering constraints form a cycle: {path}")

    if strict_modificatory:
        closure = nx.transitive_closure(graph)
        modificatory = [m for m in metaobjects if m.modificatory]
        for i, first in enumerate(modificatory):
            for second in modificatory[i + 1:]:
                related = (
                    closure.has_edge(first.name, second.name)
                    or closure.has_edge(second.name, first.name)
                    or first.priority != second.priority
                )
                if not related:
                    raise ChainOrderError(
                        f"modificatory meta-objects {first.name!r} and "
                        f"{second.name!r} are unordered; add a constraint "
                        "or distinct priorities"
                    )

    declaration_index = {m.name: i for i, m in enumerate(metaobjects)}

    def sort_key(name: str) -> tuple[int, int]:
        metaobject = by_name[name]
        return (-metaobject.priority, declaration_index[name])

    ordered_names = list(nx.lexicographical_topological_sort(graph, key=sort_key))
    return [by_name[name] for name in ordered_names]


class MetaChain:
    """A live, revalidating chain installed as one interceptor."""

    def __init__(self, name: str,
                 metaobjects: Sequence[MetaObject] = (),
                 strict_modificatory: bool = True) -> None:
        self.name = name
        self.strict_modificatory = strict_modificatory
        self._declared: list[MetaObject] = []
        self._ordered: list[MetaObject] = []
        for metaobject in metaobjects:
            self._declared.append(metaobject)
        self._recompose()

    def _recompose(self) -> None:
        self._ordered = order(self._declared, self.strict_modificatory)

    # -- runtime composition ------------------------------------------------

    def add(self, metaobject: MetaObject) -> None:
        """Insert a wrapper; the chain re-validates and re-orders."""
        self._declared.append(metaobject)
        try:
            self._recompose()
        except (MetaObjectError, ChainOrderError):
            self._declared.remove(metaobject)
            raise

    def remove(self, name: str) -> MetaObject:
        """Remove a wrapper by name (mandatory wrappers refuse)."""
        for metaobject in self._declared:
            if metaobject.name == name:
                if metaobject.mandatory:
                    raise MetaObjectError(
                        f"meta-object {name!r} is mandatory and cannot be "
                        "removed"
                    )
                self._declared.remove(metaobject)
                self._recompose()
                return metaobject
        raise MetaObjectError(f"chain {self.name!r} has no meta-object {name!r}")

    @property
    def order_names(self) -> list[str]:
        return [m.name for m in self._ordered]

    def __len__(self) -> int:
        return len(self._ordered)

    # -- execution ----------------------------------------------------------

    def interceptor(self) -> Callable[[Invocation, Callable], Any]:
        """Compile the chain into a single interceptor (live view)."""

        def run(invocation: Invocation, proceed: Callable[[Invocation], Any],
                _position: int = 0, _snapshot: list[MetaObject] | None = None
                ) -> Any:
            chain = self._ordered if _snapshot is None else _snapshot
            if _position < len(chain):
                return chain[_position].apply(
                    invocation,
                    lambda inner: run(inner, proceed, _position + 1, chain),
                )
            return proceed(invocation)

        run.meta_chain = self  # type: ignore[attr-defined]
        return run

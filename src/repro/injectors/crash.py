"""Crash points and backend-fault injection for the durability layer.

The paper's injectors insert behaviour into *communication channels*;
these insert failure into the *persistence* path, turning the strong
reconfiguration guarantee from a simulated property into a crash-tested
one:

* :class:`CrashInjector` — kills the run at a write-ahead-log point
  (``intent``, ``quiesce``, ``apply:<i>``, ``commit``, ``post-commit``,
  ``rollback-begin``, ``rollback``), either *before* the record is made
  durable or *after*.  Two modes: ``"raise"`` throws
  :class:`SimulatedCrash` (a ``BaseException``, so no rollback handler
  can catch it — exactly like a process death, the transaction is
  abandoned mid-flight) and ``"exit"`` calls ``os._exit`` for real
  process-kill matrices over the sqlite backend.
* :class:`FlakyStore` — a :class:`~repro.durability.store.Store` wrapper
  that fails appends on demand (by phase key or by count), the
  SNIPPETS §2–3 idiom: every durable write is a fault site and the
  transaction must report failure cleanly rather than corrupt the
  assembly.
"""

from __future__ import annotations

import os
from typing import Any

from repro.errors import InjectorError, StoreError


class SimulatedCrash(BaseException):
    """A simulated process death.

    Deliberately **not** an :class:`Exception`: rollback handlers catch
    ``Exception``, and a crash must sail straight past them the way
    SIGKILL would — leaving the write-ahead log as the only truth.
    """


def record_point(record: dict[str, Any]) -> str:
    """The crash-matrix point key of a WAL record (``apply`` records are
    keyed per index: ``apply:0``, ``apply:1``, …)."""
    phase = str(record.get("phase", ""))
    if phase == "apply":
        return f"apply:{record.get('index')}"
    return phase


class CrashInjector:
    """Fires exactly once when a WAL append reaches the armed point.

    Args:
        point: point key to crash at (see :mod:`repro.durability.wal`).
        when: ``"before"`` — the record never becomes durable (the crash
            precedes the append) — or ``"after"`` — the record is
            durable, the in-memory step that follows it never runs.
        mode: ``"raise"`` (in-process, both backends) or ``"exit"``
            (``os._exit``; for subprocess matrices over sqlite).
        exit_code: status for ``"exit"`` mode.
    """

    MODES = ("raise", "exit")
    WHENS = ("before", "after")

    def __init__(self, point: str, when: str = "after",
                 mode: str = "raise", exit_code: int = 137) -> None:
        if when not in self.WHENS:
            raise InjectorError(f"when must be one of {self.WHENS}, "
                                f"got {when!r}")
        if mode not in self.MODES:
            raise InjectorError(f"mode must be one of {self.MODES}, "
                                f"got {mode!r}")
        self.point = point
        self.when = when
        self.mode = mode
        self.exit_code = exit_code
        self.fired = False

    def arm(self, wal: Any) -> "CrashInjector":
        """Attach to a :class:`~repro.durability.wal.WriteAheadLog`."""
        wal.crash_injector = self
        return self

    def fire(self, point: str, when: str) -> None:
        """Called by the WAL around every append; crashes on the match."""
        if self.fired or point != self.point or when != self.when:
            return
        self.fired = True
        if self.mode == "exit":
            os._exit(self.exit_code)
        raise SimulatedCrash(f"simulated crash {self.when} {self.point!r}")


class FlakyStore:
    """Store wrapper that injects backend write failures.

    Args:
        inner: the real backend.
        fail_point: fail the append whose record matches this crash-
            matrix point key (``intent``, ``apply:1``, ``commit``, …).
        fail_after: fail the Nth append overall (1-based); ``None``
            disables count-based failure.
        failures: how many times to fail before recovering (default
            ``1``; ``-1`` fails forever).
    """

    def __init__(self, inner: Any, fail_point: str | None = None,
                 fail_after: int | None = None, failures: int = 1) -> None:
        if fail_point is None and fail_after is None:
            raise InjectorError(
                "FlakyStore needs fail_point or fail_after")
        self.inner = inner
        self.fail_point = fail_point
        self.fail_after = fail_after
        self.failures = failures
        self.appends = 0
        self.injected = 0

    def _should_fail(self, record: dict[str, Any]) -> bool:
        if self.failures == 0:
            return False
        if self.fail_point is not None and (
                record_point(record) == self.fail_point):
            return True
        return self.fail_after is not None and self.appends == self.fail_after

    def append(self, log: str, record: dict[str, Any]) -> int:
        self.appends += 1
        if self._should_fail(record):
            self.injected += 1
            if self.failures > 0:
                self.failures -= 1
            raise StoreError(
                f"injected backend write failure at "
                f"{record_point(record) or f'append #{self.appends}'}")
        return self.inner.append(log, record)

    def read(self, log: str, start: int = 1) -> list[tuple[int, dict]]:
        return self.inner.read(log, start)

    def logs(self) -> list[str]:
        return self.inner.logs()

    def truncate(self, log: str) -> int:
        return self.inner.truncate(log)

    def close(self) -> None:
        self.inner.close()

"""Injectors (S10): behaviour inserted into communication channels.

Scoped interception of bindings for re-routing, transformation,
filtering and multicast, after Filman & Lee's "Redirecting by Injector"
— plus failure injection for the durability layer (crash points keyed
to write-ahead-log phases and backend write faults), which turns the
strong-reconfiguration guarantee into a crash-tested property.
"""

from repro.injectors.crash import (
    CrashInjector,
    FlakyStore,
    SimulatedCrash,
    record_point,
)
from repro.injectors.injector import (
    ChannelSelector,
    DropInjector,
    Injector,
    InjectorManager,
    MulticastInjector,
    RerouteInjector,
    TransformInjector,
    all_channels,
    channels_from,
    channels_to,
)

__all__ = [
    "ChannelSelector",
    "CrashInjector",
    "DropInjector",
    "FlakyStore",
    "Injector",
    "InjectorManager",
    "MulticastInjector",
    "RerouteInjector",
    "SimulatedCrash",
    "TransformInjector",
    "all_channels",
    "channels_from",
    "channels_to",
    "record_point",
]

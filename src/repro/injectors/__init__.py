"""Injectors (S10): behaviour inserted into communication channels.

Scoped interception of bindings for re-routing, transformation,
filtering and multicast, after Filman & Lee's "Redirecting by Injector".
"""

from repro.injectors.injector import (
    ChannelSelector,
    DropInjector,
    Injector,
    InjectorManager,
    MulticastInjector,
    RerouteInjector,
    TransformInjector,
    all_channels,
    channels_from,
    channels_to,
)

__all__ = [
    "ChannelSelector",
    "DropInjector",
    "Injector",
    "InjectorManager",
    "MulticastInjector",
    "RerouteInjector",
    "TransformInjector",
    "all_channels",
    "channels_from",
    "channels_to",
]

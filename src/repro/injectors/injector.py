"""Injectors: behaviour inserted into communication channels.

From Filman & Lee's "Redirecting by Injector": communications between
components are intercepted "so that new behavior can be inserted, for
example for changing routing, or for transforming and filtering
messages.  Each injection should affect a limited set of specific
components."  Injectors therefore attach to *bindings* (channels), not to
ports, and are scoped by channel predicates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from repro.errors import InjectorError
from repro.kernel.binding import Binding
from repro.kernel.component import Invocable, Invocation
from repro.kernel.interface import Interface


class Injector:
    """Base injector: override :meth:`handle`.

    ``forward(invocation)`` delivers to the channel's original target;
    an injector may call it zero (drop), one (pass/transform) or several
    (multicast) times.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self.hit_count = 0

    def handle(self, invocation: Invocation,
               forward: Callable[[Invocation], Any]) -> Any:
        raise NotImplementedError


class TransformInjector(Injector):
    """Rewrites invocations in flight."""

    def __init__(self, name: str,
                 transform: Callable[[Invocation], Invocation]) -> None:
        super().__init__(name)
        self.transform = transform

    def handle(self, invocation, forward):
        self.hit_count += 1
        return forward(self.transform(invocation))


class RerouteInjector(Injector):
    """Redirects matching invocations to a different target."""

    def __init__(self, name: str, new_target: Invocable,
                 predicate: Callable[[Invocation], bool] | None = None) -> None:
        super().__init__(name)
        self.new_target = new_target
        self.predicate = predicate

    def handle(self, invocation, forward):
        if self.predicate is None or self.predicate(invocation):
            self.hit_count += 1
            return self.new_target.invoke(invocation)
        return forward(invocation)


class DropInjector(Injector):
    """Filters out matching invocations, returning a default result."""

    def __init__(self, name: str,
                 predicate: Callable[[Invocation], bool],
                 result: Any = None) -> None:
        super().__init__(name)
        self.predicate = predicate
        self.result = result
        self.dropped = 0

    def handle(self, invocation, forward):
        if self.predicate(invocation):
            self.hit_count += 1
            self.dropped += 1
            return self.result
        return forward(invocation)


class MulticastInjector(Injector):
    """Copies each invocation to extra targets besides the original."""

    def __init__(self, name: str, extra_targets: list[Invocable]) -> None:
        super().__init__(name)
        self.extra_targets = list(extra_targets)

    def handle(self, invocation, forward):
        self.hit_count += 1
        result = forward(invocation)
        for target in self.extra_targets:
            target.invoke(invocation.copy())
        return result


class _InjectedTarget:
    """Wraps a channel target, applying an injector stack before delivery."""

    def __init__(self, original: Invocable) -> None:
        self._original = original
        self.injectors: list[Injector] = []
        self.interface: Interface = original.interface

    @property
    def qualified_name(self) -> str:
        original = getattr(self._original, "qualified_name", repr(self._original))
        return f"injected({original})"

    @property
    def original(self) -> Invocable:
        return self._original

    def invoke(self, invocation: Invocation) -> Any:
        stack = list(self.injectors)

        def deliver(inv: Invocation, _position: int = 0) -> Any:
            if _position < len(stack):
                return stack[_position].handle(
                    inv, lambda inner: deliver(inner, _position + 1)
                )
            return self._original.invoke(inv)

        return deliver(invocation)


#: Predicate selecting which bindings an injection applies to.
ChannelSelector = Callable[[Binding], bool]


def channels_from(component_name: str) -> ChannelSelector:
    """Channels whose *source* component matches."""
    return lambda binding: binding.source.component.name == component_name


def channels_to(target_name: str) -> ChannelSelector:
    """Channels whose current target's qualified name starts with
    ``target_name`` (component or component.port)."""

    def selector(binding: Binding) -> bool:
        qualified = getattr(binding.target, "qualified_name", "")
        return qualified == target_name or qualified.startswith(f"{target_name}.")

    return selector


def all_channels(binding: Binding) -> bool:
    return True


class InjectorManager:
    """Installs and retracts injections over a set of channels."""

    def __init__(self) -> None:
        # injection name -> list of (binding, wrapper, injector)
        self._live: dict[str, list[tuple[Binding, _InjectedTarget, Injector]]] = {}

    def inject(self, injector: Injector, bindings: Iterable[Binding],
               scope: ChannelSelector = all_channels) -> int:
        """Apply ``injector`` to every binding selected by ``scope``.

        Returns the number of channels affected (0 is an error: the
        paper's injections always target specific components).
        """
        if injector.name in self._live:
            raise InjectorError(f"injection {injector.name!r} already active")
        affected: list[tuple[Binding, _InjectedTarget, Injector]] = []
        for binding in bindings:
            if not scope(binding):
                continue
            target = binding.target
            if isinstance(target, _InjectedTarget):
                wrapper = target
            else:
                wrapper = _InjectedTarget(target)
                binding.redirect(wrapper, check_compatibility=False)
            wrapper.injectors.append(injector)
            affected.append((binding, wrapper, injector))
        if not affected:
            raise InjectorError(
                f"injection {injector.name!r} matched no channel"
            )
        self._live[injector.name] = affected
        return len(affected)

    def retract(self, name: str) -> int:
        """Remove an injection, unwrapping channels left bare."""
        try:
            affected = self._live.pop(name)
        except KeyError:
            raise InjectorError(f"injection {name!r} is not active") from None
        for binding, wrapper, injector in affected:
            if injector in wrapper.injectors:
                wrapper.injectors.remove(injector)
            if not wrapper.injectors and binding.target is wrapper:
                binding.redirect(wrapper.original, check_compatibility=False)
        return len(affected)

    def active_names(self) -> list[str]:
        return sorted(self._live)

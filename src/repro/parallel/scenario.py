"""Reference partitioned scenario: a ring of star regions.

The shared workload for the parallel tests, the S3 benchmark and the
examples: ``regions`` star topologies (one hub + ``leaves`` leaf nodes
each), hubs joined in a ring of boundary links.  Each region schedules an
open-loop message workload at build time from its own seeded rng — a
fixed fraction of messages crosses region boundaries — so the whole run
is a pure function of ``(partition shape, seed)`` regardless of backend.

Everything here is module-level (picklable under the ``spawn`` start
method); parameterize with :func:`functools.partial`, e.g.::

    build = partial(build_star_region, leaves=8, messages=2000,
                    until=10.0, cross_fraction=0.2)
    psim = ParallelSimulation(star_ring_partition(4, leaves=8), build)
"""

from __future__ import annotations

import random

from repro.events import Simulator
from repro.netsim.message import Message
from repro.netsim.partition import Partition, RegionNetwork

#: Endpoint every leaf exposes; deliveries are observed through
#: ``NetworkStats.delivered`` rather than per-message callbacks.
ENDPOINT = "svc"


def hub_name(region: int) -> str:
    return f"hub{region}"


def leaf_name(region: int, index: int) -> str:
    return f"n{region}_{index}"


def star_ring_partition(regions: int = 4, leaves: int = 8,
                        boundary_latency: float = 0.01,
                        boundary_bandwidth: float = 1_000_000.0) -> Partition:
    """Assign ``regions`` stars and join the hubs in a boundary ring."""
    partition = Partition(regions)
    for region in range(regions):
        partition.assign(hub_name(region), region)
        for index in range(leaves):
            partition.assign(leaf_name(region, index), region)
    if regions > 1:
        for region in range(regions):
            peer = (region + 1) % regions
            if regions == 2 and region == 1:
                break  # two regions need one boundary, not two
            partition.add_boundary(hub_name(region), hub_name(peer),
                                   latency=boundary_latency,
                                   bandwidth=boundary_bandwidth)
    return partition


def _sink(node, message) -> None:
    """Leaf endpoint handler: delivery itself is the observable."""


def _send(net: RegionNetwork, source: str, destination: str,
          size: int) -> None:
    net.send(Message(source=source, destination=destination,
                     endpoint=ENDPOINT, size=size))


def build_star_region(region: int, sim: Simulator, partition: Partition,
                      seed: int, *, leaves: int = 8, messages: int = 2000,
                      until: float = 10.0, local_latency: float = 0.001,
                      cross_fraction: float = 0.2,
                      size: int = 256) -> RegionNetwork:
    """Build one star region and preschedule its open-loop workload.

    ``messages`` sends spread evenly over ``(0, until)``; each picks a
    seeded-random source leaf and, with probability ``cross_fraction``, a
    destination leaf in another region.  The rng is derived from
    ``(seed, region)`` only, so the same call in a worker process, the
    inline backend or a replayed restart schedules the identical
    workload.
    """
    net = RegionNetwork(sim, partition, region, seed=(seed << 8) ^ region)
    hub = hub_name(region)
    net.add_node(hub)
    names = []
    for index in range(leaves):
        name = leaf_name(region, index)
        node = net.add_node(name)
        node.bind_endpoint(ENDPOINT, _sink)
        net.add_link(hub, name, latency=local_latency)
        names.append(name)
    rng = random.Random((seed << 16) ^ (region + 1))
    others = [r for r in range(partition.regions) if r != region]
    step = until / (messages + 1)
    items = []
    for index in range(messages):
        when = (index + 1) * step
        source = names[rng.randrange(leaves)]
        if others and rng.random() < cross_fraction:
            target = others[rng.randrange(len(others))]
            destination = leaf_name(target, rng.randrange(leaves))
        else:
            destination = names[rng.randrange(leaves)]
        items.append((when, _send, (net, source, destination, size)))
    sim.schedule_many(items, absolute=True)
    return net

"""Reference partitioned scenario: a ring of star regions.

The shared workload for the parallel tests, the S3 benchmark and the
examples: ``regions`` star topologies (one hub + ``leaves`` leaf nodes
each), hubs joined in a ring of boundary links.  Each region schedules an
open-loop message workload at build time from its own seeded rng — a
fixed fraction of messages crosses region boundaries — so the whole run
is a pure function of ``(partition shape, seed)`` regardless of backend.

Everything here is module-level (picklable under the ``spawn`` start
method); parameterize with :func:`functools.partial`, e.g.::

    build = partial(build_star_region, leaves=8, messages=2000,
                    until=10.0, cross_fraction=0.2)
    psim = ParallelSimulation(star_ring_partition(4, leaves=8), build)
"""

from __future__ import annotations

import random
from array import array

from repro.errors import NetworkError
from repro.events import Simulator
from repro.netsim.message import Message, current_allocator
from repro.netsim.partition import CompactPartition, Partition, RegionNetwork

#: Endpoint every leaf exposes; deliveries are observed through
#: ``NetworkStats.delivered`` rather than per-message callbacks.
ENDPOINT = "svc"


def hub_name(region: int) -> str:
    return f"hub{region}"


def leaf_name(region: int, index: int) -> str:
    return f"n{region}_{index}"


def star_ring_partition(regions: int = 4, leaves: int = 8,
                        boundary_latency: float = 0.01,
                        boundary_bandwidth: float = 1_000_000.0) -> Partition:
    """Assign ``regions`` stars and join the hubs in a boundary ring."""
    partition = Partition(regions)
    for region in range(regions):
        partition.assign(hub_name(region), region)
        for index in range(leaves):
            partition.assign(leaf_name(region, index), region)
    if regions > 1:
        for region in range(regions):
            peer = (region + 1) % regions
            if regions == 2 and region == 1:
                break  # two regions need one boundary, not two
            partition.add_boundary(hub_name(region), hub_name(peer),
                                   latency=boundary_latency,
                                   bandwidth=boundary_bandwidth)
    return partition


def _sink(node, message) -> None:
    """Leaf endpoint handler: delivery itself is the observable."""


def _send(net: RegionNetwork, source: str, destination: str,
          size: int) -> None:
    net.send(Message(source=source, destination=destination,
                     endpoint=ENDPOINT, size=size))


def build_star_region(region: int, sim: Simulator, partition: Partition,
                      seed: int, *, leaves: int = 8, messages: int = 2000,
                      until: float = 10.0, local_latency: float = 0.001,
                      cross_fraction: float = 0.2,
                      size: int = 256) -> RegionNetwork:
    """Build one star region and preschedule its open-loop workload.

    ``messages`` sends spread evenly over ``(0, until)``; each picks a
    seeded-random source leaf and, with probability ``cross_fraction``, a
    destination leaf in another region.  The rng is derived from
    ``(seed, region)`` only, so the same call in a worker process, the
    inline backend or a replayed restart schedules the identical
    workload.
    """
    net = RegionNetwork(sim, partition, region, seed=(seed << 8) ^ region)
    hub = hub_name(region)
    net.add_node(hub)
    names = []
    for index in range(leaves):
        name = leaf_name(region, index)
        node = net.add_node(name)
        node.bind_endpoint(ENDPOINT, _sink)
        net.add_link(hub, name, latency=local_latency)
        names.append(name)
    rng = random.Random((seed << 16) ^ (region + 1))
    others = [r for r in range(partition.regions) if r != region]
    step = until / (messages + 1)
    items = []
    for index in range(messages):
        when = (index + 1) * step
        source = names[rng.randrange(leaves)]
        if others and rng.random() < cross_fraction:
            target = others[rng.randrange(len(others))]
            destination = leaf_name(target, rng.randrange(leaves))
        else:
            destination = names[rng.randrange(leaves)]
        items.append((when, _send, (net, source, destination, size)))
    sim.schedule_many(items, absolute=True)
    return net


# -- memory-lean fast path ---------------------------------------------------
#
# The classic builder above materializes every leaf as a Node, every spoke
# as a Link and every send as a prescheduled event — fine at 10^3 nodes,
# hopeless at 10^6.  The lean variant below keeps the same logical topology
# (ring of stars) and the same coordinator contract (outbox tuples,
# ingress at arrival time, conservative boundary latency) but stores leaf
# state columnarly and drives the workload from a handful of
# self-rescheduling streams, so resident memory is O(leaves * 4 bytes)
# and the pending-event heap is O(streams + in-flight deliveries).


def leaf_index(name: str) -> int:
    """Inverse of :func:`leaf_name` (the ``_``-suffixed index)."""
    return int(name.rsplit("_", 1)[1])


class _StarRingResolver:
    """Picklable node→region formula for systematic star-ring names.

    ``hub3`` → 3, ``n3_1417`` → 3, anything else → ``None`` (falls back
    to the partition's explicit assignments).
    """

    __slots__ = ("regions",)

    def __init__(self, regions: int) -> None:
        self.regions = regions

    def __call__(self, node: str) -> int | None:
        if node.startswith("hub"):
            suffix = node[3:]
        elif node.startswith("n"):
            suffix = node[1:].split("_", 1)[0]
        else:
            return None
        try:
            return int(suffix)
        except ValueError:
            return None


def lean_star_partition(regions: int = 4,
                        boundary_latency: float = 0.01,
                        boundary_bandwidth: float = 1_000_000.0
                        ) -> CompactPartition:
    """Star-ring partition whose node→region map is a name formula.

    Memory is O(regions) regardless of how many leaves each region
    holds; :func:`build_lean_star_region` decides the actual leaf count.
    """
    partition = CompactPartition(regions, _StarRingResolver(regions))
    if regions > 1:
        for region in range(regions):
            peer = (region + 1) % regions
            if regions == 2 and region == 1:
                break  # two regions need one boundary, not two
            partition.add_boundary(hub_name(region), hub_name(peer),
                                   latency=boundary_latency,
                                   bandwidth=boundary_bandwidth)
    return partition


_MASK64 = (1 << 64) - 1


def _mix_delivery(t_ns: int, origin_region: int, msg_id: int,
                  leaf: int) -> int:
    """64-bit hash of one delivery, stable across interpreters/runs."""
    h = (t_ns * 0x9E3779B97F4A7C15
         + origin_region * 0xBF58476D1CE4E5B9
         + msg_id * 0x94D049BB133111EB
         + leaf * 0x2545F4914F6CDD1D) & _MASK64
    return h ^ (h >> 31)


class LeanStarRegion(RegionNetwork):
    """Columnar star shard: leaves are array slots, not :class:`Node`\\ s.

    Only the hub exists implicitly as the boundary gateway; per-leaf
    state is one ``array('I')`` of delivered counts.  Local delivery
    costs one scheduled event (leaf → hub → leaf, ``2 * local_latency``);
    cross-region sends append the standard 14-field outbox tuple after
    one local leg plus the boundary latency, so every arrival respects
    the partition lookahead and the coordinator needs no special casing.

    Determinism is checked through :attr:`digest` — an order-invariant
    (mod-2^64 sum) fold of ``(delivery time, origin region, message id,
    leaf)`` over all deliveries.  Because each message's delivery *time*
    is a pure function of the workload (never of round structure), the
    digest is identical across inline/barrier/overlapped backends and
    across adaptive horizon widening, even where trace record *order*
    differs.
    """

    def __init__(self, sim: Simulator, partition: Partition, region: int,
                 seed: int = 0, *, leaves: int,
                 local_latency: float = 0.001,
                 message_size: int = 256) -> None:
        super().__init__(sim, partition, region, seed=seed)
        self.leaves = leaves
        self.local_latency = local_latency
        self.message_size = message_size
        self.delivered_by_leaf = array("I", bytes(4 * leaves))
        self.digest = 0

    # -- lean delivery ----------------------------------------------------

    def lean_send_local(self, source_leaf: int, dest_leaf: int) -> None:
        """Leaf → hub → leaf inside this region: one delivery event."""
        self.stats.sent += 1
        self.in_flight += 1
        self.sim.schedule(self._lean_arrive, dest_leaf, self.region,
                          current_allocator().allocate(), self.sim.now,
                          delay=2 * self.local_latency)

    def lean_send_cross(self, source_leaf: int, to_region: int,
                        dest_leaf: int) -> None:
        """Leaf → hub (one local leg), then egress over the boundary."""
        self.stats.sent += 1
        now = self.sim.now
        msg_id = current_allocator().allocate()
        try:
            boundary = self.partition.next_hop(self.region, to_region)
        except NetworkError:
            self.stats.dropped_no_route += 1
            return
        next_region, entry_node = boundary.peer(self.region)
        arrival = now + self.local_latency + boundary.latency
        seq = self._outbox_seq
        self._outbox_seq = seq + 1
        self.outbox.append((
            "msg", self.region, next_region, entry_node, arrival, seq,
            leaf_name(self.region, source_leaf),
            leaf_name(to_region, dest_leaf), ENDPOINT, None,
            self.message_size, {}, now, (self.region, msg_id),
        ))
        self.forwarded_out += 1

    def _lean_arrive(self, leaf: int, origin_region: int, msg_id: int,
                     sent_at: float) -> None:
        now = self.sim.now
        self.in_flight -= 1
        self.delivered_by_leaf[leaf] += 1
        stats = self.stats
        stats.delivered += 1
        stats.total_latency += now - sent_at
        stats.total_bytes += self.message_size
        self.digest = (self.digest + _mix_delivery(
            round(now * 1e9), origin_region, msg_id, leaf)) & _MASK64

    # -- receiving --------------------------------------------------------

    def ingress(self, record: tuple) -> None:
        """Runs at the tuple's arrival time: transit tuples re-egress
        synchronously (hub to hub, no local leg); terminal tuples pay
        the hub → leaf leg and fold into the digest."""
        (_, _origin_region, to_region, _entry_node, _arrival, _seq,
         _source, destination, _endpoint, _payload, size, _headers,
         sent_at, origin) = record
        if to_region != self.region:
            raise NetworkError(
                f"region {self.region} received a tuple for region "
                f"{to_region}")
        self.ingressed += 1
        dest_region = self.partition.region_of(destination)
        if dest_region != self.region:
            boundary = self.partition.next_hop(self.region, dest_region)
            next_region, entry_node = boundary.peer(self.region)
            seq = self._outbox_seq
            self._outbox_seq = seq + 1
            self.outbox.append((
                "msg", self.region, next_region, entry_node,
                self.sim.now + boundary.latency, seq, _source, destination,
                _endpoint, _payload, size, _headers, sent_at,
                tuple(origin),
            ))
            self.forwarded_out += 1
            return
        self.in_flight += 1
        origin_region, msg_id = origin
        self.sim.schedule(self._lean_arrive, leaf_index(destination),
                          origin_region, msg_id, sent_at,
                          delay=self.local_latency)

    # -- reporting --------------------------------------------------------

    def extra_stats(self) -> dict[str, int]:
        """Merged into the region's stats snapshot by the runtime."""
        return {
            "digest": self.digest,
            "leaves": self.leaves,
            "max_leaf_delivered": (max(self.delivered_by_leaf)
                                   if self.leaves else 0),
        }


def build_lean_star_region(region: int, sim: Simulator,
                           partition: Partition, seed: int, *,
                           leaves: int = 1000, messages: int = 10_000,
                           until: float = 10.0, streams: int = 64,
                           cross_every: int = 5,
                           local_latency: float = 0.001, size: int = 256,
                           declare_cross: bool = False) -> LeanStarRegion:
    """Build one lean star region driven by self-rescheduling streams.

    Message ``m`` (0-based) fires at ``(m + 1) * until / (messages + 1)``
    — the same cadence as :func:`build_star_region` — but instead of
    prescheduling ``messages`` events the workload runs as ``streams``
    generators, each keeping exactly one pending event and rescheduling
    itself after every send.  Message ``m`` crosses a boundary iff
    ``m % cross_every == 0`` (deterministic, not an rng draw), which is
    what makes ``declare_cross=True`` sound: the exact cross-send times
    are computable at build time and passed to
    :meth:`RegionNetwork.declare_cross_sends`, so adaptive lookahead can
    widen horizons past millions of pending local events.  Leaf choices
    still come from the ``(seed, region)``-derived rng; stream ticks
    fire at strictly increasing distinct times, so the draw order — and
    therefore the workload — is a pure function of the build arguments.
    """
    net = LeanStarRegion(sim, partition, region, seed=(seed << 8) ^ region,
                         leaves=leaves, local_latency=local_latency,
                         message_size=size)
    rng = random.Random((seed << 16) ^ (region + 1))
    others = [r for r in range(partition.regions) if r != region]
    step = until / (messages + 1)
    every = cross_every if others else 0
    n_streams = max(1, min(streams, messages))

    def tick(m: int) -> None:
        source = rng.randrange(leaves)
        if every and m % every == 0:
            net.lean_send_cross(source, others[rng.randrange(len(others))],
                                rng.randrange(leaves))
        else:
            net.lean_send_local(source, rng.randrange(leaves))
        nxt = m + n_streams
        if nxt < messages:
            sim.schedule(tick, nxt, at=(nxt + 1) * step)

    for stream in range(min(n_streams, messages)):
        sim.schedule(tick, stream, at=(stream + 1) * step)
    if declare_cross:
        # An empty declaration is the strongest promise of all: this
        # region will NEVER egress, so its egress floor is +inf and
        # adaptive lookahead can run neighbors straight to ``until``.
        times = ([(m + 1) * step for m in range(0, messages, every)]
                 if every else [])
        net.declare_cross_sends(times)
    return net

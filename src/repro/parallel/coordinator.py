"""The conservative-lookahead coordinator.

:class:`ParallelSimulation` runs a partitioned topology as a set of
region shards synchronized in **barrier rounds**: with lookahead ``L``
(the minimum boundary-link latency, see
:class:`~repro.netsim.partition.Partition`), every boundary tuple
egressed during window ``[kL, (k+1)L)`` arrives no earlier than
``(k+1)L`` — so each region may simulate a whole window without hearing
from the others, and the coordinator only exchanges outboxes between
windows.  Windows run horizon-**exclusive**
(``Simulator.run(until=h, inclusive=False)``): an event exactly at the
horizon fires next round, after same-instant remote tuples have been
injected, which is what makes the interleaving — and the merged trace —
deterministic.

Two backends execute the identical :class:`~repro.parallel.runtime.
RegionRuntime` code:

* ``"inline"`` — every region stepped sequentially in this process; the
  single-shard baseline for both determinism checks and speedup
  measurements.
* ``"process"`` — one OS process per region, plain tuples over pipes.

Supervision: the coordinator records every command it has sent to each
region.  When a worker process dies (pipe breaks), a fresh process is
spawned and the history **replayed** — regions are deterministic, so the
revived worker reaches the exact state (simulator clock, network,
telemetry, sampling streams) of the lost one, and the run's merged trace
checksum is unchanged.  :meth:`ParallelSimulation.kill_worker` exists so
tests and chaos drills can prove that.
"""

from __future__ import annotations

import multiprocessing
import traceback
from collections import deque
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable

from repro.errors import ParallelError, WorkerError
from repro.netsim.partition import Partition
from repro.parallel.runtime import RegionBuilder, RegionRuntime, worker_main
from repro.telemetry.merge import merge_records, merged_checksum

#: Injection merge order: (arrival sim-time, origin region, origin seq).
_INJECT_KEY = lambda record: (record[4], record[1], record[5])  # noqa: E731


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


class _InlineWorker:
    """Channel adapter running a :class:`RegionRuntime` in-process.

    Commands execute synchronously on ``send``; ``recv`` pops the reply —
    the coordinator drives both backends through the same two calls.
    """

    def __init__(self, region: int, partition: Partition,
                 build_region: RegionBuilder, seed: int,
                 telemetry: dict[str, Any] | None) -> None:
        self.region = region
        self._replies: deque = deque()
        self._runtime = None
        self._build_error: str | None = None
        try:
            self._runtime = RegionRuntime(region, partition, build_region,
                                          seed=seed, telemetry=telemetry)
        except Exception:  # surfaces as a reply, like a worker process
            self._build_error = traceback.format_exc()

    def send(self, command: tuple) -> None:
        if self._build_error is not None:
            self._replies.append(("error", self.region, self._build_error))
            return
        try:
            op = command[0]
            if op == "round":
                _, index, horizon, inclusive, injections = command
                outbox, counters = self._runtime.run_round(
                    index, horizon, inclusive, injections)
                self._replies.append(("done", index, outbox, counters))
            elif op == "collect":
                self._replies.append(("report", self._runtime.collect()))
            elif op == "stop":
                self._replies.append(("bye", self.region))
            else:
                self._replies.append(
                    ("error", self.region, f"unknown command {op!r}"))
        except Exception:
            self._replies.append(
                ("error", self.region, traceback.format_exc()))

    def recv(self) -> tuple:
        return self._replies.popleft()

    def kill(self) -> None:
        raise ParallelError("inline backend has no worker process to kill")

    def respawn(self) -> None:
        raise ParallelError("inline workers cannot die")

    def close(self) -> None:
        self._replies.clear()


class _ProcessWorker:
    """One region worker process plus its pipe endpoint."""

    def __init__(self, ctx: Any, region: int, partition: Partition,
                 build_region: RegionBuilder, seed: int,
                 telemetry: dict[str, Any] | None) -> None:
        self.region = region
        self._ctx = ctx
        self._args = (region, partition, build_region, seed, telemetry)
        self.process: Any = None
        self.conn: Any = None
        self._start()

    def _start(self) -> None:
        parent, child = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=worker_main, args=(child, *self._args),
            daemon=True, name=f"repro-region-{self.region}")
        self.process.start()
        child.close()
        self.conn = parent

    def send(self, command: tuple) -> None:
        self.conn.send(command)

    def recv(self) -> tuple:
        return self.conn.recv()

    def kill(self) -> None:
        """SIGKILL the worker (chaos hook); the next pipe use fails and
        triggers supervision."""
        self.process.kill()
        self.process.join()

    def respawn(self) -> None:
        self.conn.close()
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
        self.process.join()
        self._start()

    def close(self) -> None:
        self.conn.close()
        self.process.join(timeout=5)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join()


@dataclass
class ParallelResult:
    """Outcome of one partitioned run."""

    backend: str
    until: float
    horizon: float
    rounds: int
    executed: int
    wall_seconds: float
    restarts: int
    #: Boundary tuples whose arrival time fell beyond ``until`` — still
    #: in flight at the end of the run, exactly as a single simulator
    #: would leave undelivered messages queued past its horizon.
    leftovers: int
    regions: dict[int, dict[str, Any]] = field(repr=False)
    #: Merged per-region telemetry records in (time, region, seq) order.
    records: list[dict[str, Any]] = field(repr=False)
    #: Determinism witness of the merged trace (None without telemetry).
    checksum: str | None = None

    @property
    def events_per_sec(self) -> float:
        return (self.executed / self.wall_seconds
                if self.wall_seconds > 0 else 0.0)

    def stat(self, name: str) -> float:
        """Sum one per-region stats counter across regions."""
        return sum(report["stats"][name] for report in self.regions.values())


class ParallelSimulation:
    """Coordinator for a sharded, conservatively-synchronized run.

    Args:
        partition: region assignment + boundaries (validated on run).
        build_region: per-region shard builder, called once in each
            worker as ``build_region(region, sim, partition, seed)``.
            With the process backend it must be importable/picklable
            under the ``spawn`` start method (any callable works under
            ``fork``).
        seed: forwarded to every builder — one seed, one reproducible
            partitioned run.
        telemetry: keyword arguments for
            :func:`repro.telemetry.configure`, applied identically in
            every region (e.g. ``{"sample_rate": 0.1, "seed": 7}``);
            ``None`` runs without telemetry.
    """

    def __init__(self, partition: Partition, build_region: RegionBuilder,
                 *, seed: int = 0,
                 telemetry: dict[str, Any] | None = None) -> None:
        partition.validate()
        self.partition = partition
        self.build_region = build_region
        self.seed = seed
        self.telemetry = telemetry
        self.backend: str | None = None
        self.restarts = 0
        self._workers: dict[int, Any] = {}
        self._history: dict[int, list[tuple]] = {}

    # -- chaos hook --------------------------------------------------------

    def kill_worker(self, region: int) -> None:
        """SIGKILL one region's worker process mid-run.  Supervision
        revives it by deterministic replay on the next exchange."""
        try:
            worker = self._workers[region]
        except KeyError:
            raise ParallelError(f"no worker for region {region}") from None
        worker.kill()

    # -- the run -----------------------------------------------------------

    def run(self, until: float, *, backend: str = "process",
            horizon: float | None = None,
            after_round: Callable[["ParallelSimulation", int, float], None]
            | None = None) -> ParallelResult:
        """Simulate ``[0, until]`` in conservative barrier rounds.

        Args:
            backend: ``"process"`` (one worker per region) or
                ``"inline"`` (sequential single-shard baseline).
            horizon: round window; defaults to the partition's lookahead
                and must not exceed it (that would break conservatism).
            after_round: called as ``after_round(self, round_index,
                time)`` between barriers — the chaos/progress hook.
        """
        if until <= 0:
            raise ParallelError(f"until must be > 0, got {until}")
        if backend not in ("process", "inline"):
            raise ParallelError(f"unknown backend {backend!r}")
        self.partition.validate()
        lookahead = (self.partition.lookahead
                     if self.partition.boundaries else float("inf"))
        window = lookahead if horizon is None else horizon
        if window <= 0 or window > lookahead:
            raise ParallelError(
                f"horizon must be in (0, lookahead={lookahead}], "
                f"got {window}")
        self.backend = backend
        regions = range(self.partition.regions)
        self.restarts = 0
        self._history = {region: [] for region in regions}
        self._spawn_all(backend)
        try:
            wall0 = perf_counter()
            inject: dict[int, list[tuple]] = {r: [] for r in regions}
            now, rounds = 0.0, 0
            while now < until:
                # Multiplicative, not accumulative: repeated float adds
                # of the window would drift and add a spurious round.
                boundary = min((rounds + 1) * window, until)
                inclusive = boundary >= until
                commands = {
                    region: ("round", rounds, boundary, inclusive,
                             inject[region])
                    for region in regions
                }
                replies = self._roundtrip(commands)
                for region in regions:
                    self._history[region].append(commands[region])
                inject = {r: [] for r in regions}
                for region in regions:
                    for record in replies[region][2]:
                        inject[record[2]].append(record)
                for queue in inject.values():
                    queue.sort(key=_INJECT_KEY)
                now = boundary
                rounds += 1
                if after_round is not None:
                    after_round(self, rounds - 1, now)
            leftovers = sum(len(queue) for queue in inject.values())
            reports = {
                region: reply[1]
                for region, reply in self._roundtrip(
                    {region: ("collect",) for region in regions}).items()
            }
            wall = perf_counter() - wall0
        finally:
            self._stop_all()
        records = merge_records(
            {region: reports[region]["records"] for region in regions})
        checksum = (merged_checksum(records)
                    if self.telemetry is not None else None)
        return ParallelResult(
            backend=backend,
            until=until,
            horizon=window,
            rounds=rounds,
            executed=sum(reports[r]["executed"] for r in regions),
            wall_seconds=wall,
            restarts=self.restarts,
            leftovers=leftovers,
            regions=reports,
            records=records,
            checksum=checksum,
        )

    # -- plumbing ----------------------------------------------------------

    def _spawn_all(self, backend: str) -> None:
        regions = range(self.partition.regions)
        if backend == "inline":
            self._workers = {
                region: _InlineWorker(region, self.partition,
                                      self.build_region, self.seed,
                                      self.telemetry)
                for region in regions
            }
            return
        ctx = _mp_context()
        self._workers = {
            region: _ProcessWorker(ctx, region, self.partition,
                                   self.build_region, self.seed,
                                   self.telemetry)
            for region in regions
        }

    def _roundtrip(self, commands: dict[int, tuple]) -> dict[int, tuple]:
        """Send every command, gather every reply, reviving dead workers.

        All sends go out before any recv — with the process backend the
        regions simulate their windows concurrently.
        """
        replies: dict[int, tuple] = {}
        dead: list[int] = []
        for region, command in commands.items():
            try:
                self._workers[region].send(command)
            except OSError:
                dead.append(region)
        for region in commands:
            if region in dead:
                continue
            try:
                replies[region] = self._workers[region].recv()
            except (EOFError, OSError):
                dead.append(region)
        for region in dead:
            replies[region] = self._revive(region, commands[region])
        for region, reply in replies.items():
            if reply[0] == "error":
                raise WorkerError(region, reply[2])
        return replies

    def _revive(self, region: int, command: tuple) -> tuple:
        """Respawn a dead worker, replay its command history, then
        re-issue the in-flight command.  Replay outputs are discarded —
        the coordinator already acted on them — but errors surface."""
        self.restarts += 1
        worker = self._workers[region]
        worker.respawn()
        for past in self._history[region]:
            worker.send(past)
            reply = worker.recv()
            if reply[0] == "error":
                raise WorkerError(region, reply[2])
        worker.send(command)
        return worker.recv()

    def _stop_all(self) -> None:
        for worker in self._workers.values():
            try:
                worker.send(("stop",))
                worker.recv()
            except (EOFError, OSError):
                pass
            finally:
                worker.close()
        self._workers = {}

"""The conservative-lookahead coordinator.

:class:`ParallelSimulation` runs a partitioned topology as a set of
region shards synchronized in conservative rounds: with lookahead ``L``
(the minimum boundary-link latency, see
:class:`~repro.netsim.partition.Partition`), every boundary tuple
egressed during window ``[kL, (k+1)L)`` arrives no earlier than
``(k+1)L`` — so each region may simulate a whole window without hearing
from the others, and the coordinator only exchanges outboxes between
windows.  Windows run horizon-**exclusive**
(``Simulator.run(until=h, inclusive=False)``): an event exactly at the
horizon fires next round, after same-instant remote tuples have been
injected, which is what makes the interleaving — and the merged trace —
deterministic.

Two exchange **modes** schedule those rounds:

* ``"barrier"`` — the full barrier: every region finishes round ``k``
  before any region starts round ``k+1``.  Each dispatch of round
  ``k>=1`` therefore waits on all ``R-1`` other regions.
* ``"overlapped"`` — neighborhood-synchronized pipelining.  Boundary
  tuples only ever target a region's *boundary neighbors*, so region
  ``r`` may start round ``k`` as soon as its neighbors have finished
  round ``k-1`` — distant regions can be several rounds apart, the
  outbox exchange overlaps with ongoing windows, and each dispatch
  waits only on ``|neighbors(r)|`` regions.  The per-region command
  sequence (round index, horizon, injection batch) is *identical* to
  barrier mode — injections into ``r``'s round ``k`` are exactly the
  neighbor round-``k-1`` egresses, merged in ``(arrival, origin region,
  origin seq)`` order — so the merged trace checksum is byte-identical
  across modes.

**Adaptive lookahead** (``adaptive=True``) widens horizons past the
fixed ``L`` cadence using per-region *promises*: each round a region
reports its ``egress_floor`` — the earliest simulated time it could
still egress a boundary tuple (see
:meth:`~repro.netsim.partition.RegionNetwork.egress_floor`).  No future
tuple can arrive anywhere before ``min(floors, pending-injection
arrivals) + L`` (barrier), or before
``min over s of promise(s) + region_distance(s, r)`` per region
(overlapped, a null-message-style bound) — so when cross-region traffic
is sparse the coordinator jumps the horizon to that bound instead of
crawling in ``L`` steps, and with no cross traffic at all a run
collapses to a couple of rounds.  Adaptive horizons depend on the
promise stream, so their *trace* is only comparable within the mode;
the simulation outcome (deliveries, clocks, digests) is unchanged.

Synchronization stalls are accounted structurally — the number of
cross-region dependencies each dispatch waits on (deterministic, so the
benchmark gate can compare modes): barrier pays ``R-1`` per region per
round after the first, overlapped pays ``|neighbors(r)|``.

Two backends execute the identical :class:`~repro.parallel.runtime.
RegionRuntime` code:

* ``"inline"`` — every region stepped sequentially in this process; the
  single-shard baseline for both determinism checks and speedup
  measurements.
* ``"process"`` — one OS process per region, plain tuples over pipes.
  In overlapped mode replies are multiplexed with
  :func:`multiprocessing.connection.wait`, so the coordinator acts on
  whichever region finishes first instead of draining pipes in region
  order.

Supervision: the coordinator records every command it has sent to each
region.  When a worker process dies (pipe breaks, or a heartbeat check
finds the process gone while a reply is pending), a fresh process is
spawned and the history **replayed** — regions are deterministic, so the
revived worker reaches the exact state (simulator clock, network,
telemetry, sampling streams) of the lost one, and the run's merged trace
checksum is unchanged.  :meth:`ParallelSimulation.kill_worker` exists so
tests and chaos drills can prove that.

Supervision is production-shaped via :class:`SupervisionPolicy`:
liveness is heartbeat-based (poll the pipe, check ``is_alive``) instead
of a blocking ``recv``; revival attempts are bounded with deterministic
exponential backoff (seeded jitter, so chaos drills replay identically);
a region whose worker keeps dying **degrades to the inline backend** —
the region runs in-coordinator, slower but correct, and the event is
surfaced in :attr:`ParallelResult.supervision`, never swallowed; and
shutdown escalates join → terminate → kill so a wedged worker cannot
hang the coordinator forever.
"""

from __future__ import annotations

import math
import multiprocessing
import random
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import connection as _mp_connection
from time import perf_counter
from typing import Any, Callable

from repro.errors import ParallelError, WorkerError, WorkerTimeoutError
from repro.netsim.partition import Partition
from repro.parallel.runtime import RegionBuilder, RegionRuntime, worker_main
from repro.telemetry.merge import merge_records, merged_checksum

#: Injection merge order: (arrival sim-time, origin region, origin seq).
_INJECT_KEY = lambda record: (record[4], record[1], record[5])  # noqa: E731


def _mp_context():
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


@dataclass(frozen=True)
class SupervisionPolicy:
    """How the coordinator supervises worker processes.

    Liveness, revival and shutdown knobs — the defaults reproduce sane
    production behaviour; tests tighten them to drive the failure paths
    deterministically.

    Args:
        shutdown_timeout: seconds granted per escalation step on close
            (join → terminate → kill).  Replaces the old hardcoded
            ``join(timeout=5)``.
        heartbeat_interval: pipe-poll period while a reply is pending;
            each beat also checks the worker process is still alive, so
            a SIGKILLed worker is detected without waiting for the pipe
            to signal EOF.
        reply_timeout: wall-clock seconds a *live* worker may stay
            silent before it is declared wedged (terminate → kill →
            revive).  ``None`` waits forever — a conservatively-correct
            region may legitimately compute for a long time.
        max_revivals: revival attempts per region per run before the
            region degrades (or the run fails).
        backoff_base: first revival delay, seconds.
        backoff_factor: multiplier per successive attempt.
        backoff_max: delay ceiling.
        backoff_jitter: jitter fraction (0.1 → up to +10%); drawn from a
            stream seeded by ``(seed, region, attempt)``, so same-seed
            runs back off identically.
        seed: jitter seed.
        degrade_to_inline: after ``max_revivals`` failures, run the
            region in-process via the inline backend (replayed to the
            exact lost state) instead of failing the run.
    """

    shutdown_timeout: float = 5.0
    heartbeat_interval: float = 0.2
    reply_timeout: float | None = None
    max_revivals: int = 3
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 2.0
    backoff_jitter: float = 0.1
    seed: int = 0
    degrade_to_inline: bool = True

    def backoff(self, region: int, attempt: int) -> float:
        """Deterministic delay before revival ``attempt`` (0-based)."""
        delay = min(self.backoff_base * self.backoff_factor ** attempt,
                    self.backoff_max)
        if self.backoff_jitter > 0.0:
            stream = random.Random((self.seed << 20) ^ (region << 10)
                                   ^ attempt)
            delay *= 1.0 + self.backoff_jitter * stream.random()
        return delay


class _InlineWorker:
    """Channel adapter running a :class:`RegionRuntime` in-process.

    Commands execute synchronously on ``send``; ``recv`` pops the reply —
    the coordinator drives both backends through the same two calls.
    """

    def __init__(self, region: int, partition: Partition,
                 build_region: RegionBuilder, seed: int,
                 telemetry: dict[str, Any] | None) -> None:
        self.region = region
        self._replies: deque = deque()
        self._runtime = None
        self._build_error: str | None = None
        try:
            self._runtime = RegionRuntime(region, partition, build_region,
                                          seed=seed, telemetry=telemetry)
        except Exception:  # surfaces as a reply, like a worker process
            self._build_error = traceback.format_exc()

    def send(self, command: tuple) -> None:
        if self._build_error is not None:
            self._replies.append(("error", self.region, self._build_error))
            return
        try:
            op = command[0]
            if op == "round":
                _, index, horizon, inclusive, injections = command
                outbox, counters = self._runtime.run_round(
                    index, horizon, inclusive, injections)
                self._replies.append(("done", index, outbox, counters))
            elif op == "collect":
                self._replies.append(("report", self._runtime.collect()))
            elif op == "stop":
                self._replies.append(("bye", self.region))
            else:
                self._replies.append(
                    ("error", self.region, f"unknown command {op!r}"))
        except Exception:
            self._replies.append(
                ("error", self.region, traceback.format_exc()))

    def recv(self) -> tuple:
        return self._replies.popleft()

    def kill(self) -> None:
        raise ParallelError("inline backend has no worker process to kill")

    def respawn(self) -> None:
        raise ParallelError("inline workers cannot die")

    def close(self) -> str:
        self._replies.clear()
        return "clean"


class _ProcessWorker:
    """One region worker process plus its pipe endpoint."""

    def __init__(self, ctx: Any, region: int, partition: Partition,
                 build_region: RegionBuilder, seed: int,
                 telemetry: dict[str, Any] | None,
                 policy: SupervisionPolicy | None = None) -> None:
        self.region = region
        self._ctx = ctx
        self._args = (region, partition, build_region, seed, telemetry)
        self.policy = policy if policy is not None else SupervisionPolicy()
        self.process: Any = None
        self.conn: Any = None
        self._start()

    def _start(self) -> None:
        parent, child = self._ctx.Pipe()
        self.process = self._ctx.Process(
            target=worker_main, args=(child, *self._args),
            daemon=True, name=f"repro-region-{self.region}")
        self.process.start()
        child.close()
        self.conn = parent

    def send(self, command: tuple) -> None:
        self.conn.send(command)

    def recv(self) -> tuple:
        """Heartbeat-based receive.

        Polls the pipe at ``heartbeat_interval``; between beats it
        checks the worker process is still alive, so a killed worker
        surfaces as ``EOFError`` (dead-worker protocol) within one beat
        rather than whenever the OS tears the pipe down.  A *live* but
        silent worker trips :class:`WorkerTimeoutError` once
        ``reply_timeout`` (when set) elapses; the coordinator escalates
        and revives it like a death.
        """
        policy = self.policy
        deadline = (None if policy.reply_timeout is None
                    else time.monotonic() + policy.reply_timeout)
        while True:
            if self.conn.poll(policy.heartbeat_interval):
                return self.conn.recv()
            if not self.process.is_alive():
                # Drain a reply the worker managed to flush before dying.
                if self.conn.poll(0):
                    return self.conn.recv()
                raise EOFError(f"region {self.region} worker died")
            if deadline is not None and time.monotonic() >= deadline:
                self.escalate()
                raise WorkerTimeoutError(self.region, policy.reply_timeout)

    def kill(self) -> None:
        """SIGKILL the worker (chaos hook); the next pipe use fails and
        triggers supervision."""
        self.process.kill()
        self.process.join()

    def escalate(self) -> str:
        """Force a wedged worker down: terminate, then kill."""
        if not self.process.is_alive():
            self.process.join()
            return "dead"
        self.process.terminate()
        self.process.join(timeout=self.policy.shutdown_timeout)
        if self.process.is_alive():
            self.process.kill()
            self.process.join()
            return "killed"
        return "terminated"

    def respawn(self) -> None:
        self.conn.close()
        self.escalate()
        self._start()

    def close(self) -> str:
        """Shut down with join → terminate → kill escalation; returns
        how far escalation had to go."""
        self.conn.close()
        self.process.join(timeout=self.policy.shutdown_timeout)
        if not self.process.is_alive():
            return "clean"
        self.process.terminate()
        self.process.join(timeout=self.policy.shutdown_timeout)
        if not self.process.is_alive():
            return "terminated"
        self.process.kill()
        self.process.join()
        return "killed"


@dataclass
class ParallelResult:
    """Outcome of one partitioned run."""

    backend: str
    until: float
    horizon: float
    rounds: int
    executed: int
    wall_seconds: float
    restarts: int
    #: Boundary tuples whose arrival time fell beyond ``until`` — still
    #: in flight at the end of the run, exactly as a single simulator
    #: would leave undelivered messages queued past its horizon.
    leftovers: int
    regions: dict[int, dict[str, Any]] = field(repr=False)
    #: Merged per-region telemetry records in (time, region, seq) order.
    records: list[dict[str, Any]] = field(repr=False)
    #: Determinism witness of the merged trace (None without telemetry).
    checksum: str | None = None
    #: Revival attempts (successful or not), a superset of ``restarts``.
    revival_attempts: int = 0
    #: Regions that exhausted their revivals and now run inline.
    degraded: tuple[int, ...] = ()
    #: Supervision event stream: revivals, degradations, escalations —
    #: surfaced for telemetry/dashboards, never swallowed.
    supervision: list[dict[str, Any]] = field(default_factory=list)
    #: Exchange mode the run used: "barrier" or "overlapped".
    mode: str = "barrier"
    #: Whether adaptive lookahead widened horizons this run.
    adaptive: bool = False
    #: Structural synchronization stalls: total cross-region dependencies
    #: dispatches waited on (barrier: R-1 each; overlapped: neighbors).
    sync_stalls: int = 0

    @property
    def events_per_sec(self) -> float:
        return (self.executed / self.wall_seconds
                if self.wall_seconds > 0 else 0.0)

    def stat(self, name: str) -> float:
        """Sum one per-region stats counter across regions."""
        return sum(report["stats"][name] for report in self.regions.values())


class ParallelSimulation:
    """Coordinator for a sharded, conservatively-synchronized run.

    Args:
        partition: region assignment + boundaries (validated on run).
        build_region: per-region shard builder, called once in each
            worker as ``build_region(region, sim, partition, seed)``.
            With the process backend it must be importable/picklable
            under the ``spawn`` start method (any callable works under
            ``fork``).
        seed: forwarded to every builder — one seed, one reproducible
            partitioned run.
        telemetry: keyword arguments for
            :func:`repro.telemetry.configure`, applied identically in
            every region (e.g. ``{"sample_rate": 0.1, "seed": 7}``);
            ``None`` runs without telemetry.
        supervision: worker liveness/revival/shutdown knobs; defaults to
            :class:`SupervisionPolicy`'s production-shaped values.
    """

    def __init__(self, partition: Partition, build_region: RegionBuilder,
                 *, seed: int = 0,
                 telemetry: dict[str, Any] | None = None,
                 supervision: SupervisionPolicy | None = None) -> None:
        partition.validate()
        self.partition = partition
        self.build_region = build_region
        self.seed = seed
        self.telemetry = telemetry
        self.supervision = (supervision if supervision is not None
                            else SupervisionPolicy())
        self.backend: str | None = None
        self.restarts = 0
        self.revival_attempts = 0
        self.supervision_events: list[dict[str, Any]] = []
        self._degraded: list[int] = []
        self._revival_counts: dict[int, int] = {}
        self._workers: dict[int, Any] = {}
        self._history: dict[int, list[tuple]] = {}

    # -- chaos hook --------------------------------------------------------

    def kill_worker(self, region: int) -> None:
        """SIGKILL one region's worker process mid-run.  Supervision
        revives it by deterministic replay on the next exchange."""
        try:
            worker = self._workers[region]
        except KeyError:
            raise ParallelError(f"no worker for region {region}") from None
        worker.kill()

    # -- the run -----------------------------------------------------------

    def run(self, until: float, *, backend: str = "process",
            mode: str = "barrier", adaptive: bool = False,
            horizon: float | None = None,
            after_round: Callable[["ParallelSimulation", int, float], None]
            | None = None) -> ParallelResult:
        """Simulate ``[0, until]`` in conservative rounds.

        Args:
            backend: ``"process"`` (one worker per region) or
                ``"inline"`` (sequential single-shard baseline).
            mode: ``"barrier"`` (full barrier between rounds) or
                ``"overlapped"`` (neighborhood-synchronized pipelining;
                identical per-region command sequence, so the merged
                trace checksum matches barrier mode byte for byte).
            adaptive: widen horizons past the fixed cadence using the
                regions' egress-floor promises.  The simulation outcome
                is unchanged; the trace is only comparable within
                adaptive runs (the round structure differs).
            horizon: base round window; defaults to the partition's
                lookahead and must not exceed it (that would break
                conservatism).
            after_round: called as ``after_round(self, round_index,
                time)`` after each completed round (in overlapped mode,
                after each completed *region* round) — the
                chaos/progress hook.
        """
        if until <= 0:
            raise ParallelError(f"until must be > 0, got {until}")
        if backend not in ("process", "inline"):
            raise ParallelError(f"unknown backend {backend!r}")
        if mode not in ("barrier", "overlapped"):
            raise ParallelError(f"unknown mode {mode!r}")
        self.partition.validate()
        lookahead = (self.partition.lookahead
                     if self.partition.boundaries else float("inf"))
        window = lookahead if horizon is None else horizon
        if window <= 0 or window > lookahead:
            raise ParallelError(
                f"horizon must be in (0, lookahead={lookahead}], "
                f"got {window}")
        self.backend = backend
        regions = range(self.partition.regions)
        self.restarts = 0
        self.revival_attempts = 0
        self.supervision_events = []
        self._degraded = []
        self._revival_counts = {region: 0 for region in regions}
        self._history = {region: [] for region in regions}
        self._spawn_all(backend)
        try:
            wall0 = perf_counter()
            if mode == "barrier":
                rounds, leftovers, stalls = self._run_barrier(
                    until, window, adaptive, after_round)
            else:
                rounds, leftovers, stalls = self._run_overlapped(
                    until, window, adaptive, after_round)
            reports = {
                region: reply[1]
                for region, reply in self._roundtrip(
                    {region: ("collect",) for region in regions}).items()
            }
            wall = perf_counter() - wall0
        finally:
            self._stop_all()
        records = merge_records(
            {region: reports[region]["records"] for region in regions})
        checksum = (merged_checksum(records)
                    if self.telemetry is not None else None)
        return ParallelResult(
            backend=backend,
            until=until,
            horizon=window,
            rounds=rounds,
            executed=sum(reports[r]["executed"] for r in regions),
            wall_seconds=wall,
            restarts=self.restarts,
            leftovers=leftovers,
            regions=reports,
            records=records,
            checksum=checksum,
            revival_attempts=self.revival_attempts,
            degraded=tuple(self._degraded),
            supervision=list(self.supervision_events),
            mode=mode,
            adaptive=adaptive,
            sync_stalls=stalls,
        )

    # -- barrier exchange --------------------------------------------------

    def _run_barrier(self, until: float, window: float, adaptive: bool,
                     after_round: Callable | None
                     ) -> tuple[int, int, int]:
        """Full-barrier rounds; returns (rounds, leftovers, stalls)."""
        region_count = self.partition.regions
        regions = range(region_count)
        lookahead = (self.partition.lookahead
                     if self.partition.boundaries else math.inf)
        inject: dict[int, list[tuple]] = {r: [] for r in regions}
        # Adaptive-promise state: last reported egress floor per region
        # (0.0 until the first reply — unknown state must not widen) and
        # the arrival times of injected-but-not-yet-executed tuples,
        # whose re-egress the floors cannot see yet.
        floors = {r: 0.0 for r in regions}
        pending_arrivals: dict[int, list[float]] = {r: [] for r in regions}
        now, rounds, stalls = 0.0, 0, 0
        while now < until:
            # This round's injections count as pending *before* the
            # horizon is chosen: an injected tuple can re-egress as soon
            # as it arrives, so its arrival bounds the widening too.
            for region in regions:
                pending_arrivals[region].extend(
                    record[4] for record in inject[region])
            if adaptive:
                floor_min = min(floors.values())
                arrival_min = min(
                    (min(arrivals) for arrivals
                     in pending_arrivals.values() if arrivals),
                    default=math.inf)
                # Any future egress happens at >= min(floor, pending
                # arrival) and its tuple lands >= one boundary latency
                # later; the horizon may jump straight there.
                widened = min(floor_min, arrival_min) + lookahead
                boundary = min(until, max(now + window, widened))
            else:
                # Multiplicative, not accumulative: repeated float adds
                # of the window would drift and add a spurious round.
                boundary = min((rounds + 1) * window, until)
            inclusive = boundary >= until
            commands = {
                region: ("round", rounds, boundary, inclusive,
                         inject[region])
                for region in regions
            }
            if rounds > 0:
                # Every region's dispatch waited on all others' previous
                # round — the full barrier's structural cost.
                stalls += region_count * (region_count - 1)
            replies = self._roundtrip(commands)
            for region in regions:
                self._history[region].append(commands[region])
            inject = {r: [] for r in regions}
            for region in regions:
                counters = replies[region][3]
                floors[region] = counters.get("egress_floor", math.inf)
                region_now = counters["now"]
                pending_arrivals[region] = [
                    arrival for arrival in pending_arrivals[region]
                    if arrival >= region_now]
                for record in replies[region][2]:
                    inject[record[2]].append(record)
            for queue in inject.values():
                queue.sort(key=_INJECT_KEY)
            now = boundary
            rounds += 1
            if after_round is not None:
                after_round(self, rounds - 1, now)
        leftovers = sum(len(queue) for queue in inject.values())
        return rounds, leftovers, stalls

    # -- overlapped exchange -----------------------------------------------

    def _run_overlapped(self, until: float, window: float, adaptive: bool,
                        after_round: Callable | None
                        ) -> tuple[int, int, int]:
        """Neighborhood-synchronized pipelined rounds.

        Region ``r``'s round ``k`` is dispatched as soon as its boundary
        neighbors have finished round ``k-1`` (fixed windows), or as
        soon as the promise-derived safe bound ``LB(r)`` exceeds its
        clock (adaptive) — no global barrier.  Returns
        (max region rounds, leftovers, stalls).
        """
        partition = self.partition
        region_count = partition.regions
        regions = list(range(region_count))
        neighbors: dict[int, set[int]] = {r: set() for r in regions}
        for boundary in partition.boundaries:
            neighbors[boundary.a_region].add(boundary.b_region)
            neighbors[boundary.b_region].add(boundary.a_region)
        if adaptive:
            distance = {
                (s, r): partition.region_distance(s, r)
                for s in regions for r in regions}
            # Shortest round trip leaving and re-entering r: bounds how
            # soon r's own future egress can come back at it.
            cycle: dict[int, float] = {}
            for r in regions:
                legs = [b.latency + distance[(b.peer(r)[0], r)]
                        for b in partition.boundaries
                        if r in (b.a_region, b.b_region)]
                cycle[r] = min(legs) if legs else math.inf
        committed = {r: 0.0 for r in regions}   # clock after last round
        done = {r: 0 for r in regions}          # completed rounds
        busy: dict[int, tuple] = {}             # region -> in-flight cmd
        floors = {r: 0.0 for r in regions}
        pending_arrivals: dict[int, list[float]] = {r: [] for r in regions}
        # Held boundary tuples: aligned mode buckets them by the round
        # that must inject them; adaptive mode holds a flat pool per
        # destination, drained up to each dispatch horizon.
        held_aligned: dict[tuple[int, int], list[tuple]] = {}
        held_adaptive: dict[int, list[tuple]] = {r: [] for r in regions}
        stalls = 0

        def safe_bound(r: int) -> float:
            """Earliest time a *new* tuple could still arrive in r."""
            best = math.inf
            for s in regions:
                if s == r:
                    continue
                if s in busy:
                    egress_time = committed[s]
                else:
                    egress_time = min(
                        floors[s],
                        min(pending_arrivals[s], default=math.inf))
                best = min(best, egress_time + distance[(s, r)])
                for record in held_adaptive[s]:
                    best = min(best, record[4] + distance[(s, r)])
            # r's own future egress can come back at it no sooner than
            # one full cycle through another region.  That egress fires
            # at >= the promise floor, a pending injection's arrival, or
            # a tuple about to be injected this dispatch (held for r).
            own = min(floors[r],
                      min(pending_arrivals[r], default=math.inf))
            for record in held_adaptive[r]:
                own = min(own, record[4])
            return min(best, own + cycle[r])

        while True:
            progressed = True
            while progressed:
                progressed = False
                for r in regions:
                    if r in busy or committed[r] >= until:
                        continue
                    k = done[r]
                    if adaptive:
                        bound = min(until, safe_bound(r))
                        if bound <= committed[r]:
                            continue
                        horizon = bound
                        pool = held_adaptive[r]
                        batch = [rec for rec in pool if rec[4] < horizon]
                        if batch:
                            held_adaptive[r] = [
                                rec for rec in pool if rec[4] >= horizon]
                    else:
                        if any(done[s] < k for s in neighbors[r]):
                            continue
                        horizon = min((k + 1) * window, until)
                        batch = held_aligned.pop((r, k), [])
                    batch.sort(key=_INJECT_KEY)
                    if k > 0:
                        stalls += len(neighbors[r])
                    pending_arrivals[r].extend(rec[4] for rec in batch)
                    command = ("round", k, horizon, horizon >= until,
                               batch)
                    busy[r] = command
                    try:
                        self._workers[r].send(command)
                    except OSError:
                        pass  # dead worker; surfaces in _collect_ready
                    progressed = True
            if not busy:
                if any(committed[r] < until for r in regions):
                    raise ParallelError(
                        "overlapped exchange deadlocked: no region "
                        "dispatchable and none busy")
                break
            replies = self._collect_ready(busy)
            for r in sorted(replies):
                reply = replies[r]
                if reply[0] == "error":
                    raise WorkerError(r, reply[2])
                command = busy.pop(r)
                self._history[r].append(command)
                _, k, outbox, counters = reply
                committed[r] = counters["now"]
                done[r] = k + 1
                floors[r] = counters.get("egress_floor", math.inf)
                region_now = counters["now"]
                pending_arrivals[r] = [
                    arrival for arrival in pending_arrivals[r]
                    if arrival >= region_now]
                for record in outbox:
                    destination = record[2]
                    if adaptive:
                        held_adaptive[destination].append(record)
                    else:
                        held_aligned.setdefault(
                            (destination, k + 1), []).append(record)
                if after_round is not None:
                    after_round(self, k, committed[r])
        leftovers = (sum(len(v) for v in held_adaptive.values())
                     if adaptive
                     else sum(len(v) for v in held_aligned.values()))
        return max(done.values()), leftovers, stalls

    def _collect_ready(self, busy: dict[int, tuple]) -> dict[int, tuple]:
        """Return the replies of every busy region that has one ready,
        blocking until at least one is (overlapped-mode multiplexing).

        Inline (and degraded) workers reply synchronously, so their
        replies are always ready.  Process workers are multiplexed with
        :func:`multiprocessing.connection.wait`; between heartbeats dead
        workers are revived by replay exactly as in barrier mode, and a
        live-but-silent worker trips the policy's ``reply_timeout``.
        """
        replies: dict[int, tuple] = {}
        process_regions: list[int] = []
        for region in busy:
            worker = self._workers[region]
            if isinstance(worker, _InlineWorker):
                replies[region] = worker.recv()
            else:
                process_regions.append(region)
        if process_regions:
            policy = self.supervision
            deadline = (None if policy.reply_timeout is None
                        else time.monotonic() + policy.reply_timeout)
            while True:
                pending = [r for r in process_regions if r not in replies]
                if not pending:
                    break
                conns = {self._workers[r].conn: r for r in pending}
                ready = _mp_connection.wait(
                    list(conns), timeout=0 if replies
                    else policy.heartbeat_interval)
                for conn in ready:
                    region = conns[conn]
                    try:
                        replies[region] = conn.recv()
                    except (EOFError, OSError):
                        replies[region] = self._revive(region,
                                                       busy[region])
                if replies:
                    break
                for region in pending:
                    if region in replies:
                        continue
                    worker = self._workers[region]
                    if not worker.process.is_alive():
                        if worker.conn.poll(0):
                            replies[region] = worker.conn.recv()
                        else:
                            replies[region] = self._revive(region,
                                                           busy[region])
                    elif (deadline is not None
                          and time.monotonic() >= deadline):
                        worker.escalate()
                        replies[region] = self._revive(region,
                                                       busy[region])
        return replies

    # -- plumbing ----------------------------------------------------------

    def _spawn_all(self, backend: str) -> None:
        regions = range(self.partition.regions)
        if backend == "inline":
            self._workers = {
                region: _InlineWorker(region, self.partition,
                                      self.build_region, self.seed,
                                      self.telemetry)
                for region in regions
            }
            return
        ctx = _mp_context()
        self._workers = {
            region: _ProcessWorker(ctx, region, self.partition,
                                   self.build_region, self.seed,
                                   self.telemetry,
                                   policy=self.supervision)
            for region in regions
        }

    def _roundtrip(self, commands: dict[int, tuple]) -> dict[int, tuple]:
        """Send every command, gather every reply, reviving dead workers.

        All sends go out before any recv — with the process backend the
        regions simulate their windows concurrently.
        """
        replies: dict[int, tuple] = {}
        dead: list[int] = []
        for region, command in commands.items():
            try:
                self._workers[region].send(command)
            except OSError:
                dead.append(region)
        for region in commands:
            if region in dead:
                continue
            try:
                replies[region] = self._workers[region].recv()
            except (EOFError, OSError):
                dead.append(region)
            except WorkerTimeoutError:
                # recv already escalated the wedged process down; revive
                # it exactly like a death.
                dead.append(region)
        for region in dead:
            replies[region] = self._revive(region, commands[region])
        for region, reply in replies.items():
            if reply[0] == "error":
                raise WorkerError(region, reply[2])
        return replies

    def _revive(self, region: int, command: tuple) -> tuple:
        """Bring a dead region back, then re-issue the in-flight command.

        Revival is bounded: up to ``max_revivals`` respawn-and-replay
        attempts per region per run, each preceded by a deterministic
        exponential-backoff delay (seeded jitter — same-seed chaos
        drills back off identically).  Replay outputs are discarded —
        the coordinator already acted on them — but errors surface.
        A region that exhausts its budget degrades to an in-process
        inline worker (when the policy allows) replayed to the exact
        lost state; otherwise the run fails.  Every attempt is recorded
        in :attr:`supervision_events`.
        """
        policy = self.supervision
        while self._revival_counts[region] < policy.max_revivals:
            attempt = self._revival_counts[region]
            self._revival_counts[region] += 1
            self.revival_attempts += 1
            delay = policy.backoff(region, attempt)
            if delay > 0.0:
                time.sleep(delay)
            worker = self._workers[region]
            try:
                worker.respawn()
                reply = self._replay(region, worker, command)
            except (EOFError, OSError) as exc:
                self.supervision_events.append({
                    "event": "revival-failed", "region": region,
                    "attempt": attempt, "backoff": delay,
                    "error": str(exc) or type(exc).__name__,
                })
                continue
            self.restarts += 1
            self.supervision_events.append({
                "event": "revived", "region": region,
                "attempt": attempt, "backoff": delay,
            })
            return reply
        if not policy.degrade_to_inline:
            raise ParallelError(
                f"region {region} worker failed {policy.max_revivals} "
                f"revival attempts and degradation is disabled")
        old = self._workers[region]
        try:
            old.close()
        except (EOFError, OSError):
            pass
        self._workers[region] = _InlineWorker(
            region, self.partition, self.build_region, self.seed,
            self.telemetry)
        self._degraded.append(region)
        self.supervision_events.append({
            "event": "degraded", "region": region,
            "attempts": self._revival_counts[region],
        })
        return self._replay(region, self._workers[region], command)

    def _replay(self, region: int, worker: Any, command: tuple) -> tuple:
        """Replay a region's command history, then the in-flight command."""
        for past in self._history[region]:
            worker.send(past)
            reply = worker.recv()
            if reply[0] == "error":
                raise WorkerError(region, reply[2])
        worker.send(command)
        return worker.recv()

    def _stop_all(self) -> None:
        for region, worker in self._workers.items():
            try:
                worker.send(("stop",))
                worker.recv()
            except (EOFError, OSError, WorkerTimeoutError):
                pass
            finally:
                outcome = worker.close()
                if outcome != "clean":
                    self.supervision_events.append({
                        "event": "shutdown-escalated", "region": region,
                        "outcome": outcome,
                    })
        self._workers = {}

"""The per-region runtime and the worker-process entry point.

:class:`RegionRuntime` is the unit of sharded execution: one region's
:class:`~repro.events.Simulator`, its :class:`~repro.netsim.RegionNetwork`
shard and (optionally) its own tracer.  The coordinator drives it in
**rounds** — conservative-lookahead windows it may simulate without
hearing from other regions — through exactly one method,
:meth:`RegionRuntime.run_round`, so the inline and process backends
execute identical code and produce identical traces.

:func:`worker_main` wraps a runtime in a pipe protocol of plain tuples:

========================================== ==================================
coordinator → worker                        worker → coordinator
========================================== ==================================
``("round", k, horizon, incl, injections)`` ``("done", k, outbox, counters)``
``("collect",)``                            ``("report", report_dict)``
``("stop",)``                               ``("bye", region)``
========================================== ==================================

Any exception crosses back as ``("error", region, traceback_text)``.
"""

from __future__ import annotations

import traceback
from typing import Any, Callable

from repro.events import Simulator
from repro.netsim.message import MessageIdAllocator, use_allocator
from repro.netsim.partition import Partition, RegionNetwork
from repro.telemetry.instrument import configure as _configure_telemetry
from repro.telemetry.merge import region_records

#: Message-id namespace stride: region ``r`` numbers its messages from
#: ``r * stride + 1``, so merged telemetry never shows colliding ids.
MSG_ID_STRIDE = 10_000_000

#: Builds one region's shard: ``build_region(region, sim, partition,
#: seed) -> RegionNetwork`` — create the RegionNetwork, add the region's
#: nodes/links, bind endpoints and schedule the region's workload.
RegionBuilder = Callable[[int, Simulator, Partition, int], RegionNetwork]


class RegionRuntime:
    """One region's simulator + network shard + tracer.

    Each runtime owns a :class:`~repro.netsim.message.MessageIdAllocator`
    seeded into its strided namespace and installs it around every build
    and round, so interleaving many runtimes in one process (the inline
    backend) numbers messages exactly as isolated worker processes do —
    a precondition for backend-identical merged trace checksums — with
    no global reset-order discipline.
    """

    def __init__(self, region: int, partition: Partition,
                 build_region: RegionBuilder, seed: int = 0,
                 telemetry: dict[str, Any] | None = None) -> None:
        self.region = region
        self.partition = partition
        self.ids = MessageIdAllocator(region * MSG_ID_STRIDE + 1)
        self.sim = Simulator()
        self.tracer = (_configure_telemetry(self.sim, **telemetry)
                       if telemetry is not None else None)
        previous = use_allocator(self.ids)
        try:
            self.net = build_region(region, self.sim, partition, seed)
        finally:
            use_allocator(previous)
        if not isinstance(self.net, RegionNetwork):
            raise TypeError(
                f"build_region must return a RegionNetwork, "
                f"got {type(self.net).__name__}")
        self.rounds = 0

    def run_round(self, index: int, horizon: float, inclusive: bool,
                  injections: list[tuple]) -> tuple[list[tuple], dict]:
        """Simulate one conservative window and drain the outbox.

        ``injections`` are boundary tuples from other regions, already in
        deterministic merge order; they are scheduled at their arrival
        times (all >= now, guaranteed by the lookahead) with one bulk
        insert so their event sequence numbers follow that order.  The
        window then runs to ``horizon`` — exclusive between rounds so an
        event exactly at the horizon fires in the *next* round, after any
        remote tuple arriving at the same instant has been injected.

        The returned counters carry ``egress_floor`` — the earliest
        simulated time this region could still egress a boundary tuple
        given its pending state (``inf`` when it provably cannot) — the
        per-region promise adaptive lookahead widens horizons with.
        """
        net, sim = self.net, self.sim
        previous = use_allocator(self.ids)
        try:
            if injections:
                ingress = net.ingress
                sim.schedule_many(
                    ((record[4], ingress, (record,))
                     for record in injections),
                    absolute=True)
            sim.run(until=horizon, inclusive=inclusive)
        finally:
            use_allocator(previous)
        outbox, net.outbox = net.outbox, []
        self.rounds += 1
        counters = {
            "executed": sim.executed_events,
            "now": sim.now,
            "outbound": len(outbox),
            "in_flight": net.in_flight,
            "egress_floor": net.egress_floor(),
        }
        return outbox, counters

    def collect(self) -> dict[str, Any]:
        """Final per-region report: counters, stats and (when telemetry
        is configured) the region's export-ready trace records."""
        net = self.net
        stats = dict(net.stats.snapshot())
        stats["forwarded_out"] = net.forwarded_out
        stats["ingressed"] = net.ingressed
        stats["in_flight"] = net.in_flight
        extra = getattr(net, "extra_stats", None)
        if extra is not None:
            # Scenario-specific counters (e.g. the lean shard's
            # order-invariant delivery digest) ride along in the report.
            stats.update(extra())
        return {
            "region": self.region,
            "executed": self.sim.executed_events,
            "now": self.sim.now,
            "rounds": self.rounds,
            "stats": stats,
            "records": (region_records(self.tracer, self.region)
                        if self.tracer is not None else []),
        }


def worker_main(conn: Any, region: int, partition: Partition,
                build_region: RegionBuilder, seed: int,
                telemetry: dict[str, Any] | None) -> None:
    """Worker-process loop: build the runtime, serve pipe commands."""
    try:
        runtime = RegionRuntime(region, partition, build_region,
                                seed=seed, telemetry=telemetry)
    except Exception:
        conn.send(("error", region, traceback.format_exc()))
        conn.close()
        return
    while True:
        try:
            command = conn.recv()
        except EOFError:  # coordinator went away
            return
        try:
            op = command[0]
            if op == "round":
                _, index, horizon, inclusive, injections = command
                outbox, counters = runtime.run_round(
                    index, horizon, inclusive, injections)
                conn.send(("done", index, outbox, counters))
            elif op == "collect":
                conn.send(("report", runtime.collect()))
            elif op == "stop":
                conn.send(("bye", region))
                conn.close()
                return
            else:
                conn.send(("error", region, f"unknown command {op!r}"))
        except Exception:
            conn.send(("error", region, traceback.format_exc()))
            conn.close()
            return

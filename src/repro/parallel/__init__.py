"""Sharded parallel simulation with conservative lookahead.

The scalability story for the simulation substrate: partition the
topology into regions (:class:`~repro.netsim.Partition`), give each
region its own event queue in its own worker process, and synchronize
conservatively — the minimum cross-region link latency is the safe
horizon, so regions exchange boundary messages only at barrier rounds
and never see an event out of order.

The same per-region code runs under two backends (``"process"`` workers
over pipes, or the ``"inline"`` single-shard baseline) and two exchange
modes — ``"barrier"`` (global rounds) and ``"overlapped"`` (each region
advances as soon as its boundary *neighbors* are one round behind, so
rounds pipeline around the region graph).  Per-region telemetry merges
deterministically by (sim-time, region-id, seq), and a killed worker is
revived by replaying its command history — all paths produce
byte-identical merged trace checksums for the same seed.  Adaptive
lookahead (``adaptive=True``) widens horizons past the fixed cadence
using each region's egress-floor promise; the memory-lean scenario
(:func:`build_lean_star_region`) scales the same ring-of-stars workload
to millions of leaves with columnar per-leaf state and an
order-invariant delivery digest.

Quick start::

    from repro.netsim import Partition
    from repro.parallel import ParallelSimulation

    partition = Partition(4)
    ...  # assign nodes, add boundaries
    psim = ParallelSimulation(partition, build_region, seed=7,
                              telemetry={"sample_rate": 0.1})
    result = psim.run(until=10.0, backend="process")
    result.events_per_sec, result.checksum, result.stat("delivered")
"""

from repro.parallel.coordinator import (
    ParallelResult,
    ParallelSimulation,
    SupervisionPolicy,
)
from repro.parallel.runtime import (
    MSG_ID_STRIDE,
    RegionRuntime,
    worker_main,
)
from repro.parallel.scenario import (
    LeanStarRegion,
    build_lean_star_region,
    build_star_region,
    lean_star_partition,
    star_ring_partition,
)

__all__ = [
    "MSG_ID_STRIDE",
    "LeanStarRegion",
    "ParallelResult",
    "ParallelSimulation",
    "RegionRuntime",
    "SupervisionPolicy",
    "build_lean_star_region",
    "build_star_region",
    "lean_star_partition",
    "star_ring_partition",
    "worker_main",
]

"""Unit tests for the LTS data structure."""

import pytest

from repro.errors import LtsError
from repro.lts import TAU, Lts


def test_add_transition_creates_states():
    lts = Lts("t")
    lts.add_transition("s0", "a", "s1")
    assert lts.states == {"s0", "s1"}
    assert lts.successors("s0", "a") == {"s1"}


def test_empty_action_rejected():
    with pytest.raises(LtsError):
        Lts("t").add_transition("s0", "", "s1")


def test_mark_final_unknown_state_rejected():
    with pytest.raises(LtsError):
        Lts("t").mark_final("ghost")


def test_alphabet_excludes_tau():
    lts = Lts("t")
    lts.add_transition("s0", "a", "s1")
    lts.add_transition("s1", TAU, "s0")
    assert lts.alphabet == frozenset({"a"})


def test_transitions_from_unknown_state_raises():
    with pytest.raises(LtsError):
        Lts("t").transitions_from("ghost")


def test_enabled_actions():
    lts = Lts.from_triples("t", [("s0", "a", "s1"), ("s0", "b", "s2")])
    assert lts.enabled("s0") == {"a", "b"}
    assert lts.enabled("s1") == set()


def test_sequence_builder_is_final_terminated():
    lts = Lts.sequence("seq", ["a", "b", "c"])
    assert lts.final == {"s3"}
    assert lts.transition_count == 3
    assert lts.is_deterministic()


def test_cycle_builder_loops():
    lts = Lts.cycle("cyc", ["a", "b"])
    assert lts.successors("s1", "b") == {"s0"}
    assert lts.final == set()


def test_cycle_requires_actions():
    with pytest.raises(LtsError):
        Lts.cycle("cyc", [])


def test_determinism_detection():
    det = Lts.from_triples("d", [("s0", "a", "s1")])
    assert det.is_deterministic()
    nondet = Lts.from_triples("n", [("s0", "a", "s1"), ("s0", "a", "s2")])
    assert not nondet.is_deterministic()
    taud = Lts.from_triples("t", [("s0", TAU, "s1")])
    assert not taud.is_deterministic()


def test_reachable_states_and_pruned():
    lts = Lts.from_triples(
        "t", [("s0", "a", "s1"), ("orphan", "b", "s1")], initial="s0"
    )
    assert lts.reachable_states() == {"s0", "s1"}
    pruned = lts.pruned()
    assert pruned.states == {"s0", "s1"}
    assert pruned.transition_count == 1


def test_renamed_preserves_structure():
    lts = Lts.sequence("seq", ["a", "b"])
    renamed = lts.renamed({"a": "x"})
    assert renamed.alphabet == frozenset({"x", "b"})
    assert renamed.final == lts.final


def test_hidden_turns_actions_into_tau():
    lts = Lts.sequence("seq", ["a", "b"])
    hidden = lts.hidden(["a"])
    assert hidden.alphabet == frozenset({"b"})
    assert hidden.successors("s0", TAU) == {"s1"}
